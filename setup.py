"""Legacy setup shim.

`pip install -e .` covers the normal case (PEP 660 editable install).
Fully offline environments without the `wheel` package can instead run
`python setup.py develop`, which needs nothing beyond setuptools.
"""

from setuptools import setup

setup()
