"""Invariant 5 — update correctness, property-style.

Random sequences of ordered insertions and deletions are applied both to
the relational store (every encoding, dense and sparse) and to an
in-memory DOM; afterwards the store must reconstruct to the DOM exactly,
order keys must be strictly increasing in document order, and queries
must still match the oracle.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dewey import DeweyKey
from repro.store import XmlStore
from repro.xmldom import Document, Element, Text, parse, serialize
from repro.xpath import Evaluator, string_value
from tests.conftest import ALL_ENCODINGS

START_XML = (
    '<root><sec n="0"><p>a</p><p>b</p></sec>'
    '<sec n="1"><p>c</p></sec></root>'
)


def _dom_node_at(document: Document, store_ids: dict, node_id: int):
    return store_ids[node_id]


def _random_fragment(rng: random.Random) -> Element:
    tag = rng.choice(("p", "sec", "note"))
    element = Element(tag, {"gen": str(rng.randint(0, 9))})
    if rng.random() < 0.6:
        element.append(Text(str(rng.randint(0, 99))))
    if rng.random() < 0.3:
        child = Element("q")
        element.append(child)
    return element


def _apply_random_ops(store, doc, dom, rng, operations):
    """Apply the same op sequence to the store and the DOM.

    Store nodes and DOM nodes are correlated positionally: both sides
    pick targets by walking the current *reconstructable* structure, so
    using element paths keeps them in lock-step.
    """
    for _ in range(operations):
        elements = [
            n for n in dom.iter_preorder() if isinstance(n, Element)
        ]
        # Resolve the same element in the store by its document-order
        # element index.
        target_index = rng.randrange(len(elements))
        dom_parent = elements[target_index]
        store_elements = store.query("//*", doc)
        store_parent = store_elements[target_index].node_id

        if rng.random() < 0.75 or len(elements) < 3:
            index = rng.randint(0, len(dom_parent.children))
            fragment = _random_fragment(rng)
            fragment_xml = serialize(fragment)
            store.updates.insert(doc, store_parent, index, fragment_xml)
            dom_parent.insert(
                index, parse(f"<w>{fragment_xml}</w>").root.children[0]
            )
        else:
            if dom_parent.parent is None or isinstance(
                dom_parent.parent, Document
            ):
                continue  # never delete the root
            store.updates.delete(doc, store_parent)
            dom_parent.parent.remove(dom_parent)


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), gap=st.sampled_from([1, 8]))
def test_random_update_sequences(encoding, seed, gap):
    rng = random.Random(seed)
    store = XmlStore(backend="sqlite", encoding=encoding, gap=gap)
    doc = store.load(START_XML)
    dom = parse(START_XML)

    _apply_random_ops(store, doc, dom, rng, operations=8)

    # 1. Structural round trip.
    assert store.reconstruct(doc).structurally_equal(dom)

    # 2. Order keys strictly increasing in document order; no duplicates.
    _assert_order_keys_valid(store, doc)

    # 3. Queries still agree with the oracle.  Text/attribute results
    # compare by value; element results compare by reconstructed
    # subtree (an element's stored value is its *direct* text, which is
    # not the XPath string-value when elements nest — see DESIGN.md).
    evaluator = Evaluator(dom)
    for xpath in ("//p/text()", "//@gen"):
        got = [item.value for item in store.query(xpath, doc)]
        want = [string_value(n) for n in evaluator.evaluate(xpath)]
        assert got == want, (encoding, gap, xpath)
    for xpath in ("/root/sec[1]/p[1]", "//sec/p[last()]"):
        got = [
            serialize(store.reconstruct_subtree(doc, item.node_id))
            for item in store.query(xpath, doc)
        ]
        want = [serialize(n) for n in evaluator.evaluate(xpath)]
        assert got == want, (encoding, gap, xpath)

    # 4. The catalogue's node count is maintained.
    assert store.document_info(doc).node_count == store.node_count(doc)


def _assert_order_keys_valid(store, doc):
    encoding = store.encoding.name
    if encoding == "global":
        rows = store.backend.execute(
            "SELECT pos, endpos FROM node_global WHERE doc = ? "
            "ORDER BY pos",
            (doc,),
        ).rows
        positions = [r[0] for r in rows]
        assert positions == sorted(set(positions))
        assert all(end >= pos for pos, end in rows)
    elif encoding == "dewey":
        rows = store.backend.execute(
            "SELECT dkey FROM node_dewey WHERE doc = ? ORDER BY dkey",
            (doc,),
        ).rows
        keys = [r[0] for r in rows]
        assert keys == sorted(set(keys))
        # Key order must equal component order after decoding too.
        decoded = [DeweyKey.decode(k) for k in keys]
        assert decoded == sorted(decoded)
    elif encoding == "ordpath":
        from repro.core.ordpath import OrdpathKey

        rows = store.backend.execute(
            "SELECT okey FROM node_ordpath WHERE doc = ? ORDER BY okey",
            (doc,),
        ).rows
        keys = [r[0] for r in rows]
        assert keys == sorted(set(keys))
        decoded = [OrdpathKey.decode(k) for k in keys]
        # Byte order equals component order; keys are odd-terminated.
        for a, b in zip(decoded, decoded[1:]):
            assert a.components < b.components
        for key in decoded:
            assert key.components[-1] % 2 != 0
    else:
        rows = store.backend.execute(
            "SELECT parent, lpos FROM node_local WHERE doc = ?",
            (doc,),
        ).rows
        seen = set()
        for parent, lpos in rows:
            assert (parent, lpos) not in seen
            seen.add((parent, lpos))


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_interleaved_inserts_between_same_neighbours(encoding):
    """Repeated insertion at the same spot — the renumbering stress case."""
    store = XmlStore(backend="sqlite", encoding=encoding)
    doc = store.load("<r><a/><b/></r>")
    root_id = store.query("/r", doc)[0].node_id
    for step in range(12):
        store.updates.insert(doc, root_id, 1, f"<m i='{step}'/>")
    values = store.query_values("/r/m/@i", doc)
    assert values == [str(i) for i in reversed(range(12))]
    _assert_order_keys_valid(store, doc)


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_insert_everywhere_positions(encoding):
    """Insert once at every possible index; order must match a list."""
    store = XmlStore(backend="sqlite", encoding=encoding)
    doc = store.load("<r/>")
    root_id = store.query("/r", doc)[0].node_id
    expected: list[str] = []
    rng = random.Random(42)
    for step in range(15):
        index = rng.randint(0, len(expected))
        store.updates.insert(doc, root_id, index, f"<x v='{step}'/>")
        expected.insert(index, str(step))
    assert store.query_values("/r/x/@v", doc) == expected
