"""Tests for repro.xmldom.chars: escaping, entities, name classes."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmldom import chars


class TestNameClasses:
    def test_ascii_letters_start_names(self):
        assert chars.is_name_start_char("a")
        assert chars.is_name_start_char("Z")
        assert chars.is_name_start_char("_")
        assert chars.is_name_start_char(":")

    def test_digits_do_not_start_names(self):
        assert not chars.is_name_start_char("1")
        assert not chars.is_name_start_char("-")

    def test_digits_and_hyphen_continue_names(self):
        assert chars.is_name_char("1")
        assert chars.is_name_char("-")
        assert chars.is_name_char(".")

    def test_space_is_not_a_name_char(self):
        assert not chars.is_name_char(" ")
        assert not chars.is_name_char("<")

    def test_unicode_name_start(self):
        assert chars.is_name_start_char("é")
        assert chars.is_name_start_char("名")

    @pytest.mark.parametrize(
        "name,valid",
        [
            ("book", True),
            ("book-list", True),
            ("_private", True),
            ("ns:tag", True),
            ("", False),
            ("1tag", False),
            ("bad name", False),
            ("-lead", False),
        ],
    )
    def test_is_valid_name(self, name, valid):
        assert chars.is_valid_name(name) is valid


class TestWhitespace:
    @pytest.mark.parametrize("ch", [" ", "\t", "\r", "\n"])
    def test_xml_whitespace(self, ch):
        assert chars.is_whitespace(ch)

    def test_nbsp_is_not_xml_whitespace(self):
        assert not chars.is_whitespace(" ")


class TestEscaping:
    def test_escape_text_basic(self):
        assert chars.escape_text("a < b & c > d") == \
            "a &lt; b &amp; c &gt; d"

    def test_escape_text_noop(self):
        text = "plain text with 'quotes' and \"doubles\""
        assert chars.escape_text(text) == text

    def test_escape_attribute_quotes(self):
        assert chars.escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_escape_attribute_keeps_apostrophes(self):
        assert chars.escape_attribute("it's") == "it's"

    def test_escape_roundtrip(self):
        original = '<a b="c&d">'
        assert chars.unescape(chars.escape_attribute(original)) == original


class TestEntities:
    @pytest.mark.parametrize(
        "entity,expected",
        [("lt", "<"), ("gt", ">"), ("amp", "&"), ("apos", "'"),
         ("quot", '"')],
    )
    def test_predefined(self, entity, expected):
        assert chars.resolve_entity(entity) == expected

    def test_decimal_reference(self):
        assert chars.resolve_entity("#65") == "A"

    def test_hex_reference(self):
        assert chars.resolve_entity("#x41") == "A"
        assert chars.resolve_entity("#X41") == "A"

    def test_unicode_reference(self):
        assert chars.resolve_entity("#x1F600") == "\U0001f600"

    def test_unknown_entity_raises(self):
        with pytest.raises(XmlSyntaxError):
            chars.resolve_entity("nbsp")

    def test_bad_numeric_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            chars.resolve_entity("#xZZ")
        with pytest.raises(XmlSyntaxError):
            chars.resolve_entity("#x110000")  # beyond Unicode


class TestUnescape:
    def test_mixed_references(self):
        assert chars.unescape("1 &lt; 2 &amp;&amp; 3 &gt; 2") == \
            "1 < 2 && 3 > 2"

    def test_no_ampersand_fast_path(self):
        assert chars.unescape("hello") == "hello"

    def test_numeric_in_text(self):
        assert chars.unescape("&#72;&#105;") == "Hi"

    def test_unterminated_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            chars.unescape("a &lt b")

    def test_adjacent_references(self):
        assert chars.unescape("&amp;amp;") == "&amp;"
