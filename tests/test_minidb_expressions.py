"""Unit tests for minidb scalar functions, aggregates, LIKE, arithmetic."""

import pytest

from repro.errors import ExecutionError
from repro.minidb.expressions import (
    Aggregate,
    arithmetic,
    BUILTIN_SCALARS,
    like_match,
    make_aggregate,
)


class TestScalars:
    def test_length(self):
        fn = BUILTIN_SCALARS["length"]
        assert fn("abc") == 3
        assert fn(b"ab") == 2
        assert fn(None) is None
        assert fn(1234) == 4

    def test_substr_one_based(self):
        fn = BUILTIN_SCALARS["substr"]
        assert fn("hello", 2) == "ello"
        assert fn("hello", 1, 2) == "he"
        assert fn("hello", 0) == "hello"
        assert fn(None, 1) is None

    def test_instr(self):
        fn = BUILTIN_SCALARS["instr"]
        assert fn("hello", "ll") == 3
        assert fn("hello", "zz") == 0
        assert fn(None, "x") is None

    def test_upper_lower(self):
        assert BUILTIN_SCALARS["upper"]("ab") == "AB"
        assert BUILTIN_SCALARS["lower"]("AB") == "ab"
        assert BUILTIN_SCALARS["upper"](None) is None

    def test_abs(self):
        fn = BUILTIN_SCALARS["abs"]
        assert fn(-3) == 3
        assert fn(2.5) == 2.5
        with pytest.raises(ExecutionError):
            fn("x")

    def test_coalesce(self):
        fn = BUILTIN_SCALARS["coalesce"]
        assert fn(None, None, 3, 4) == 3
        assert fn(None) is None

    def test_nullif(self):
        fn = BUILTIN_SCALARS["nullif"]
        assert fn(1, 1) is None
        assert fn(1, 2) == 1
        assert fn("a", 1) == "a"  # type mismatch: not equal

    def test_typeof(self):
        fn = BUILTIN_SCALARS["typeof"]
        assert fn(None) == "null"
        assert fn(3) == "integer"
        assert fn(3.5) == "real"
        assert fn("x") == "text"
        assert fn(b"x") == "blob"


class TestAggregates:
    def _feed(self, agg: Aggregate, values):
        for value in values:
            agg.add(value)
        return agg.result()

    def test_count_star_counts_everything(self):
        assert self._feed(make_aggregate("count", star=True),
                          [1, None, "x"]) == 3

    def test_count_skips_nulls(self):
        assert self._feed(make_aggregate("count", star=False),
                          [1, None, 2]) == 2

    def test_sum_avg(self):
        assert self._feed(make_aggregate("sum", False), [1, 2, 3]) == 6
        assert self._feed(make_aggregate("avg", False), [1, 2, 3]) == 2

    def test_min_max_mixed_numbers(self):
        assert self._feed(make_aggregate("min", False), [3, 1.5, 2]) == 1.5
        assert self._feed(make_aggregate("max", False), [3, 1.5, 2]) == 3

    def test_empty_aggregates_are_null(self):
        assert make_aggregate("sum", False).result() is None
        assert make_aggregate("min", False).result() is None
        assert make_aggregate("count", False).result() == 0

    def test_count_distinct(self):
        agg = make_aggregate("count distinct", False)
        assert self._feed(agg, [1, 1, 2, None, 2]) == 2


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%llo", True),
            ("hello", "h_llo", True),
            ("hello", "H%", True),  # case-insensitive, like SQLite
            ("hello", "he", False),
            ("a.b", "a.b", True),
            ("axb", "a.b", False),  # '.' is literal, not regex
            ("100%", "100%", True),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    def test_null_propagates(self):
        assert like_match(None, "x") is None
        assert like_match("x", None) is None

    def test_number_coerced(self):
        assert like_match(123, "1%") is True


class TestArithmetic:
    def test_basic_ops(self):
        assert arithmetic("+", 2, 3) == 5
        assert arithmetic("-", 2, 3) == -1
        assert arithmetic("*", 2, 3) == 6
        assert arithmetic("/", 7, 2) == 3.5
        assert arithmetic("/", 6, 2) == 3

    def test_division_by_zero_is_null(self):
        assert arithmetic("/", 1, 0) is None

    def test_null_propagation(self):
        assert arithmetic("+", None, 1) is None
        assert arithmetic("*", 1, None) is None

    def test_concat(self):
        assert arithmetic("||", "a", "b") == "ab"
        assert arithmetic("||", "a", 1) == "a1"
        assert arithmetic("||", None, "b") is None

    def test_non_numeric_rejected(self):
        with pytest.raises(ExecutionError):
            arithmetic("+", "a", 1)
