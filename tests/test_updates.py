"""Update-semantics tests: inserts/deletes per encoding, renumbering
costs, and post-update query correctness (invariant 5)."""

import pytest

from repro.core.dewey import DeweyKey
from repro.errors import UpdateError
from repro.store import XmlStore
from repro.xmldom import Element, Text, parse
from repro.xpath import Evaluator, string_value
from tests.conftest import ALL_ENCODINGS, ENCODINGS


def assert_values_match_oracle(store, doc, dom, xpath):
    """Compare query result *values* with the oracle.

    After updates the store's surrogate ids no longer correspond to a
    fresh preorder numbering of the mutated DOM, so identity comparison
    does not apply; attribute/text values in document order do.
    """
    got = [item.value for item in store.query(xpath, doc)]
    want = [string_value(n) for n in Evaluator(dom).evaluate(xpath)]
    assert got == want, f"{store.encoding.name}: {got} != {want}"

LIST_XML = (
    "<list>"
    + "".join(f'<item n="{i}"><v>{i}</v></item>' for i in range(8))
    + "</list>"
)


def make_store(encoding, gap=1, backend="sqlite"):
    store = XmlStore(backend=backend, encoding=encoding, gap=gap)
    doc = store.load(LIST_XML)
    root_id = store.query("/list", doc)[0].node_id
    return store, doc, root_id


def apply_dom(dom, index, fragment_xml):
    fragment = parse(f"<wrap>{fragment_xml}</wrap>").root.children[0]
    dom.root.insert(index, fragment)


class TestInsertSemantics:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    @pytest.mark.parametrize("index", [0, 3, 8])
    def test_insert_element_at_index(self, encoding, index):
        store, doc, root_id = make_store(encoding)
        dom = parse(LIST_XML)
        fragment_xml = '<item n="NEW"><v>new</v></item>'
        store.updates.insert(doc, root_id, index, fragment_xml)
        apply_dom(dom, index, fragment_xml)
        assert store.reconstruct(doc).structurally_equal(dom)
        assert_values_match_oracle(store, doc, dom, "/list/item/@n")

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_append_helper(self, encoding):
        store, doc, root_id = make_store(encoding)
        report = store.updates.append(doc, root_id, "<item n='z'/>")
        assert report.inserted == 1
        values = store.query_values("/list/item[last()]/@n", doc)
        assert values == ["z"]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_insert_into_empty_element(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load("<root><empty/></root>")
        empty_id = store.query("/root/empty", doc)[0].node_id
        store.updates.insert(doc, empty_id, 0, "<child/>")
        assert len(store.query("/root/empty/child", doc)) == 1

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_insert_text_updates_parent_value(self, encoding):
        store, doc, _root = make_store(encoding)
        v_id = store.query("/list/item[1]/v", doc)[0].node_id
        report = store.updates.insert(doc, v_id, 0, Text("pre-"))
        assert report.value_updates == 1
        assert store.query_values("/list/item[v = 'pre-0']/@n", doc) == \
            ["0"]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_insert_subtree_with_attributes(self, encoding):
        store, doc, root_id = make_store(encoding)
        fragment = Element("item", {"n": "X"})
        child = Element("v", {"unit": "ms"})
        child.append(Text("77"))
        fragment.append(child)
        report = store.updates.insert(doc, root_id, 4, fragment)
        assert report.inserted == 3
        assert store.query_values("//v[@unit = 'ms']/text()", doc) == \
            ["77"]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_insert_updates_document_info(self, encoding):
        store, doc, root_id = make_store(encoding)
        before = store.document_info(doc)
        store.updates.insert(doc, root_id, 0, "<item><v>x</v></item>")
        after = store.document_info(doc)
        assert after.node_count == before.node_count + 3
        assert after.next_id == before.next_id + 3

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_new_ids_do_not_collide(self, encoding):
        store, doc, root_id = make_store(encoding)
        for _ in range(5):
            store.updates.insert(doc, root_id, 0, "<item/>")
        rows = store.backend.execute(
            f"SELECT COUNT(*) FROM {store.node_table} WHERE doc = ?",
            (doc,),
        )
        ids = store.backend.execute(
            f"SELECT COUNT(DISTINCT id) FROM {store.node_table} "
            f"WHERE doc = ?",
            (doc,),
        )
        assert rows.rows[0][0] == ids.rows[0][0]

    def test_insert_bad_parent_raises(self):
        store, doc, _root = make_store("dewey")
        with pytest.raises(UpdateError):
            store.updates.insert(doc, 999, 0, "<x/>")

    def test_insert_bad_index_raises(self):
        store, doc, root_id = make_store("dewey")
        with pytest.raises(UpdateError):
            store.updates.insert(doc, root_id, 99, "<x/>")

    def test_insert_under_text_node_raises(self):
        store, doc, _root = make_store("dewey")
        text_id = store.query("/list/item[1]/v/text()", doc)[0].node_id
        with pytest.raises(UpdateError):
            store.updates.insert(doc, text_id, 0, "<x/>")


class TestDeleteSemantics:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_delete_subtree(self, encoding):
        store, doc, _root = make_store(encoding)
        target = store.query("/list/item[3]", doc)[0].node_id
        report = store.updates.delete(doc, target)
        assert report.deleted == 3  # item + v + text
        dom = parse(LIST_XML)
        dom.root.remove(dom.root.children[2])
        assert store.reconstruct(doc).structurally_equal(dom)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_delete_removes_attributes(self, encoding):
        store, doc, _root = make_store(encoding)
        target = store.query("/list/item[1]", doc)[0].node_id
        store.updates.delete(doc, target)
        attrs = store.backend.execute(
            f"SELECT COUNT(*) FROM {store.attr_table} "
            f"WHERE doc = ? AND owner = ?",
            (doc, target),
        )
        assert attrs.rows[0][0] == 0

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_delete_text_updates_parent_value(self, encoding):
        store, doc, _root = make_store(encoding)
        text_id = store.query("/list/item[2]/v/text()", doc)[0].node_id
        report = store.updates.delete(doc, text_id)
        assert report.value_updates == 1
        # The v element now has no text: value predicates see NULL.
        assert store.query_values("/list/item[2]/v", doc) == [None]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_delete_then_insert_reuses_space(self, encoding):
        store, doc, root_id = make_store(encoding)
        target = store.query("/list/item[4]", doc)[0].node_id
        store.updates.delete(doc, target)
        store.updates.insert(doc, root_id, 3, "<item n='re'/>")
        dom = parse(LIST_XML)
        dom.root.remove(dom.root.children[3])
        apply_dom(dom, 3, "<item n='re'/>")
        assert store.reconstruct(doc).structurally_equal(dom)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_delete_updates_node_count(self, encoding):
        store, doc, _root = make_store(encoding)
        before = store.document_info(doc).node_count
        target = store.query("/list/item[1]", doc)[0].node_id
        store.updates.delete(doc, target)
        assert store.document_info(doc).node_count == before - 3

    def test_delete_unknown_node_raises(self):
        store, doc, _root = make_store("global")
        with pytest.raises(UpdateError):
            store.updates.delete(doc, 999)


class TestRenumberingCosts:
    """The paper's update cost model, asserted directly."""

    def test_global_front_insert_relabels_tail(self):
        store, doc, root_id = make_store("global")
        total = store.document_info(doc).node_count
        report = store.updates.insert(doc, root_id, 0, "<item/>")
        # Everything after the root must shift (all nodes except root).
        assert report.relabeled >= total - 1

    def test_global_append_is_cheap(self):
        store, doc, root_id = make_store("global")
        report = store.updates.append(doc, root_id, "<item/>")
        # Only ancestor endpos extensions (root), no tail shift.
        assert report.relabeled <= 1

    def test_local_insert_relabels_following_siblings_only(self):
        store, doc, root_id = make_store("local")
        report = store.updates.insert(doc, root_id, 2, "<item/>")
        assert report.relabeled == 6  # items 2..7

    def test_dewey_insert_relabels_following_subtrees(self):
        store, doc, root_id = make_store("dewey")
        report = store.updates.insert(doc, root_id, 2, "<item/>")
        assert report.relabeled == 6 * 3  # six items x 3 nodes each

    def test_dewey_relabel_preserves_subtree_keys(self):
        store, doc, root_id = make_store("dewey")
        store.updates.insert(doc, root_id, 0, "<item n='new'/>")
        rows = store.backend.execute(
            f"SELECT dkey, parent, id FROM {store.node_table} "
            f"WHERE doc = ? ORDER BY dkey",
            (doc,),
        ).rows
        # Every non-top key must extend its parent's key by one component.
        key_by_id = {row[2]: DeweyKey.decode(row[0]) for row in rows}
        for key_bytes, parent, _node_id in rows:
            if parent == 0:
                continue
            key = DeweyKey.decode(key_bytes)
            assert key.parent() == key_by_id[parent]

    def test_deletes_never_relabel(self):
        for encoding in ENCODINGS:
            store, doc, _root = make_store(encoding)
            target = store.query("/list/item[2]", doc)[0].node_id
            report = store.updates.delete(doc, target)
            assert report.relabeled == 0

    def test_ordering_of_costs_matches_paper(self):
        """Global >= Dewey >= Local for a front insertion."""
        costs = {}
        for encoding in ENCODINGS:
            store, doc, root_id = make_store(encoding)
            report = store.updates.insert(doc, root_id, 0, "<item/>")
            costs[encoding] = report.relabeled
        assert costs["global"] >= costs["dewey"] >= costs["local"]

    def test_dewey_locality_beats_global(self):
        """Inserting deep in the tree: Dewey only touches the local
        sibling subtrees while Global shifts the tail."""
        costs = {}
        for encoding in ("global", "dewey"):
            store, doc, _root = make_store(encoding)
            parent = store.query("/list/item[2]", doc)[0].node_id
            report = store.updates.insert(doc, parent, 0, "<v>n</v>")
            costs[encoding] = report.relabeled
        assert costs["dewey"] < costs["global"]


class TestSparseNumbering:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_gap_absorbs_single_insert(self, encoding):
        store, doc, root_id = make_store(encoding, gap=16)
        report = store.updates.insert(doc, root_id, 3, "<item/>")
        assert report.relabeled == 0

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_gap_exhaustion_triggers_renumbering(self, encoding):
        store, doc, root_id = make_store(encoding, gap=2)
        relabeled = 0
        for _ in range(6):
            report = store.updates.insert(doc, root_id, 1, "<item/>")
            relabeled += report.relabeled
        assert relabeled > 0  # eventually the gap runs out

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_gapped_inserts_stay_correct(self, encoding):
        store, doc, root_id = make_store(encoding, gap=4)
        dom = parse(LIST_XML)
        for step in range(5):
            xml = f"<item n='g{step}'/>"
            store.updates.insert(doc, root_id, 1, xml)
            apply_dom(dom, 1, xml)
        assert store.reconstruct(doc).structurally_equal(dom)
        assert_values_match_oracle(store, doc, dom, "/list/item/@n")


class TestUpdatesOnMinidb:
    """The same update machinery must work on the from-scratch engine."""

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_insert_delete_roundtrip(self, encoding):
        store, doc, root_id = make_store(encoding, backend="minidb")
        dom = parse(LIST_XML)
        store.updates.insert(doc, root_id, 2, "<item n='m'/>")
        apply_dom(dom, 2, "<item n='m'/>")
        target = store.query("/list/item[5]", doc)[0].node_id
        store.updates.delete(doc, target)
        dom.root.remove(dom.root.children[4])
        assert store.reconstruct(doc).structurally_equal(dom)
