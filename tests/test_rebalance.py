"""Tests for offline rebalancing (the amortised renumbering strategy)."""

import pytest

from repro.core.dewey import DeweyKey
from repro.store import XmlStore
from tests.conftest import ALL_ENCODINGS


def churned_store(encoding, gap=1, backend="sqlite"):
    """A store after heavy same-spot insertion churn."""
    store = XmlStore(backend=backend, encoding=encoding, gap=gap)
    doc = store.load("<r><a>x</a><b>y</b></r>")
    root = store.query("/r", doc)[0].node_id
    for step in range(12):
        store.updates.insert(doc, root, 1, f"<m i='{step}'/>")
    return store, doc


class TestRebalance:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_preserves_content_and_order(self, encoding):
        store, doc = churned_store(encoding)
        before = store.reconstruct(doc)
        report = store.updates.rebalance(doc)
        assert report.relabeled == store.node_count(doc)
        assert store.reconstruct(doc).structurally_equal(before)
        values = store.query_values("/r/m/@i", doc)
        assert values == [str(i) for i in reversed(range(12))]

    @pytest.mark.parametrize("encoding", ("global", "local", "dewey"))
    def test_restores_gaps(self, encoding):
        store, doc = churned_store(encoding, gap=16)
        root = store.query("/r", doc)[0].node_id
        # The churn exhausted the original gaps at the insertion point.
        probe = store.updates.insert(doc, root, 1, "<z/>")
        assert probe.relabeled > 0
        store.updates.rebalance(doc)
        # With gaps restored, a small burst absorbs without relabeling
        # (same-spot midpoint splitting halves the gap each time, so a
        # gap of 16 safely absorbs ~log2(16) insertions).
        for _ in range(3):
            report = store.updates.insert(doc, root, 1, "<z/>")
            assert report.relabeled == 0

    def test_ordpath_keys_shrink(self):
        store = XmlStore(backend="sqlite", encoding="ordpath")
        doc = store.load("<r><a>x</a><b>y</b></r>")
        root = store.query("/r", doc)[0].node_id
        for step in range(25):  # heavy same-spot churn grows carets
            store.updates.insert(doc, root, 1, f"<m i='{step}'/>")

        def key_bytes():
            rows = store.backend.execute(
                "SELECT okey FROM node_ordpath WHERE doc = ?", (doc,)
            ).rows
            lengths = [len(r[0]) for r in rows]
            return max(lengths), sum(lengths) / len(lengths)

        _grown_max, grown_avg = key_bytes()
        store.updates.rebalance(doc)
        fresh_max, fresh_avg = key_bytes()
        # Carets collapsed: average key size drops back to the depth
        # floor (max is bounded by tree depth either way).
        assert fresh_avg < grown_avg
        assert fresh_max <= _grown_max

    def test_global_intervals_consistent_after_rebalance(self):
        store, doc = churned_store("global", gap=4)
        store.updates.rebalance(doc)
        rows = store.backend.execute(
            "SELECT pos, endpos, parent, id FROM node_global "
            "WHERE doc = ? ORDER BY pos",
            (doc,),
        ).rows
        spans = {row[3]: (row[0], row[1]) for row in rows}
        for pos, endpos, parent, _node_id in rows:
            assert endpos >= pos
            if parent != 0:
                parent_pos, parent_end = spans[parent]
                assert parent_pos < pos and endpos <= parent_end

    def test_dewey_keys_dense_after_rebalance(self):
        store, doc = churned_store("dewey", gap=1)
        store.updates.rebalance(doc)
        rows = store.backend.execute(
            "SELECT dkey FROM node_dewey WHERE doc = ? ORDER BY dkey",
            (doc,),
        ).rows
        top_level = [
            DeweyKey.decode(r[0]) for r in rows
            if DeweyKey.decode(r[0]).depth() == 2
        ]
        assert [k.local_position() for k in top_level] == \
            list(range(1, len(top_level) + 1))

    @pytest.mark.parametrize("backend", ("sqlite", "minidb"))
    def test_works_on_both_backends(self, backend):
        store, doc = churned_store("dewey", backend=backend)
        before = store.reconstruct(doc)
        store.updates.rebalance(doc)
        assert store.reconstruct(doc).structurally_equal(before)

    def test_queries_after_rebalance_match_oracle(self):
        store, doc = churned_store("global")
        rebuilt = store.reconstruct(doc)
        store.updates.rebalance(doc)
        fresh = XmlStore(backend="sqlite", encoding="global")
        fresh_doc = fresh.load(rebuilt)
        for xpath in ("/r/m[3]", "//m[last()]", "/r/b/preceding::m"):
            got = [i.value for i in store.query(xpath, doc)]
            want = [i.value for i in fresh.query(xpath, fresh_doc)]
            assert got == want, xpath
