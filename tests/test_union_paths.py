"""Tests for top-level XPath unions (``p1 | p2``) across the stack."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TranslationError, UnsupportedXPathError
from repro.store import XmlStore
from repro.workload.docgen import random_document
from repro.xpath import UnionPath, evaluate, parse_xpath, string_value
from repro.xmldom import parse
from tests.conftest import (
    ALL_ENCODINGS,
    oracle_identities,
    store_identities,
)
from tests.test_property_differential import random_query

DOC = parse(
    '<bib><book year="1994"><title>A</title><author>X</author></book>'
    '<book year="2000"><title>B</title><author>Y</author>'
    "<author>Z</author></book></bib>"
)


class TestParser:
    def test_union_parses(self):
        path = parse_xpath("//a | //b")
        assert isinstance(path, UnionPath)
        assert len(path.paths) == 2

    def test_three_arms(self):
        path = parse_xpath("/a | /b | /c")
        assert len(path.paths) == 3

    def test_single_path_unwrapped(self):
        path = parse_xpath("//a")
        assert not isinstance(path, UnionPath)

    def test_str_roundtrip(self):
        path = parse_xpath("//a | /b/c[1]")
        assert parse_xpath(str(path)) == path


class TestEvaluator:
    def test_union_merges_in_document_order(self):
        values = [
            string_value(n)
            for n in evaluate(DOC, "//author | //title")
        ]
        assert values == ["A", "X", "B", "Y", "Z"]

    def test_union_deduplicates(self):
        result = evaluate(DOC, "//title | /bib/book/title")
        assert len(result) == 2

    def test_union_of_attributes(self):
        result = evaluate(DOC, "//book/@year | //book[1]/@year")
        assert [n.value for n in result] == ["1994", "2000"]


class TestTranslation:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_union_sql_matches_oracle(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(DOC)
        for xpath in (
            "//author | //title",
            "/bib/book[1]/title | /bib/book[2]/author[last()]",
            "//book/@year | //book[2]/@year",
            "//title | //title",
        ):
            assert store_identities(store, doc, xpath) == \
                oracle_identities(DOC, xpath), (encoding, xpath)

    def test_union_uses_sql_union(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(DOC)
        translated = store.translate("//a | //b", doc)
        assert " UNION " in translated.sql
        assert translated.sql.count("SELECT DISTINCT") == 2

    def test_mixed_kind_union_rejected(self):
        from repro.errors import UnsupportedXPathError

        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(DOC)
        with pytest.raises(UnsupportedXPathError):
            store.translate("//title | //@year", doc)

    def test_union_on_minidb(self):
        store = XmlStore(backend="minidb", encoding="dewey")
        doc = store.load(DOC)
        assert store_identities(store, doc, "//author | //title") == \
            oracle_identities(DOC, "//author | //title")

    def test_union_client_order_for_local(self):
        store = XmlStore(backend="sqlite", encoding="local")
        doc = store.load(DOC)
        translated = store.translate("//author | //title", doc)
        assert translated.needs_client_order
        assert store_identities(store, doc, "//author | //title") == \
            oracle_identities(DOC, "//author | //title")


@settings(max_examples=40, deadline=None)
@given(doc_seed=st.integers(0, 5000), query_seed=st.integers(0, 5000))
def test_random_unions_match_oracle(doc_seed, query_seed):
    document = random_document(doc_seed, max_depth=4, max_children=3)
    rng = random.Random(query_seed)
    arms = [random_query(rng) for _ in range(rng.randint(2, 3))]
    xpath = " | ".join(arms)
    want = oracle_identities(document, xpath)
    for encoding in ALL_ENCODINGS:
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        try:
            got = store_identities(store, doc, xpath)
        except (TranslationError, UnsupportedXPathError):
            continue
        assert got == want, (encoding, xpath)


class TestMixedProjectionAttributeUnions:
    """Arms that disagree on projection width (found by fuzzing).

    An attribute arm only projects its owner's order columns when the
    owner has a stable alias; ``/@id`` (document-node attributes) has
    none, so ``/@id | //@x`` used to emit a UNION of a 3-column and a
    4-column SELECT, which SQL rejects.  The translator now falls back
    to the minimal projection plus client-side ordering.
    """

    DOC = parse('<r id="1"><a x="2"><b y="3"/></a><a x="4"/></r>')

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    @pytest.mark.parametrize("xpath", [
        "/@id | //@x",
        "//@x | //b/@y",
        "/r/@id | /r/a/@x | //@y",
        "//@* | /@id",
    ])
    def test_mixed_owner_arms_match_oracle(self, encoding, xpath):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(self.DOC)
        assert store_identities(store, doc, xpath) == \
            oracle_identities(self.DOC, xpath)

    def test_client_order_fallback_is_used(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(self.DOC)
        translated = store.translate("/@id | //@x", doc)
        assert translated.result_kind == "attribute"
        assert translated.needs_client_order
