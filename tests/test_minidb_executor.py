"""Functional tests for the minidb engine (executor + planner)."""

import pytest

from repro.errors import CatalogError, ExecutionError, SqlSyntaxError
from repro.minidb import MiniDb


@pytest.fixture
def db():
    engine = MiniDb()
    engine.execute("CREATE TABLE emp (id INTEGER, name TEXT, "
                   "dept TEXT, salary REAL, boss INTEGER)")
    engine.execute("CREATE INDEX ix_emp_dept ON emp (dept, salary)")
    engine.execute("CREATE UNIQUE INDEX ux_emp_id ON emp (id)")
    rows = [
        (1, "ann", "eng", 120.0, None),
        (2, "bob", "eng", 100.0, 1),
        (3, "cid", "ops", 80.0, 1),
        (4, "dee", "ops", 95.0, 3),
        (5, "eve", "sales", 70.0, 1),
    ]
    engine.executemany("INSERT INTO emp VALUES (?, ?, ?, ?, ?)", rows)
    return engine


class TestSelectBasics:
    def test_full_scan(self, db):
        result = db.execute("SELECT name FROM emp ORDER BY name")
        assert [r[0] for r in result.rows] == [
            "ann", "bob", "cid", "dee", "eve",
        ]

    def test_star_columns(self, db):
        result = db.execute("SELECT * FROM emp WHERE id = 1")
        assert result.columns == ("id", "name", "dept", "salary", "boss")
        assert result.rows == [(1, "ann", "eng", 120.0, None)]

    def test_where_equality_uses_index(self, db):
        before = db.stats.full_scans
        result = db.execute(
            "SELECT name FROM emp WHERE dept = 'eng' ORDER BY name"
        )
        assert [r[0] for r in result.rows] == ["ann", "bob"]
        assert db.stats.full_scans == before  # index path

    def test_index_range_after_equality(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE dept = 'ops' AND salary > 85"
        )
        assert result.rows == [("dee",)]

    def test_pure_range_scan(self, db):
        db.execute("CREATE INDEX ix_emp_salary ON emp (salary)")
        result = db.execute(
            "SELECT name FROM emp WHERE salary >= 95 AND salary <= 110 "
            "ORDER BY salary"
        )
        assert [r[0] for r in result.rows] == ["dee", "bob"]

    def test_order_by_desc(self, db):
        result = db.execute(
            "SELECT name FROM emp ORDER BY salary DESC LIMIT 2"
        )
        assert [r[0] for r in result.rows] == ["ann", "bob"]

    def test_limit_zero(self, db):
        assert db.execute("SELECT * FROM emp LIMIT 0").rows == []

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert [r[0] for r in result.rows] == ["eng", "ops", "sales"]

    def test_expression_select_list(self, db):
        result = db.execute(
            "SELECT name || '!', salary * 2 FROM emp WHERE id = 3"
        )
        assert result.rows == [("cid!", 160.0)]

    def test_is_null(self, db):
        result = db.execute("SELECT name FROM emp WHERE boss IS NULL")
        assert result.rows == [("ann",)]
        result = db.execute(
            "SELECT COUNT(*) FROM emp WHERE boss IS NOT NULL"
        )
        assert result.rows == [(4,)]

    def test_null_comparison_filters_rows(self, db):
        # boss = 1 excludes the NULL row (UNKNOWN, not TRUE).
        result = db.execute("SELECT COUNT(*) FROM emp WHERE boss = 1")
        assert result.rows == [(3,)]

    def test_like(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE name LIKE '%e%' ORDER BY name"
        )
        assert [r[0] for r in result.rows] == ["dee", "eve"]

    def test_in_list(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE dept IN ('ops', 'sales') "
            "ORDER BY id"
        )
        assert [r[0] for r in result.rows] == ["cid", "dee", "eve"]


class TestJoins:
    def test_self_join(self, db):
        result = db.execute(
            "SELECT e.name, b.name FROM emp e, emp b "
            "WHERE e.boss = b.id ORDER BY e.id"
        )
        assert result.rows == [
            ("bob", "ann"), ("cid", "ann"), ("dee", "cid"),
            ("eve", "ann"),
        ]

    def test_join_on_syntax(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM emp e JOIN emp b ON e.boss = b.id"
        )
        assert result.rows == [(4,)]

    def test_left_join_produces_nulls(self, db):
        result = db.execute(
            "SELECT e.name, b.name FROM emp e "
            "LEFT JOIN emp b ON e.boss = b.id WHERE e.id = 1"
        )
        assert result.rows == [("ann", None)]

    def test_three_way_join(self, db):
        result = db.execute(
            "SELECT e.name FROM emp e, emp b, emp g "
            "WHERE e.boss = b.id AND b.boss = g.id"
        )
        assert result.rows == [("dee",)]

    def test_derived_table_join(self, db):
        result = db.execute(
            "SELECT e.name FROM (SELECT id FROM emp WHERE dept = 'ops') "
            "d, emp e WHERE e.boss = d.id"
        )
        assert result.rows == [("dee",)]


class TestSubqueries:
    def test_correlated_exists(self, db):
        result = db.execute(
            "SELECT name FROM emp e WHERE EXISTS "
            "(SELECT 1 FROM emp u WHERE u.boss = e.id) ORDER BY name"
        )
        assert [r[0] for r in result.rows] == ["ann", "cid"]

    def test_not_exists(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM emp e WHERE NOT EXISTS "
            "(SELECT 1 FROM emp u WHERE u.boss = e.id)"
        )
        assert result.rows == [(3,)]

    def test_correlated_scalar_count(self, db):
        result = db.execute(
            "SELECT name, (SELECT COUNT(*) FROM emp u "
            "WHERE u.boss = e.id) FROM emp e ORDER BY e.id"
        )
        assert result.rows == [
            ("ann", 3), ("bob", 0), ("cid", 1), ("dee", 0), ("eve", 0),
        ]

    def test_in_select(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE id IN "
            "(SELECT boss FROM emp WHERE boss IS NOT NULL) ORDER BY id"
        )
        assert [r[0] for r in result.rows] == ["ann", "cid"]

    def test_scalar_subquery_empty_is_null(self, db):
        result = db.execute(
            "SELECT (SELECT name FROM emp WHERE id = 99)"
        )
        assert result.rows == [(None,)]


class TestAggregates:
    def test_global_aggregates(self, db):
        result = db.execute(
            "SELECT COUNT(*), MIN(salary), MAX(salary), SUM(salary), "
            "AVG(salary) FROM emp"
        )
        assert result.rows == [(5, 70.0, 120.0, 465.0, 93.0)]

    def test_count_skips_nulls(self, db):
        result = db.execute("SELECT COUNT(boss) FROM emp")
        assert result.rows == [(4,)]

    def test_group_by(self, db):
        result = db.execute(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept"
        )
        assert result.rows == [("eng", 2), ("ops", 2), ("sales", 1)]

    def test_having(self, db):
        result = db.execute(
            "SELECT dept FROM emp GROUP BY dept "
            "HAVING COUNT(*) > 1 ORDER BY dept"
        )
        assert [r[0] for r in result.rows] == ["eng", "ops"]

    def test_aggregate_over_empty_set(self, db):
        result = db.execute(
            "SELECT COUNT(*), MAX(salary) FROM emp WHERE dept = 'hr'"
        )
        assert result.rows == [(0, None)]

    def test_group_by_empty_set_has_no_groups(self, db):
        result = db.execute(
            "SELECT dept, COUNT(*) FROM emp WHERE dept = 'hr' "
            "GROUP BY dept"
        )
        assert result.rows == []

    def test_aggregate_inside_function(self, db):
        result = db.execute(
            "SELECT COALESCE(MAX(salary), 0) FROM emp WHERE dept = 'hr'"
        )
        assert result.rows == [(0,)]

    def test_order_by_aggregate_alias(self, db):
        result = db.execute(
            "SELECT dept, COUNT(*) n FROM emp GROUP BY dept ORDER BY n "
            "DESC, dept"
        )
        assert result.rows == [("eng", 2), ("ops", 2), ("sales", 1)]


class TestUnion:
    def test_union_all(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE dept = 'eng' UNION ALL "
            "SELECT name FROM emp WHERE salary > 110"
        )
        assert sorted(r[0] for r in result.rows) == ["ann", "ann", "bob"]

    def test_union_dedupes(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE dept = 'eng' UNION "
            "SELECT name FROM emp WHERE salary > 110 ORDER BY 1"
        )
        assert [r[0] for r in result.rows] == ["ann", "bob"]

    def test_union_order_by_name(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE id <= 2 UNION ALL "
            "SELECT name FROM emp WHERE id = 5 ORDER BY name DESC"
        )
        assert [r[0] for r in result.rows] == ["eve", "bob", "ann"]


class TestDml:
    def test_update_with_index_where(self, db):
        result = db.execute(
            "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'"
        )
        assert result.rowcount == 2
        check = db.execute("SELECT salary FROM emp WHERE id = 1")
        assert check.rows == [(130.0,)]

    def test_update_is_visible_to_index(self, db):
        db.execute("UPDATE emp SET dept = 'hr' WHERE id = 5")
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE dept = 'hr'"
        ).rows == [(1,)]
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE dept = 'sales'"
        ).rows == [(0,)]

    def test_delete(self, db):
        result = db.execute("DELETE FROM emp WHERE salary < 90")
        assert result.rowcount == 2
        assert db.row_count("emp") == 3

    def test_delete_all(self, db):
        db.execute("DELETE FROM emp")
        assert db.row_count("emp") == 0

    def test_unique_violation(self, db):
        with pytest.raises(ExecutionError):
            db.execute(
                "INSERT INTO emp VALUES (1, 'dup', 'eng', 1.0, NULL)"
            )
        # The failed insert must not leave a phantom row behind.
        assert db.row_count("emp") == 5

    def test_executemany_rowcount(self, db):
        result = db.executemany(
            "INSERT INTO emp VALUES (?, ?, ?, ?, ?)",
            [(10, "x", "hr", 1.0, None), (11, "y", "hr", 2.0, None)],
        )
        assert result.rowcount == 2

    def test_shift_update_no_unique_collision(self, db):
        # The renumbering pattern used by the Global encoding.
        db.execute("CREATE TABLE seq (pos INTEGER)")
        db.execute("CREATE INDEX ix_seq ON seq (pos)")
        db.executemany(
            "INSERT INTO seq VALUES (?)", [(i,) for i in range(10)]
        )
        db.execute("UPDATE seq SET pos = pos + 5 WHERE pos >= 3")
        result = db.execute("SELECT pos FROM seq ORDER BY pos")
        assert [r[0] for r in result.rows] == [0, 1, 2] + list(
            range(8, 15)
        )


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM ghosts")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT shoe_size FROM emp")

    def test_ambiguous_column(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT id FROM emp a, emp b")

    def test_duplicate_alias(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT 1 FROM emp e, emp e")

    def test_missing_parameter(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM emp WHERE id = ?")

    def test_unknown_function(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT frobnicate(id) FROM emp")

    def test_executemany_rejects_select(self, db):
        with pytest.raises(ExecutionError):
            db.executemany("SELECT 1", [()])

    def test_syntax_error(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT * FORM emp")


class TestFunctionsAndCache:
    def test_builtin_scalars(self, db):
        result = db.execute(
            "SELECT LENGTH(name), SUBSTR(name, 1, 2), INSTR(name, 'n'), "
            "UPPER(name) FROM emp WHERE id = 1"
        )
        assert result.rows == [(3, "an", 2, "ANN")]

    def test_custom_function(self, db):
        db.create_function("double_it", lambda v: v * 2)
        result = db.execute("SELECT double_it(salary) FROM emp "
                            "WHERE id = 2")
        assert result.rows == [(200.0,)]

    def test_plan_cache_invalidated_by_ddl(self, db):
        sql = "SELECT COUNT(*) FROM emp WHERE dept = 'eng'"
        assert db.execute(sql).rows == [(2,)]
        db.execute("CREATE TABLE other (a INTEGER)")
        assert db.execute(sql).rows == [(2,)]

    def test_dewey_functions_preregistered(self, db):
        from repro.core.dewey import DeweyKey

        key = DeweyKey.parse("1.2.3").encode()
        result = db.execute("SELECT dewey_local(?)", (key,))
        assert result.rows == [(3,)]

    def test_stats_track_reads_and_writes(self, db):
        db.reset_stats()
        db.execute("SELECT * FROM emp")
        assert db.stats.rows_read == 5
        db.execute("INSERT INTO emp VALUES (9, 'z', 'hr', 1.0, NULL)")
        assert db.stats.rows_written == 1


class TestExplain:
    def test_index_access_reported(self, db):
        lines = db.explain("SELECT name FROM emp WHERE dept = 'eng'")
        assert len(lines) == 1
        assert "INDEX ix_emp_dept" in lines[0]
        assert "eq[1]" in lines[0]

    def test_full_scan_reported(self, db):
        lines = db.explain("SELECT name FROM emp WHERE name = 'ann'")
        assert "FULL SCAN" in lines[0]

    def test_join_order_and_filters(self, db):
        lines = db.explain(
            "SELECT 1 FROM emp e, emp b WHERE e.boss = b.id "
            "AND b.salary > 100"
        )
        assert len(lines) == 2
        assert "e" in lines[0]
        assert "INDEX ux_emp_id" in lines[1]

    def test_range_access_reported(self, db):
        lines = db.explain(
            "SELECT 1 FROM emp WHERE dept = 'eng' AND salary > 50"
        )
        assert "range" in lines[0]

    def test_union_arms_indented(self, db):
        lines = db.explain(
            "SELECT id FROM emp WHERE dept = 'eng' "
            "UNION SELECT id FROM emp WHERE dept = 'ops'"
        )
        assert lines[0].startswith("UNION")
        assert any("arm 0" in line for line in lines)

    def test_derived_table_nested(self, db):
        lines = db.explain(
            "SELECT 1 FROM (SELECT id FROM emp WHERE dept = 'eng') d"
        )
        assert any("derived d" in line for line in lines)
        assert any("[d]" in line for line in lines)

    def test_explain_rejects_dml(self, db):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            db.explain("DELETE FROM emp")
