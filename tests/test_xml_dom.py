"""Tests for the DOM model and serializer."""

from hypothesis import given, settings, strategies as st

from repro.workload.docgen import random_document
from repro.xmldom import (
    Comment,
    Element,
    Text,
    document_order,
    new_document,
    parse,
    serialize,
)


class TestTreeOperations:
    def test_append_sets_parent(self):
        doc, root = new_document("r")
        child = root.append(Element("c"))
        assert child.parent is root
        assert root.children == [child]

    def test_insert_at_index(self):
        _doc, root = new_document("r")
        a, b = Element("a"), Element("b")
        root.append(a)
        root.insert(0, b)
        assert [c.tag for c in root.element_children()] == ["b", "a"]

    def test_append_moves_node(self):
        _doc, root = new_document("r")
        a = root.append(Element("a"))
        b = root.append(Element("b"))
        b.append(a)  # re-parent
        assert root.children == [b]
        assert a.parent is b

    def test_remove(self):
        _doc, root = new_document("r")
        a = root.append(Element("a"))
        root.remove(a)
        assert root.children == []
        assert a.parent is None

    def test_detach_noop_when_detached(self):
        node = Element("x")
        assert node.detach() is node

    def test_sibling_index(self):
        _doc, root = new_document("r")
        children = [root.append(Element(t)) for t in "abc"]
        assert [c.sibling_index() for c in children] == [0, 1, 2]

    def test_ancestors(self):
        doc, root = new_document("r")
        mid = root.append(Element("m"))
        leaf = mid.append(Element("l"))
        assert list(leaf.ancestors()) == [mid, root, doc]

    def test_depth(self):
        doc, root = new_document("r")
        leaf = root.append(Element("m")).append(Element("l"))
        assert root.depth() == 1
        assert leaf.depth() == 3

    def test_root_document(self):
        doc, root = new_document("r")
        leaf = root.append(Element("l"))
        assert leaf.root_document() is doc
        assert Element("x").root_document() is None


class TestPreorder:
    def test_preorder_matches_document_order(self):
        doc = parse("<a><b><c/>t</b><d/></a>")
        names = [
            getattr(n, "tag", getattr(n, "content", None))
            for n in doc.iter_preorder()
        ]
        assert names == ["a", "b", "c", "t", "d"]

    def test_subtree_size(self):
        doc = parse("<a><b><c/></b><d/></a>")
        assert doc.subtree_size() == 4
        assert doc.root.subtree_size() == 3

    def test_document_order_positions(self):
        doc = parse("<a><b/><c/></a>")
        order = document_order(doc)
        a, b, c = doc.root, *doc.root.children
        assert order[id(a)] < order[id(b)] < order[id(c)]


class TestValues:
    def test_element_text_value_concatenates_descendants(self):
        doc = parse("<a>x<b>y<c>z</c></b>w</a>")
        assert doc.root.text_value() == "xyzw"

    def test_find_children(self):
        doc = parse("<a><b/><c/><b/></a>")
        assert len(doc.root.find_children("b")) == 2

    def test_attribute_get_set(self):
        element = Element("e", {"a": "1"})
        assert element.get("a") == "1"
        assert element.get("missing") is None
        assert element.get("missing", "d") == "d"
        element.set("b", "2")
        assert element.attributes == {"a": "1", "b": "2"}


class TestStructuralEquality:
    def test_equal_documents(self):
        a = parse("<r><x y='1'>t</x><!--c--></r>")
        b = parse('<r><x y="1">t</x><!--c--></r>')
        assert a.structurally_equal(b)

    def test_attribute_order_irrelevant(self):
        a = parse("<r a='1' b='2'/>")
        b = parse("<r b='2' a='1'/>")
        assert a.structurally_equal(b)

    def test_child_order_matters(self):
        a = parse("<r><x/><y/></r>")
        b = parse("<r><y/><x/></r>")
        assert not a.structurally_equal(b)

    def test_text_difference(self):
        assert not parse("<r>a</r>").structurally_equal(parse("<r>b</r>"))

    def test_tag_difference(self):
        assert not parse("<r><a/></r>").structurally_equal(
            parse("<r><b/></r>")
        )

    def test_different_node_kinds(self):
        assert not Text("x").structurally_equal(Comment("x"))


class TestSerializer:
    def test_simple_roundtrip(self):
        source = '<a x="1"><b>text</b><!--c--><?pi d?></a>'
        assert serialize(parse(source)) == source

    def test_escaping_in_text(self):
        doc, root = new_document("a")
        root.append(Text("1 < 2 & 3"))
        assert serialize(doc) == "<a>1 &lt; 2 &amp; 3</a>"

    def test_escaping_in_attribute(self):
        doc, root = new_document("a")
        root.set("t", 'say "<hi>"')
        assert parse(serialize(doc)).root.get("t") == 'say "<hi>"'

    def test_empty_element_self_closes(self):
        doc, _root = new_document("a")
        assert serialize(doc) == "<a/>"

    def test_xml_declaration(self):
        doc, _root = new_document("a")
        out = serialize(doc, xml_declaration=True)
        assert out.startswith('<?xml version="1.0"')

    def test_pretty_print_indents_elements(self):
        doc = parse("<a><b><c/></b></a>")
        pretty = serialize(doc, pretty=True)
        assert "\n  <b>" in pretty
        assert "\n    <c/>" in pretty

    def test_pretty_print_preserves_mixed_content(self):
        doc = parse("<p>one<b>two</b>three</p>")
        pretty = serialize(doc, pretty=True)
        assert "one<b>two</b>three" in pretty

    def test_serialize_subtree(self):
        doc = parse("<a><b>x</b></a>")
        assert serialize(doc.root.children[0]) == "<b>x</b>"

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_roundtrip_random_documents(self, seed):
        doc = random_document(seed)
        again = parse(serialize(doc))
        assert doc.structurally_equal(again)
