"""Unit tests for the SQL fragment builder used by the translator."""

from repro.core.sqlgen import (
    AliasGenerator,
    Frag,
    SelectBuilder,
    TranslationStats,
    all_of,
    any_of,
    exists,
    frag,
    join_frags,
    scalar_count,
    sql_string_literal,
)


class TestFrag:
    def test_params_travel_with_sql(self):
        f = frag("a = ? AND b = ?", 1, "x")
        assert f.sql == "a = ? AND b = ?"
        assert f.params == (1, "x")

    def test_empty_frag_is_falsy(self):
        assert not frag("")
        assert frag("1 = 1")

    def test_join_frags_preserves_order(self):
        joined = join_frags(
            [frag("a = ?", 1), frag(""), frag("b = ?", 2)], " AND "
        )
        assert joined.sql == "a = ? AND b = ?"
        assert joined.params == (1, 2)

    def test_all_of(self):
        combined = all_of([frag("x"), frag("y", 9)])
        assert combined.sql == "x AND y"
        assert combined.params == (9,)

    def test_any_of_parenthesises(self):
        combined = any_of([frag("x = ?", 1), frag("y = ?", 2)])
        assert combined.sql == "(x = ? OR y = ?)"
        assert combined.params == (1, 2)

    def test_any_of_empty(self):
        assert not any_of([])


class TestAliasGenerator:
    def test_unique_sequence(self):
        gen = AliasGenerator()
        names = [gen.next() for _ in range(4)]
        assert names == ["n0", "n1", "n2", "n3"]

    def test_custom_prefix(self):
        gen = AliasGenerator("x")
        assert gen.next() == "x0"


class TestSelectBuilder:
    def test_render_basic(self):
        builder = SelectBuilder()
        builder.select = [Frag("t.a")]
        builder.add_from("things", "t")
        builder.add_where(frag("t.a > ?", 5))
        builder.order_by = ["t.a"]
        rendered = builder.render()
        assert rendered.sql == (
            "SELECT t.a FROM things t WHERE t.a > ? ORDER BY t.a"
        )
        assert rendered.params == (5,)

    def test_distinct(self):
        builder = SelectBuilder()
        builder.distinct = True
        builder.select = [Frag("1")]
        builder.add_from("t", "t")
        assert builder.render().sql.startswith("SELECT DISTINCT 1")

    def test_param_order_across_clauses(self):
        builder = SelectBuilder()
        builder.select = [Frag("?", (0,))]
        builder.add_from("t", "t")
        builder.add_where(frag("a = ?", 1))
        builder.add_where(frag("b IN (?, ?)", 2, 3))
        rendered = builder.render()
        assert rendered.params == (0, 1, 2, 3)

    def test_empty_where_omitted(self):
        builder = SelectBuilder()
        builder.select = [Frag("1")]
        builder.add_from("t", "t")
        builder.add_where(frag(""))
        assert "WHERE" not in builder.render().sql

    def test_exists_wrapper(self):
        builder = SelectBuilder()
        builder.select = [Frag("1")]
        builder.add_from("t", "m")
        builder.add_where(frag("m.x = ?", 7))
        wrapped = exists(builder)
        assert wrapped.sql == "EXISTS (SELECT 1 FROM t m WHERE m.x = ?)"
        negated = exists(builder, negated=True)
        assert negated.sql.startswith("NOT EXISTS (")

    def test_scalar_count_restores_select(self):
        builder = SelectBuilder()
        builder.select = [Frag("m.x")]
        builder.add_from("t", "m")
        counted = scalar_count(builder)
        assert counted.sql == "(SELECT COUNT(*) FROM t m)"
        assert builder.select[0].sql == "m.x"  # restored


class TestHelpers:
    def test_sql_string_literal_escapes_quotes(self):
        assert sql_string_literal("O'Reilly") == "'O''Reilly'"
        assert sql_string_literal("plain") == "'plain'"

    def test_translation_stats_total(self):
        stats = TranslationStats(
            joins=2, exists_subqueries=1, count_subqueries=1,
            or_expansions=3,
        )
        assert stats.total_relational_operations() == 7
