"""Unit tests for the relational AST, builders, and dialect compilers."""

import pytest

from repro.core.relalg import (
    CTX,
    DOC,
    And,
    Bool,
    Cmp,
    Col,
    CompiledPlan,
    Const,
    FixedSlot,
    LitSlot,
    MiniDbDialect,
    Not,
    Or,
    Param,
    ScalarCount,
    Select,
    SelectItem,
    SqlTextDialect,
    TranslationStats,
    UnionQuery,
    compute_stats,
    sql_string_literal,
)
from repro.core.sqlgen import (
    AliasGenerator,
    SelectBuilder,
    all_of,
    any_of,
    exists,
    scalar_count,
)
from repro.errors import TranslationError


def compile_text(query):
    return SqlTextDialect().compile(query)


def simple_builder() -> SelectBuilder:
    b = SelectBuilder()
    b.select = [SelectItem(Col("n0", "id"), "id")]
    b.add_from("node_global", "n0")
    b.add_where(Cmp("=", Col("n0", "doc"), Param(DOC)))
    return b


class TestCombinators:
    def test_all_of_drops_none(self):
        cond = all_of([Cmp("=", Col("a", "x"), Const(1)), None])
        assert isinstance(cond, Cmp)

    def test_all_of_builds_and(self):
        cond = all_of([
            Cmp("=", Col("a", "x"), Const(1)),
            Cmp("=", Col("a", "y"), Const(2)),
        ])
        assert isinstance(cond, And)
        assert len(cond.items) == 2

    def test_all_of_empty_is_none(self):
        assert all_of([None, None]) is None

    def test_any_of_carries_expansion_arms(self):
        cond = any_of([Bool(True), Bool(False)], expansion_arms=4)
        assert isinstance(cond, Or)
        assert cond.expansion_arms == 4


class TestAliasGenerator:
    def test_unique_sequence(self):
        gen = AliasGenerator()
        names = [gen.next() for _ in range(4)]
        assert names == ["n0", "n1", "n2", "n3"]

    def test_custom_prefix(self):
        gen = AliasGenerator("x")
        assert gen.next() == "x0"


class TestSqlTextDialect:
    def test_select_render(self):
        sql, slots = compile_text(simple_builder().build())
        assert sql == (
            "SELECT n0.id AS id FROM node_global n0 WHERE n0.doc = ?"
        )
        assert slots == (DOC,)

    def test_distinct_and_order_by(self):
        b = simple_builder()
        b.distinct = True
        b.order_by = [Col("n0", "pos")]
        sql, _slots = compile_text(b.build())
        assert sql.startswith("SELECT DISTINCT ")
        assert sql.endswith(" ORDER BY n0.pos")

    def test_and_or_parenthesised(self):
        cond = Or((
            And((Bool(True), Bool(False))),
            Cmp("=", Col("a", "x"), Const(3)),
        ))
        b = simple_builder()
        b.add_where(cond)
        sql, _slots = compile_text(b.build())
        assert "((1 = 1 AND 1 = 0) OR a.x = 3)" in sql

    def test_not_render(self):
        b = simple_builder()
        b.add_where(Not(Bool(True)))
        sql, _slots = compile_text(b.build())
        assert "NOT (1 = 1)" in sql

    def test_exists_render(self):
        sub = simple_builder()
        sub.select = [SelectItem(Const(1))]
        b = simple_builder()
        b.add_where(exists(sub))
        sql, slots = compile_text(b.build())
        assert "EXISTS (SELECT 1 FROM node_global n0" in sql
        assert slots == (DOC, DOC)

    def test_negated_exists_render(self):
        sub = simple_builder()
        sub.select = [SelectItem(Const(1))]
        b = simple_builder()
        b.add_where(exists(sub, negated=True))
        sql, _slots = compile_text(b.build())
        assert "NOT EXISTS (" in sql

    def test_union_orders_by_output_names(self):
        arm = simple_builder().build()
        sql, _slots = compile_text(
            UnionQuery(selects=(arm, arm), order_by=("id",))
        )
        assert sql.count("SELECT") == 2
        assert " UNION " in sql
        assert sql.endswith(" ORDER BY id")

    def test_slots_collected_in_placeholder_order(self):
        b = simple_builder()
        b.add_where(Cmp("=", Col("n0", "id"), Param(CTX)))
        b.add_where(Cmp("=", Col("n0", "tag"), Param(FixedSlot("book"))))
        b.add_where(Cmp("=", Col("n0", "value"), Param(LitSlot(0))))
        sql, slots = compile_text(b.build())
        assert sql.count("?") == 4
        assert slots == (DOC, CTX, FixedSlot("book"), LitSlot(0))

    def test_string_constants_escaped(self):
        b = simple_builder()
        b.add_where(Cmp("=", Col("n0", "tag"), Const("O'Reilly")))
        sql, _slots = compile_text(b.build())
        assert "'O''Reilly'" in sql


class TestMiniDbDialect:
    def test_same_slot_order_as_text_dialect(self):
        b = simple_builder()
        b.add_where(Cmp("=", Col("n0", "id"), Param(CTX)))
        b.add_where(Cmp("=", Col("n0", "value"), Param(LitSlot(0))))
        query = b.build()
        _sql, text_slots = SqlTextDialect().compile(query)
        _stmt, minidb_slots = MiniDbDialect().compile(query)
        assert text_slots == minidb_slots

    def test_emits_structured_statement(self):
        from repro.minidb import sql_ast as m

        stmt, _slots = MiniDbDialect().compile(simple_builder().build())
        assert isinstance(stmt, m.Select)
        assert isinstance(stmt.where, m.Binary)
        assert isinstance(stmt.where.right, m.Param)
        assert stmt.where.right.index == 0


class TestScalarCount:
    def test_renders_count_star(self):
        b = simple_builder()
        sql, _slots = compile_text(
            Select(columns=(SelectItem(scalar_count(b)),))
        )
        assert sql == (
            "SELECT (SELECT COUNT(*) FROM node_global n0 "
            "WHERE n0.doc = ?)"
        )

    def test_does_not_mutate_builder(self):
        # Regression: the old implementation swapped builder.select in
        # place and restored it without try/finally, so a failure
        # mid-render corrupted the builder for subsequent renders.  The
        # node-based version works on an immutable snapshot.
        b = simple_builder()
        before = list(b.select)
        count = scalar_count(b)
        assert b.select == before
        assert isinstance(count, ScalarCount)
        assert count.query.columns[0].expr.__class__.__name__ == "CountStar"
        # The builder still renders its original projection afterwards.
        sql, _slots = compile_text(b.build())
        assert sql.startswith("SELECT n0.id AS id")

    def test_usable_repeatedly(self):
        b = simple_builder()
        assert scalar_count(b) == scalar_count(b)


class TestHelpers:
    def test_sql_string_literal_escapes_quotes(self):
        assert sql_string_literal("O'Reilly") == "'O''Reilly'"
        assert sql_string_literal("plain") == "'plain'"

    def test_translation_stats_total(self):
        stats = TranslationStats(
            joins=2, exists_subqueries=1, count_subqueries=1,
            or_expansions=3,
        )
        assert stats.total_relational_operations() == 7


class TestStats:
    def test_counts_joins_per_select(self):
        b = SelectBuilder()
        b.select = [SelectItem(Const(1))]
        b.add_from("t", "a")
        b.add_from("t", "b")
        b.add_from("t", "c")
        assert compute_stats(b.build()).joins == 2

    def test_uncounted_select_contributes_no_joins(self):
        b = SelectBuilder()
        b.select = [SelectItem(Const(1))]
        b.count_joins = False
        b.add_from("t", "a")
        b.add_from("t", "b")
        assert compute_stats(b.build()).joins == 0

    def test_exists_and_count_subqueries(self):
        sub = simple_builder()
        sub.select = [SelectItem(Const(1))]
        b = simple_builder()
        b.add_where(exists(sub))
        b.add_where(Cmp(">", scalar_count(sub), Const(0)))
        stats = compute_stats(b.build())
        assert stats.exists_subqueries == 1
        assert stats.count_subqueries == 1

    def test_uncounted_exists(self):
        sub = simple_builder()
        sub.select = [SelectItem(Const(1))]
        b = simple_builder()
        b.add_where(exists(sub, counted=False))
        assert compute_stats(b.build()).exists_subqueries == 0

    def test_or_expansions(self):
        b = simple_builder()
        b.add_where(any_of([Bool(True), Bool(True)], expansion_arms=7))
        assert compute_stats(b.build()).or_expansions == 7


class TestCompiledPlanBind:
    def plan(self, slots) -> CompiledPlan:
        return CompiledPlan(
            sql="SELECT 1",
            param_slots=tuple(slots),
            result_kind="node",
            needs_client_order=False,
            encoding="global",
            columns=("id",),
            stats=TranslationStats(),
        )

    def test_binds_doc_ctx_fixed_and_literals(self):
        plan = self.plan([DOC, CTX, FixedSlot("book"), LitSlot(0)])
        bound = plan.bind(7, context_id=3, literals=("x",))
        assert bound.params == (7, 3, "book", "x")

    def test_relative_without_context_raises(self):
        plan = self.plan([DOC, CTX])
        with pytest.raises(TranslationError):
            plan.bind(1)

    def test_literal_transforms(self):
        plan = self.plan([
            LitSlot(0, "posm1"),
            LitSlot(0, "int"),
            LitSlot(0, "num"),
            LitSlot(1, "len"),
            LitSlot(1, "raw"),
        ])
        bound = plan.bind(1, literals=(3.0, "abc"))
        assert bound.params == (2, 3, 3, 3, "abc")

    def test_literal_slot_out_of_range(self):
        plan = self.plan([LitSlot(2)])
        with pytest.raises(TranslationError):
            plan.bind(1, literals=("only",))
