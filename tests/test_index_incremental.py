"""Incremental secondary-index maintenance.

Four guards around the touched-set maintenance path:

* **equivalence** — the same seeded update script applied to an
  incremental store and an eager-rebuild twin must leave byte-identical
  ``idx_*`` tables (including statistics bookkeeping), across all four
  encodings and both backends, and across the automatic stats-refresh
  threshold;
* **scaling** — maintenance row writes must track the update's touched
  rows, not the document size (the counter-based regression that pins
  the tentpole's complexity claim);
* **fallback** — deltas past the configurable invalidation budget fall
  back to the eager rebuild and still converge on the twin's tables;
* **satellites** — ``refresh_stats`` recomputes statistics without
  rebuilding data rows or counting ``index.created``, zero-row no-op
  updates skip maintenance entirely, and missing depth meta reads as
  stale.
"""

from __future__ import annotations

import random

import pytest

from tests.conftest import ALL_ENCODINGS, BACKENDS
from repro.check.fuzz import apply_operation, plan_operation
from repro.index import STATS_REFRESH_THRESHOLD, index_incremental_from_env
from repro.obs import METRICS
from repro.store import XmlStore
from repro.workload import catalog_corpus
from repro.workload.docgen import random_document

IDX_TABLES = ("idx_sval", "idx_paths", "idx_pathmap", "idx_stats")


def index_tables(store: XmlStore, doc: int) -> tuple:
    return tuple(
        tuple(sorted(store.backend.execute(
            f"SELECT * FROM {table} WHERE doc = ?", (doc,)
        ).rows))
        for table in IDX_TABLES
    )


def twin_pair(backend: str, encoding: str):
    """An incremental store and an eager-rebuild twin, indexes on."""
    incr = XmlStore(
        backend=backend, encoding=encoding, index_incremental=True
    )
    eager = XmlStore(
        backend=backend, encoding=encoding, index_incremental=False
    )
    for store in (incr, eager):
        store.indexes.force_mode = "on"
    # Keep tiny fuzz documents on the incremental path: the default
    # budget would route most ops through the fallback rebuild, which
    # trivially matches the eager twin.
    incr.indexes.fallback_fraction = 1.0
    return incr, eager


class TestIncrementalHatch:
    def test_default_is_incremental(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_INCR", raising=False)
        assert index_incremental_from_env() is True

    @pytest.mark.parametrize("value", ["off", "0", "false", "no"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_INDEX_INCR", value)
        assert index_incremental_from_env() is False

    def test_store_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_INCR", "off")
        store = XmlStore(index_incremental=True)
        assert store.indexes.incremental() is True
        store.close()
        store = XmlStore()
        assert store.indexes.incremental() is False
        store.close()


class TestIncrementalVsEager:
    """The equivalence property: byte-identical tables after every op."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_seeded_script_leaves_identical_tables(
        self, backend, encoding
    ):
        document = random_document(13, max_depth=4, max_children=3)
        incr, eager = twin_pair(backend, encoding)
        doc_i = incr.load(document)
        doc_e = eager.load(document)
        assert index_tables(incr, doc_i) == index_tables(eager, doc_e)
        rng = random.Random(1301)
        for op_index in range(1, 13):
            op = plan_operation(rng, incr, doc_i, update_heavy=True)
            apply_operation(incr, doc_i, op)
            apply_operation(eager, doc_e, op)
            assert index_tables(incr, doc_i) == index_tables(
                eager, doc_e
            ), f"tables diverged after op #{op_index}: {op['describe']}"
        incr.close()
        eager.close()

    def test_equivalence_across_stats_refresh_threshold(self):
        document = random_document(7, max_depth=4, max_children=3)
        incr, eager = twin_pair("sqlite", "dewey")
        doc_i = incr.load(document)
        doc_e = eager.load(document)
        rng = random.Random(701)
        for _ in range(STATS_REFRESH_THRESHOLD + 4):
            op = plan_operation(rng, incr, doc_i)
            apply_operation(incr, doc_i, op)
            apply_operation(eager, doc_e, op)
        # Both twins refreshed statistics mid-script; the bookkeeping
        # (stats_version, updates_since, survey rows) must agree too.
        assert index_tables(incr, doc_i) == index_tables(eager, doc_e)
        described = incr.indexes.describe(doc_i)
        assert described["stats_version"] >= 2
        incr.close()
        eager.close()

    def test_incremental_path_actually_taken(self):
        document = random_document(13, max_depth=4, max_children=3)
        incr, _eager = twin_pair("sqlite", "dewey")
        doc = incr.load(document)
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            rng = random.Random(1301)
            for _ in range(8):
                op = plan_operation(rng, incr, doc, update_heavy=True)
                apply_operation(incr, doc, op)
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        assert counters["index.incremental"] >= 1
        assert counters.get("index.fallback_rebuild", 0) == 0
        incr.close()


class TestMaintenanceScaling:
    """Row writes track the touched set, not the document."""

    def _writes_for_one_set_text(self, products: int) -> int:
        store = XmlStore(
            backend="sqlite", encoding="dewey", index_incremental=True
        )
        store.indexes.force_mode = "on"
        doc = store.load(catalog_corpus(products=products))
        catalog = store.fetch_children(doc, 0)[0]
        product = store.fetch_children(doc, catalog["id"])[0]
        name = store.fetch_children(doc, product["id"])[0]
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            store.updates.set_text(doc, name["id"], "renamed")
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        store.close()
        assert counters["index.incremental"] == 1
        assert counters.get("index.fallback_rebuild", 0) == 0
        return counters["index.row_writes"]

    def test_row_writes_independent_of_document_size(self):
        small = self._writes_for_one_set_text(products=8)
        large = self._writes_for_one_set_text(products=160)
        # Same op shape at the same depth: identical repair cost, and
        # nowhere near the 160-product document's element count.
        assert small == large
        assert large < 40

    def test_eager_rebuild_writes_scale_with_document(self):
        store = XmlStore(
            backend="sqlite", encoding="dewey", index_incremental=False
        )
        store.indexes.force_mode = "on"
        doc = store.load(catalog_corpus(products=160))
        catalog = store.fetch_children(doc, 0)[0]
        product = store.fetch_children(doc, catalog["id"])[0]
        name = store.fetch_children(doc, product["id"])[0]
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            store.updates.set_text(doc, name["id"], "renamed")
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        store.close()
        incremental = self._writes_for_one_set_text(products=160)
        assert counters["index.row_writes"] > 10 * incremental


class TestFallbackPolicy:
    def test_large_delete_falls_back_and_still_converges(self):
        incr, eager = twin_pair("sqlite", "global")
        incr.indexes.fallback_fraction = None  # default budget
        document = random_document(1, max_depth=4, max_children=3)
        doc_i = incr.load(document)
        doc_e = eager.load(document)
        # Delete the bulkiest top-level subtree: far past the default
        # invalidation budget on a small document.
        root = incr.fetch_children(doc_i, 0)[0]
        target = max(
            (
                child
                for child in incr.fetch_children(doc_i, root["id"])
                if child["kind"] == "elem"
            ),
            key=lambda child: len(incr.updates._subtree_ids(doc_i, child)),
        )
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            incr.updates.delete(doc_i, target["id"])
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        eager.updates.delete(doc_e, target["id"])
        assert counters.get("index.fallback_rebuild", 0) >= 1
        assert index_tables(incr, doc_i) == index_tables(eager, doc_e)
        incr.close()
        eager.close()


class TestSatelliteFixes:
    def _indexed_catalog(self, **kwargs):
        store = XmlStore(backend="sqlite", encoding="dewey", **kwargs)
        doc = store.load(catalog_corpus(products=6))
        store.indexes.create(doc)
        return store, doc

    def test_refresh_stats_does_not_rebuild_rows(self):
        store, doc = self._indexed_catalog()
        before_version = store.indexes.describe(doc)["stats_version"]
        rows_before = index_tables(store, doc)[:3]
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            report = store.indexes.refresh_stats(doc)
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        assert counters["index.stats_refreshed"] == 1
        assert counters.get("index.created", 0) == 0
        assert counters.get("index.row_writes", 0) == 0
        assert report["stats_version"] == before_version + 1
        assert index_tables(store, doc)[:3] == rows_before
        store.close()

    def test_refresh_stats_clears_staleness(self):
        store, doc = self._indexed_catalog()
        catalog = store.fetch_children(doc, 0)[0]
        product = store.fetch_children(doc, catalog["id"])[0]
        store.updates.insert(
            doc, product["id"], 0, "<a><b><c><d>deep</d></c></b></a>"
        )
        assert store.indexes.stats_stale(doc)
        store.indexes.refresh_stats(doc)
        assert not store.indexes.stats_stale(doc)
        store.close()

    def test_noop_update_skips_maintenance(self):
        store, doc = self._indexed_catalog(index_incremental=True)
        store.indexes.force_mode = "on"
        catalog = store.fetch_children(doc, 0)[0]
        before = store.indexes.describe(doc)["updates_since"]
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            # Removing an attribute that does not exist touches zero
            # rows: no rebuild, no updates_since bump.
            report = store.updates.set_attribute(
                doc, catalog["id"], "nope", None
            )
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        assert report.rows_touched() == 0
        assert counters.get("index.maintained", 0) == 0
        assert counters.get("index.row_writes", 0) == 0
        assert store.indexes.describe(doc)["updates_since"] == before
        store.close()

    def test_noop_update_skips_eager_rebuild_too(self):
        store, doc = self._indexed_catalog(index_incremental=False)
        store.indexes.force_mode = "on"
        catalog = store.fetch_children(doc, 0)[0]
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            store.updates.set_attribute(doc, catalog["id"], "nope", None)
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        assert counters.get("index.maintained", 0) == 0
        assert counters.get("index.row_writes", 0) == 0
        store.close()

    def test_missing_depth_meta_reads_as_stale(self):
        store, doc = self._indexed_catalog()
        assert not store.indexes.stats_stale(doc)
        store.backend.execute(
            "DELETE FROM idx_stats "
            "WHERE doc = ? AND kind = 'meta' AND skey = 'max_depth'",
            (doc,),
        )
        assert store.indexes.stats_stale(doc)
        store.close()
