"""Round-trip and subtree reconstruction tests (invariant 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.store import XmlStore
from repro.workload import article_corpus, catalog_corpus, random_document
from repro.xmldom import Element, parse, serialize
from tests.conftest import ALL_ENCODINGS, BACKENDS


class TestFullRoundTrip:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_bib_roundtrip(self, encoding, bib_document):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(bib_document)
        assert store.reconstruct(doc).structurally_equal(bib_document)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roundtrip_on_both_backends(self, backend, bib_document):
        store = XmlStore(backend=backend, encoding="dewey")
        doc = store.load(bib_document)
        assert store.reconstruct(doc).structurally_equal(bib_document)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_mixed_content_roundtrip(self, encoding):
        document = parse(
            "<p>lead <b>bold</b> middle <i>ital</i> tail<!--c--></p>"
        )
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.reconstruct(doc).structurally_equal(document)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_processing_instructions_roundtrip(self, encoding):
        document = parse('<?style href="a"?><r><?go now?></r>')
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.reconstruct(doc).structurally_equal(document)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_corpus_roundtrips(self, encoding):
        for document in (
            article_corpus(articles=3), catalog_corpus(products=5),
        ):
            store = XmlStore(backend="sqlite", encoding=encoding)
            doc = store.load(document)
            assert store.reconstruct(doc).structurally_equal(document)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_random_documents_roundtrip(self, encoding, seed):
        document = random_document(seed)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.reconstruct(doc).structurally_equal(document)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_gapped_store_roundtrips(self, encoding, bib_document):
        store = XmlStore(backend="sqlite", encoding=encoding, gap=64)
        doc = store.load(bib_document)
        assert store.reconstruct(doc).structurally_equal(bib_document)

    def test_load_from_string_with_whitespace_strip(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load("<a>\n  <b>x</b>\n</a>", strip_whitespace=True)
        assert serialize(store.reconstruct(doc)) == "<a><b>x</b></a>"


class TestSubtreeReconstruction:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_subtree_matches_dom(self, encoding, bib_document):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(bib_document)
        book2_id = store.query("/bib/book[2]", doc)[0].node_id
        subtree = store.reconstruct_subtree(doc, book2_id)
        expected = bib_document.root.children[1]
        assert subtree.structurally_equal(expected)
        assert isinstance(subtree, Element)
        assert subtree.get("year") == "2000"

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_leaf_subtree(self, encoding, bib_document):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(bib_document)
        text_id = store.query("/bib/book[1]/title/text()", doc)[0].node_id
        node = store.reconstruct_subtree(doc, text_id)
        assert node.content == "TCP/IP Illustrated"

    def test_unknown_node_raises(self, bib_store):
        store, doc, _document = bib_store
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            store.reconstruct_subtree(doc, 424242)
