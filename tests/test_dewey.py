"""Tests for Dewey keys and the order-preserving binary codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dewey import (
    DeweyKey,
    decode_components,
    dewey_depth_bytes,
    dewey_local_bytes,
    dewey_parent_bytes,
    dewey_successor_bytes,
    encode_component,
)
from repro.errors import EncodingError

components = st.lists(st.integers(0, 300_000), min_size=1, max_size=8)


class TestKeyAlgebra:
    def test_parse_and_str(self):
        key = DeweyKey.parse("1.2.3")
        assert key.components == (1, 2, 3)
        assert str(key) == "1.2.3"

    def test_child(self):
        assert DeweyKey.parse("1.2").child(5) == DeweyKey.parse("1.2.5")

    def test_parent(self):
        assert DeweyKey.parse("1.2.3").parent() == DeweyKey.parse("1.2")
        assert DeweyKey.parse("1").parent() is None

    def test_ancestors_nearest_first(self):
        ancestors = list(DeweyKey.parse("1.2.3.4").ancestors())
        assert [str(a) for a in ancestors] == ["1.2.3", "1.2", "1"]

    def test_local_position(self):
        assert DeweyKey.parse("1.7.4").local_position() == 4

    def test_with_local_position(self):
        assert DeweyKey.parse("1.7.4").with_local_position(9) == \
            DeweyKey.parse("1.7.9")

    def test_is_ancestor_of(self):
        a, b = DeweyKey.parse("1.2"), DeweyKey.parse("1.2.3.4")
        assert a.is_ancestor_of(b)
        assert b.is_descendant_of(a)
        assert not a.is_ancestor_of(a)
        assert not DeweyKey.parse("1.3").is_ancestor_of(b)

    def test_sibling_successor(self):
        assert DeweyKey.parse("1.2.3").sibling_successor() == \
            DeweyKey.parse("1.2.4")

    def test_replace_prefix(self):
        key = DeweyKey.parse("1.2.3.4")
        moved = key.replace_prefix(
            DeweyKey.parse("1.2"), DeweyKey.parse("1.9")
        )
        assert moved == DeweyKey.parse("1.9.3.4")

    def test_replace_prefix_requires_prefix(self):
        with pytest.raises(EncodingError):
            DeweyKey.parse("1.2.3").replace_prefix(
                DeweyKey.parse("2"), DeweyKey.parse("3")
            )

    def test_depth(self):
        assert DeweyKey.parse("1.2.3").depth() == 3
        assert len(DeweyKey.parse("1.2.3")) == 3

    def test_ordering_is_component_wise(self):
        assert DeweyKey.parse("1.2") < DeweyKey.parse("1.2.1")
        assert DeweyKey.parse("1.2.9") < DeweyKey.parse("1.3")
        assert DeweyKey.parse("1.10") > DeweyKey.parse("1.9")

    def test_negative_component_rejected(self):
        with pytest.raises(EncodingError):
            DeweyKey((1, -2))

    def test_bad_text_rejected(self):
        with pytest.raises(EncodingError):
            DeweyKey.parse("1.x.3")

    def test_hashable_and_equal(self):
        assert hash(DeweyKey.parse("1.2")) == hash(DeweyKey((1, 2)))
        assert DeweyKey.parse("1.2") != DeweyKey.parse("1.2.0")


class TestComponentCodec:
    @pytest.mark.parametrize(
        "value,length",
        [(0, 1), (127, 1), (128, 2), (16511, 2), (16512, 3),
         (2113663, 3), (2113664, 4), (270549119, 4)],
    )
    def test_boundary_lengths(self, value, length):
        assert len(encode_component(value)) == length
        assert decode_components(encode_component(value)) == (value,)

    def test_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode_component(270549120)
        with pytest.raises(EncodingError):
            encode_component(-1)

    def test_truncated_key_rejected(self):
        data = DeweyKey((200,)).encode()
        with pytest.raises(EncodingError):
            decode_components(data[:1])

    def test_invalid_lead_byte_rejected(self):
        with pytest.raises(EncodingError):
            decode_components(b"\xff")

    @settings(max_examples=200, deadline=None)
    @given(value=st.integers(0, 270549119))
    def test_component_roundtrip(self, value):
        assert decode_components(encode_component(value)) == (value,)

    @settings(max_examples=200, deadline=None)
    @given(a=st.integers(0, 270549119), b=st.integers(0, 270549119))
    def test_component_order_preserved(self, a, b):
        ea, eb = encode_component(a), encode_component(b)
        assert (a < b) == (ea < eb)
        assert (a == b) == (ea == eb)


class TestKeyCodec:
    @settings(max_examples=200, deadline=None)
    @given(comps=components)
    def test_key_roundtrip(self, comps):
        key = DeweyKey(comps)
        assert DeweyKey.decode(key.encode()) == key

    @settings(max_examples=300, deadline=None)
    @given(a=components, b=components)
    def test_bytewise_order_equals_component_order(self, a, b):
        """The paper's core codec property: memcmp == document order."""
        ka, kb = DeweyKey(a), DeweyKey(b)
        assert (ka < kb) == (ka.encode() < kb.encode())
        assert (ka == kb) == (ka.encode() == kb.encode())

    @settings(max_examples=200, deadline=None)
    @given(comps=components, extra=st.integers(0, 1000))
    def test_subtree_range_property(self, comps, extra):
        """Every descendant key lies in (key, sibling_successor(key))."""
        key = DeweyKey(comps)
        descendant = key.child(extra)
        low, high = key.encode(), key.sibling_successor().encode()
        assert low < descendant.encode() < high

    @settings(max_examples=200, deadline=None)
    @given(comps=st.lists(st.integers(0, 1000), min_size=2, max_size=6))
    def test_non_descendants_outside_range(self, comps):
        key = DeweyKey(comps)
        sibling = key.sibling_successor()
        assert not (
            key.encode() < sibling.encode()
            < key.sibling_successor().encode()
        )


class TestSqlScalars:
    def test_dewey_parent_bytes(self):
        key = DeweyKey.parse("1.2.3")
        assert dewey_parent_bytes(key.encode()) == \
            DeweyKey.parse("1.2").encode()
        assert dewey_parent_bytes(DeweyKey.parse("1").encode()) is None

    def test_dewey_successor_bytes(self):
        key = DeweyKey.parse("1.2.3")
        assert dewey_successor_bytes(key.encode()) == \
            DeweyKey.parse("1.2.4").encode()

    def test_dewey_local_bytes(self):
        assert dewey_local_bytes(DeweyKey.parse("1.2.7").encode()) == 7

    def test_dewey_depth_bytes(self):
        assert dewey_depth_bytes(DeweyKey.parse("1.2.7").encode()) == 3
