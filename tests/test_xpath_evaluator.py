"""Tests for the native XPath evaluator (the oracle itself)."""

import math


from repro.xmldom import parse
from repro.xpath import (
    AttributeNode,
    Evaluator,
    evaluate,
    string_value,
    to_boolean,
    to_number,
    to_string,
)

DOC = parse(
    '<bib><book year="1994" id="b1"><title>TCP/IP</title>'
    "<author>Stevens</author><price>65.95</price></book>"
    '<book year="2000" id="b2"><title>Data on the Web</title>'
    "<author>Abiteboul</author><author>Buneman</author>"
    "<author>Suciu</author><price>39.95</price></book>"
    '<book year="1999" id="b3"><title>Economics</title>'
    "<author>Smith</author><price>10</price></book></bib>"
)


def strings(xpath, doc=DOC):
    return [string_value(n) for n in evaluate(doc, xpath)]


class TestChildAndDescendant:
    def test_absolute_child_path(self):
        assert strings("/bib/book/title") == [
            "TCP/IP", "Data on the Web", "Economics",
        ]

    def test_descendant_any_depth(self):
        assert len(evaluate(DOC, "//author")) == 5

    def test_wildcard(self):
        assert len(evaluate(DOC, "/bib/*")) == 3

    def test_text_nodes(self):
        assert strings("/bib/book[1]/title/text()") == ["TCP/IP"]

    def test_missing_path_is_empty(self):
        assert strings("/bib/magazine") == []

    def test_document_order_of_results(self):
        # //title and //author interleave in document order when unioned
        # via a broad query.
        values = strings("/bib/book[2]/*")
        assert values == [
            "Data on the Web", "Abiteboul", "Buneman", "Suciu", "39.95",
        ]


class TestPositionalPredicates:
    def test_index(self):
        assert strings("/bib/book[2]/title") == ["Data on the Web"]

    def test_position_function(self):
        assert strings("/bib/book[position() = 3]/title") == ["Economics"]

    def test_position_range(self):
        assert strings("/bib/book[position() <= 2]/title") == [
            "TCP/IP", "Data on the Web",
        ]

    def test_last(self):
        assert strings("/bib/book[last()]/title") == ["Economics"]

    def test_position_equals_last(self):
        assert strings("//book/author[position() = last()]") == [
            "Stevens", "Suciu", "Smith",
        ]

    def test_positions_count_per_context(self):
        # author[2] means second author *within each book*.
        assert strings("//book/author[2]") == ["Buneman"]

    def test_position_on_descendant_axis(self):
        result = evaluate(DOC, "/bib/descendant::author[2]")
        assert [string_value(n) for n in result] == ["Abiteboul"]

    def test_predicate_after_predicate(self):
        assert strings("//author[position() > 1][1]") == ["Buneman"]


class TestSiblingAxes:
    def test_following_sibling(self):
        assert strings("//book[1]/following-sibling::book/title") == [
            "Data on the Web", "Economics",
        ]

    def test_following_sibling_position(self):
        assert strings("//book[1]/following-sibling::book[1]/title") == \
            ["Data on the Web"]

    def test_preceding_sibling_reverse_position(self):
        # preceding-sibling::book[1] is the *nearest* preceding sibling.
        assert strings("//book[3]/preceding-sibling::book[1]/title") == \
            ["Data on the Web"]

    def test_preceding_sibling_results_in_document_order(self):
        assert strings("//book[3]/preceding-sibling::book/title") == [
            "TCP/IP", "Data on the Web",
        ]

    def test_title_following_siblings(self):
        assert strings("//book[2]/title/following-sibling::author") == [
            "Abiteboul", "Buneman", "Suciu",
        ]


class TestDocumentOrderAxes:
    def test_following(self):
        assert strings("//book[2]/following::title") == ["Economics"]

    def test_following_excludes_descendants(self):
        result = strings("//book[1]/following::author")
        assert "Stevens" not in result
        assert result == ["Abiteboul", "Buneman", "Suciu", "Smith"]

    def test_preceding(self):
        assert strings("//book[2]/preceding::author") == ["Stevens"]

    def test_preceding_excludes_ancestors(self):
        result = evaluate(DOC, "/bib/book[2]/author[1]/preceding::*")
        tags = [n.tag for n in result]
        # book 1 (fully before) is included; book 2 (an ancestor) is not.
        assert tags.count("book") == 1
        assert "bib" not in tags

    def test_preceding_position_is_reverse(self):
        assert strings("//book[3]/preceding::author[1]") == ["Suciu"]


class TestParentAncestor:
    def test_parent(self):
        assert strings("/bib/book[1]/title/../author") == ["Stevens"]

    def test_parent_matches_per_context(self):
        # //title[1] is every title that is the first title of *its*
        # parent, so /.. yields all three books.
        assert len(evaluate(DOC, "//title[1]/..")) == 3

    def test_ancestor(self):
        result = evaluate(DOC, "/bib/book[1]/author[1]/ancestor::*")
        tags = [n.tag for n in result]
        assert tags == ["bib", "book"]

    def test_ancestor_or_self(self):
        result = evaluate(DOC, "//book[1]/ancestor-or-self::*")
        assert [n.tag for n in result] == ["bib", "book"]

    def test_self(self):
        assert strings("/bib/book[1]/title/self::title") == ["TCP/IP"]
        assert strings("/bib/book[1]/title/self::author") == []


class TestAttributes:
    def test_attribute_values(self):
        assert strings("//book/@year") == ["1994", "2000", "1999"]

    def test_attribute_name_order(self):
        # id and year sorted by name within one element.
        result = evaluate(DOC, "//book[1]/@*")
        assert [n.name for n in result] == ["id", "year"]

    def test_attribute_existence_predicate(self):
        assert len(evaluate(DOC, "//book[@id]")) == 3

    def test_attribute_comparison(self):
        assert strings("//book[@year = 2000]/title") == ["Data on the Web"]

    def test_attribute_numeric_comparison(self):
        assert strings("//book[@year < 2000]/title") == [
            "TCP/IP", "Economics",
        ]

    def test_attribute_parent(self):
        result = evaluate(DOC, "//@id")
        assert all(isinstance(n, AttributeNode) for n in result)


class TestValueComparisons:
    def test_element_string_equality(self):
        assert strings("//book[author = 'Buneman']/title") == [
            "Data on the Web",
        ]

    def test_node_set_existential_semantics(self):
        # book 2 has three authors; equality holds if ANY matches.
        assert strings("//book[author = 'Suciu']/title") == [
            "Data on the Web",
        ]

    def test_numeric_comparison_on_element(self):
        assert strings("//book[price < 40]/title") == [
            "Data on the Web", "Economics",
        ]

    def test_inequality(self):
        # != is existential too: any author != 'Stevens'.
        titles = strings("//book[author != 'Stevens']/title")
        assert titles == ["Data on the Web", "Economics"]

    def test_text_node_comparison(self):
        assert strings("//title[text() = 'Economics']") == ["Economics"]

    def test_boolean_connectives(self):
        assert strings(
            "//book[@year > 1995 and price < 40]/title"
        ) == ["Data on the Web", "Economics"]
        assert strings(
            "//book[@year = 1994 or author = 'Smith']/title"
        ) == ["TCP/IP", "Economics"]

    def test_not_function(self):
        assert strings("//book[not(@year = 2000)]/title") == [
            "TCP/IP", "Economics",
        ]


class TestFunctions:
    def test_count(self):
        assert strings("//book[count(author) = 3]/title") == [
            "Data on the Web",
        ]

    def test_count_greater(self):
        assert strings("//book[count(author) > 1]/@id") == ["b2"]

    def test_contains(self):
        assert strings("//book[contains(title, 'Web')]/@id") == ["b2"]

    def test_starts_with(self):
        assert strings("//book[starts-with(title, 'TCP')]/@id") == ["b1"]

    def test_string_function_on_attribute(self):
        assert strings("//book[starts-with(@id, 'b')]/@id") == [
            "b1", "b2", "b3",
        ]


class TestConversions:
    def test_to_boolean(self):
        assert to_boolean(1.0) and not to_boolean(0.0)
        assert not to_boolean(math.nan)
        assert to_boolean("x") and not to_boolean("")
        assert to_boolean([object()]) and not to_boolean([])

    def test_to_number(self):
        assert to_number("42") == 42.0
        assert to_number("  3.5 ") == 3.5
        assert math.isnan(to_number("abc"))
        assert to_number(True) == 1.0

    def test_to_string(self):
        assert to_string(2.0) == "2"
        assert to_string(2.5) == "2.5"
        assert to_string(True) == "true"
        assert to_string(math.nan) == "NaN"

    def test_string_value_of_element_concatenates(self):
        doc = parse("<a>x<b>y</b>z</a>")
        assert string_value(doc.root) == "xyz"


class TestEvaluatorObject:
    def test_relative_evaluation_from_context(self):
        evaluator = Evaluator(DOC)
        book2 = evaluator.evaluate("/bib/book[2]")[0]
        authors = evaluator.evaluate("author", context=book2)
        assert [string_value(a) for a in authors] == [
            "Abiteboul", "Buneman", "Suciu",
        ]

    def test_results_deduplicated(self):
        # Two different paths reach the same titles; node-set dedupes.
        result = evaluate(DOC, "//book/ancestor::bib/book/title")
        assert len(result) == 3

    def test_evaluate_strings_helper(self):
        evaluator = Evaluator(DOC)
        assert evaluator.evaluate_strings("/bib/book[3]/price") == ["10"]
