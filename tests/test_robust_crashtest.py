"""Acceptance tests for the crash-recovery harness (repro crashtest).

These drive the real loop: replay a seeded update stream, crash the
engine at sampled statement boundaries, reopen the durable medium, run
the invariant auditor, and require the store to equal either the
pre-operation or post-operation state.  Fixed seeds keep the runs
deterministic; the nightly CI job varies them.
"""

import pytest

from repro.robust.crashtest import (
    CrashFailure,
    CrashTestConfig,
    run_crashtest,
)

ALL_ENCODINGS = ("global", "local", "dewey", "ordpath")

pytestmark = pytest.mark.slow


@pytest.mark.skip_audit  # the harness audits internally, on reopened stores
class TestCrashRecoveryMatrix:
    def test_fixed_seed_matrix_all_encodings_both_backends(self):
        config = CrashTestConfig(
            seeds=1,
            ops=3,
            encodings=ALL_ENCODINGS,
            backends=("sqlite", "minidb"),
            crashes_per_op=2,
            transient_rate=0.05,
            base_seed=0,
        )
        report = run_crashtest(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)
        assert report.cells == 8
        assert report.crashes > 0
        assert report.recoveries == report.crashes
        assert report.transient_streams == report.cells

    def test_full_sweep_single_cell_per_backend(self):
        # Sweeping every statement boundary of every operation is the
        # strongest form of the atomicity check; keep it to one
        # encoding per backend for test-suite latency.
        config = CrashTestConfig(
            seeds=1,
            ops=3,
            encodings=("dewey",),
            backends=("sqlite", "minidb"),
            crashes_per_op=0,  # sweep
            base_seed=1,
        )
        report = run_crashtest(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)
        # A sweep must exercise far more crash points than sampling.
        assert report.crashes > report.operations

    def test_interrupted_snapshot_never_loses_good_generation(self):
        # Force a snapshot-save interruption on (almost) every minidb
        # checkpoint; recovery must always land on a good generation.
        config = CrashTestConfig(
            seeds=2,
            ops=3,
            encodings=("global",),
            backends=("minidb",),
            crashes_per_op=1,
            snapshot_fault_rate=1.0,
            base_seed=2,
        )
        report = run_crashtest(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)


class TestReporting:
    def test_failure_repro_command_pins_the_cell(self):
        failure = CrashFailure(
            seed=9, gap=2, backend="minidb", encoding="ordpath",
            op_index=4, crash_at=17, op="insert(...)",
            kind="atomicity", detail="neither pre nor post state",
        )
        command = failure.repro_command()
        assert "--base-seed 9" in command
        assert "--gaps 2" in command
        assert "--backends minidb" in command
        assert "--encodings ordpath" in command
        assert "--sweep" in command
        text = str(failure)
        assert "atomicity" in text
        assert "crash at statement 17" in text
        assert "reproduce:" in text

    def test_config_cells_cross_product(self):
        config = CrashTestConfig(
            seeds=2, encodings=("dewey", "local"),
            backends=("sqlite",), gaps=(1, 4), base_seed=5,
        )
        cells = config.cells()
        assert len(cells) == 2 * 2 * 1 * 2
        assert (5, 1, "sqlite", "dewey") in cells
        assert (6, 4, "sqlite", "local") in cells


@pytest.mark.skip_audit  # the harness audits internally, on reopened stores
class TestMigrationCrashRecovery:
    def test_full_sweep_one_pair_both_backends(self):
        # Crash at *every* statement boundary of a global->dewey
        # migration; recovery must land exactly pre- or post-migration
        # with a clean invariant audit, including no mig_* leftovers.
        from repro.robust.crashtest import run_migration_crashtest

        config = CrashTestConfig(
            seeds=1,
            encodings=("global", "dewey"),
            backends=("sqlite", "minidb"),
            crashes_per_op=0,  # sweep
            base_seed=0,
        )
        report = run_migration_crashtest(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)
        # 2 encodings -> both ordered pairs per backend.
        assert report.cells == 4
        assert report.crashes > 0
        assert report.recoveries == report.crashes

    def test_sampled_matrix_all_pairs(self):
        from repro.robust.crashtest import run_migration_crashtest

        config = CrashTestConfig(
            seeds=1,
            encodings=ALL_ENCODINGS,
            backends=("sqlite",),
            crashes_per_op=2,
            base_seed=1,
        )
        report = run_migration_crashtest(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)
        assert report.cells == 4 * 3  # every ordered encoding pair

    def test_migration_failure_repro_command(self):
        failure = CrashFailure(
            seed=3, gap=1, backend="sqlite", encoding="global->dewey",
            op_index=1, crash_at=12, op="migrate global->dewey",
            kind="atomicity", detail="hybrid state", mode="migrate",
        )
        command = failure.repro_command()
        assert "--migrate" in command
        assert "--encodings global,dewey" in command
        assert "--base-seed 3" in command
