"""Tests for value-level operations: set_text / rename / set_attribute
and the string_value retrieval API."""

import pytest

from repro.errors import StorageError, UpdateError
from repro.store import XmlStore
from repro.xpath import Evaluator, string_value
from repro.xmldom import parse
from tests.conftest import ALL_ENCODINGS

XML = (
    '<shop><item sku="a1"><name>Lamp</name><price>10</price></item>'
    '<item sku="a2"><name>Desk</name><price>250</price></item></shop>'
)


def make_store(encoding):
    store = XmlStore(backend="sqlite", encoding=encoding)
    doc = store.load(XML)
    return store, doc


class TestSetText:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_replaces_text(self, encoding):
        store, doc = make_store(encoding)
        price = store.query("/shop/item[1]/price", doc)[0].node_id
        store.updates.set_text(doc, price, "12.50")
        assert store.query_values(
            "/shop/item[1]/price/text()", doc
        ) == ["12.50"]
        # The materialised direct-text value follows.
        assert store.query_values(
            "//item[price = '12.50']/@sku", doc
        ) == ["a1"]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_never_renumbers_other_nodes(self, encoding):
        store, doc = make_store(encoding)
        price = store.query("/shop/item[1]/price", doc)[0].node_id
        report = store.updates.set_text(doc, price, "99")
        # Only the old text out, the new text in, plus value upkeep.
        assert report.relabeled == 0

    def test_set_text_on_empty_element(self):
        store, doc = make_store("dewey")
        store.updates.insert(
            doc, store.query("/shop", doc)[0].node_id, 0, "<note/>"
        )
        note = store.query("/shop/note", doc)[0].node_id
        store.updates.set_text(doc, note, "hello")
        assert store.query_values("/shop/note/text()", doc) == ["hello"]

    def test_rejects_non_elements(self):
        store, doc = make_store("dewey")
        text_id = store.query("//name/text()", doc)[0].node_id
        with pytest.raises(UpdateError):
            store.updates.set_text(doc, text_id, "x")


class TestRename:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_rename_element(self, encoding):
        store, doc = make_store(encoding)
        name = store.query("/shop/item[2]/name", doc)[0].node_id
        report = store.updates.rename(doc, name, "label")
        assert report.value_updates == 1
        assert store.query_values("/shop/item[2]/label/text()", doc) == \
            ["Desk"]
        assert store.query("/shop/item[2]/name", doc) == []

    def test_rename_unknown_node(self):
        store, doc = make_store("global")
        with pytest.raises(UpdateError):
            store.updates.rename(doc, 999, "x")


class TestSetAttribute:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_add_attribute(self, encoding):
        store, doc = make_store(encoding)
        item = store.query("/shop/item[1]", doc)[0].node_id
        report = store.updates.set_attribute(doc, item, "color", "red")
        assert report.inserted == 1
        assert store.query_values(
            "//item[@color = 'red']/@sku", doc
        ) == ["a1"]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_overwrite_attribute(self, encoding):
        store, doc = make_store(encoding)
        item = store.query("/shop/item[1]", doc)[0].node_id
        store.updates.set_attribute(doc, item, "sku", "b9")
        assert store.query_values("/shop/item[1]/@sku", doc) == ["b9"]
        # Still exactly one sku attribute.
        assert len(store.query("/shop/item[1]/@sku", doc)) == 1

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_remove_attribute(self, encoding):
        store, doc = make_store(encoding)
        item = store.query("/shop/item[2]", doc)[0].node_id
        report = store.updates.set_attribute(doc, item, "sku", None)
        assert report.deleted == 1
        assert store.query("/shop/item[2]/@sku", doc) == []

    def test_roundtrip_after_attribute_ops(self):
        store, doc = make_store("dewey")
        item = store.query("/shop/item[1]", doc)[0].node_id
        store.updates.set_attribute(doc, item, "color", "red")
        store.updates.set_attribute(doc, item, "sku", None)
        rebuilt = store.reconstruct(doc)
        first = rebuilt.root.children[0]
        assert first.attributes == {"color": "red"}


class TestStringValue:
    NESTED = "<a>x<b>y<c>z</c></b>w</a>"

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_matches_xpath_semantics(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(self.NESTED)
        root_id = store.query("/a", doc)[0].node_id
        assert store.string_value(doc, root_id) == "xyzw"

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_of_text_and_leaf_nodes(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(self.NESTED)
        text = store.query("/a/text()", doc)[0].node_id
        assert store.string_value(doc, text) == "x"
        c_node = store.query("//c", doc)[0].node_id
        assert store.string_value(doc, c_node) == "z"

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_query_string_values_matches_oracle(self, encoding):
        document = parse(self.NESTED)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        evaluator = Evaluator(document)
        for xpath in ("//b", "/a/node()", "//c | /a/b"):
            got = store.query_string_values(xpath, doc)
            want = [
                string_value(n) for n in evaluator.evaluate(xpath)
            ]
            assert got == want, (encoding, xpath)

    def test_unknown_node(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(self.NESTED)
        with pytest.raises(StorageError):
            store.string_value(doc, 12345)
