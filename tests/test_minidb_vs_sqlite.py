"""Differential tests: minidb must agree with sqlite3 on a shared SQL
dialect over randomized relational data (invariant 6 in DESIGN.md)."""

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.minidb import MiniDb

SCHEMA = "CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)"
INDEX = "CREATE INDEX ix_t ON t (a, b)"

QUERIES = [
    "SELECT a, b, c FROM t ORDER BY a, b, c",
    "SELECT COUNT(*) FROM t WHERE a = 3",
    "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a",
    "SELECT DISTINCT c FROM t ORDER BY c",
    "SELECT t1.c, t2.c FROM t t1, t t2 "
    "WHERE t1.a = t2.a AND t1.b < t2.b ORDER BY t1.c, t2.c",
    "SELECT c FROM t WHERE a >= 2 AND a <= 4 ORDER BY c",
    "SELECT c FROM t WHERE b IN (1, 3, 5) ORDER BY c",
    "SELECT c FROM t u WHERE EXISTS "
    "(SELECT 1 FROM t v WHERE v.a = u.a AND v.b > u.b) ORDER BY c",
    "SELECT (SELECT COUNT(*) FROM t v WHERE v.a = u.a) , c FROM t u "
    "ORDER BY c",
    "SELECT MIN(b), MAX(b), SUM(b) FROM t WHERE a = 1",
    "SELECT a FROM t WHERE c LIKE 'x%' ORDER BY a, b",
    "SELECT a FROM t WHERE b = 1 UNION SELECT a FROM t WHERE b = 2 "
    "ORDER BY 1",
    "SELECT a, b FROM t WHERE NOT (a = 1 OR b = 2) ORDER BY a, b, c",
    "SELECT CAST(c AS TEXT) FROM t WHERE a = 2 ORDER BY c LIMIT 3",
    "SELECT a + b, a - b, a * b FROM t ORDER BY a, b, c LIMIT 5",
]

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.integers(0, 5),
        st.sampled_from(["x1", "x2", "y1", "zz", ""]),
    ),
    max_size=30,
)


def run_both(rows, query):
    mini = MiniDb()
    mini.execute(SCHEMA)
    mini.execute(INDEX)
    mini.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)

    lite = sqlite3.connect(":memory:")
    lite.execute(SCHEMA)
    lite.execute(INDEX)
    lite.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)

    mini_rows = mini.execute(query).rows
    lite_rows = [tuple(r) for r in lite.execute(query).fetchall()]
    lite.close()
    return mini_rows, lite_rows


@pytest.mark.parametrize("query", QUERIES)
@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy)
def test_query_agrees_with_sqlite(query, rows):
    mini_rows, lite_rows = run_both(rows, query)
    assert mini_rows == lite_rows, query


@settings(max_examples=30, deadline=None)
@given(
    rows=rows_strategy,
    delta=st.integers(-3, 3),
    threshold=st.integers(0, 5),
)
def test_update_delete_agree_with_sqlite(rows, delta, threshold):
    mini = MiniDb()
    mini.execute(SCHEMA)
    mini.execute(INDEX)
    mini.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)

    lite = sqlite3.connect(":memory:")
    lite.execute(SCHEMA)
    lite.execute(INDEX)
    lite.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)

    update = "UPDATE t SET b = b + ? WHERE a >= ?"
    mini_count = mini.execute(update, (delta, threshold)).rowcount
    lite_count = lite.execute(update, (delta, threshold)).rowcount
    assert mini_count == lite_count

    delete = "DELETE FROM t WHERE b < ?"
    mini_count = mini.execute(delete, (threshold,)).rowcount
    lite_count = lite.execute(delete, (threshold,)).rowcount
    assert mini_count == lite_count

    final = "SELECT a, b, c FROM t ORDER BY a, b, c"
    assert mini.execute(final).rows == [
        tuple(r) for r in lite.execute(final).fetchall()
    ]
    lite.close()
