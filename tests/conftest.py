"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.store import XmlStore
from repro.xmldom import Document, parse
from repro.xpath import AttributeNode, Evaluator

#: The paper's three encodings (cost-shape tests assert their ordering).
ENCODINGS = ("global", "local", "dewey")
#: Including the ORDPATH extension (correctness tests cover all four).
ALL_ENCODINGS = (*ENCODINGS, "ordpath")
BACKENDS = ("sqlite", "minidb")

BIB_XML = (
    '<bib><book year="1994"><title>TCP/IP Illustrated</title>'
    "<author>Stevens</author><price>65.95</price></book>"
    '<book year="2000"><title>Data on the Web</title>'
    "<author>Abiteboul</author><author>Buneman</author>"
    "<author>Suciu</author><price>39.95</price></book>"
    '<book year="1999"><title>Economics</title>'
    "<author>Smith</author><price>10</price></book></bib>"
)


def node_ids(document: Document) -> dict[int, int]:
    """Map ``id(dom node) -> shredded surrogate id`` (preorder, 1-based).

    The shredder assigns ids in preorder starting at 1, so a parallel
    preorder walk of the DOM yields the same numbering.
    """
    return {
        id(node): index + 1
        for index, node in enumerate(document.iter_preorder())
    }


def oracle_identities(document: Document, xpath: str) -> list[tuple]:
    """Evaluate *xpath* natively; return store-comparable identities."""
    ids = node_ids(document)
    evaluator = Evaluator(document)
    out = []
    for node in evaluator.evaluate(xpath):
        if isinstance(node, AttributeNode):
            out.append(("attribute", ids[id(node.owner)], node.name))
        else:
            # The document node itself has no row; it maps to id 0 (such
            # queries are untranslatable, so the value is never compared
            # — it only keeps this helper total).
            out.append(("node", ids.get(id(node), 0)))
    return out


def store_identities(store: XmlStore, doc: int, xpath: str) -> list[tuple]:
    """Run *xpath* through the store; return comparable identities."""
    return [item.identity() for item in store.query(xpath, doc)]


def assert_query_matches_oracle(
    store: XmlStore, doc: int, document: Document, xpath: str
) -> None:
    got = store_identities(store, doc, xpath)
    want = oracle_identities(document, xpath)
    assert got == want, (
        f"{store.encoding.name}/{store.backend.name} {xpath!r}: "
        f"got {got}, want {want}"
    )


@pytest.fixture(autouse=True)
def _audit_created_stores(request, monkeypatch):
    """Audit every store a test created, once the test finishes.

    Tracks :class:`XmlStore` construction for the duration of the test
    and runs the full invariant auditor over each store at teardown, so
    any update path that corrupts an encoding fails the test that drove
    it even if its own assertions were weaker.  Mark a test
    ``@pytest.mark.skip_audit`` when it deliberately corrupts a store.
    Documents above the row cap are skipped to keep stress tests cheap.
    """
    if request.node.get_closest_marker("skip_audit"):
        yield
        return
    created: list[XmlStore] = []
    original_init = XmlStore.__init__

    def tracking_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        created.append(self)

    monkeypatch.setattr(XmlStore, "__init__", tracking_init)
    yield
    from repro.check import audit_store

    problems: list[str] = []
    for store in created:
        try:
            store.documents()
        except Exception:
            continue  # backend closed or made unusable by the test
        violations = audit_store(store, max_rows_per_doc=3000)
        if violations:
            listing = "\n  ".join(str(v) for v in violations)
            problems.append(
                f"{store.encoding.name}/{store.backend.name}: "
                f"{len(violations)} violation(s):\n  {listing}"
            )
    if problems:
        pytest.fail(
            "post-test invariant audit failed:\n" + "\n".join(problems)
        )


@pytest.fixture
def bib_document() -> Document:
    return parse(BIB_XML)


@pytest.fixture(params=ALL_ENCODINGS)
def encoding(request) -> str:
    return request.param


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


@pytest.fixture
def bib_store(encoding, bib_document):
    """A sqlite-backed store per encoding, loaded with the bib document."""
    store = XmlStore(backend="sqlite", encoding=encoding)
    doc = store.load(bib_document)
    return store, doc, bib_document
