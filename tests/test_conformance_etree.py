"""Differential XPath conformance against ``xml.etree.ElementTree``.

The rest of the suite cross-checks the store against our own native
evaluator — which shares the DOM and parser with the shredder, so a
systematic misunderstanding of XPath semantics could hide in both
sides.  This suite uses the standard library's ElementTree as a fully
independent oracle: the same serialized XML is parsed by ET, queries
from the supported subset (no position predicates) are evaluated over
the ET tree by a small standalone matcher, and the matched elements are
compared with the store's results by surrogate id.

The comparison exploits one invariant: the shredder assigns surrogate
ids in document (preorder) order, so the expected result of any
node-set query is exactly the *sorted* list of matched ids.  Comparing
against that sorted list therefore checks membership, deduplication,
and document-order sorting in one assertion, without depending on the
order ET happens to yield matches in.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

import pytest

from tests.conftest import ALL_ENCODINGS, BACKENDS, node_ids
from repro.store import XmlStore
from repro.workload import article_corpus, catalog_corpus
from repro.workload.docgen import random_document
from repro.xmldom import serialize
from repro.xmldom.dom import Element

# -- a tiny, independent XPath matcher over ElementTree ---------------------

_STEP_RE = re.compile(
    r"^(?P<tag>\*|[A-Za-z_][\w.-]*)"
    r"(?:\[(?P<pred>[^\]]+)\])?$"
)


def _parse_steps(xpath: str) -> list[tuple[str, str, str | None]]:
    """Split an XPath into ``(axis, tag, predicate)`` steps.

    ``axis`` is ``child`` or ``desc`` (descendant-or-self::node()/child).
    Only the subset this suite exercises is accepted; anything else is
    a test bug, so parsing is strict.
    """
    if not xpath.startswith("/"):
        raise ValueError(f"only absolute paths supported: {xpath!r}")
    marked = xpath.replace("//", "/\0")
    steps = []
    for raw in marked.split("/")[1:]:
        axis = "child"
        if raw.startswith("\0"):
            axis = "desc"
            raw = raw[1:]
        match = _STEP_RE.match(raw)
        if match is None:
            raise ValueError(f"unsupported step {raw!r} in {xpath!r}")
        pred = match.group("pred")
        if pred is not None and not re.match(
            r"^(@[\w.-]+(\s*=\s*'[^']*')?|[A-Za-z_][\w.-]*)$", pred
        ):
            raise ValueError(
                f"unsupported predicate {pred!r} in {xpath!r}"
            )
        steps.append((axis, match.group("tag"), pred))
    return steps


def _test(element: ET.Element, tag: str, pred: str | None) -> bool:
    if tag != "*" and element.tag != tag:
        return False
    if pred is None:
        return True
    if pred.startswith("@"):
        if "=" in pred:
            name, _, value = pred.partition("=")
            return element.get(name[1:].strip()) == value.strip("'\"")
        return element.get(pred[1:]) is not None
    # Existential child-element predicate: [child-tag].
    return element.find(pred) is not None


def et_matches(root: ET.Element, xpath: str) -> list[ET.Element]:
    """All elements the query selects, evaluated over the ET tree."""
    steps = _parse_steps(xpath)
    axis, tag, pred = steps[0]
    if axis == "desc":
        # From the document node, descendant-or-self includes the root.
        current = [e for e in root.iter() if _test(e, tag, pred)]
    else:
        current = [root] if _test(root, tag, pred) else []
    for axis, tag, pred in steps[1:]:
        if axis == "desc":
            nxt = [
                d
                for n in current
                for d in n.iter()
                if d is not n and _test(d, tag, pred)
            ]
        else:
            nxt = [c for n in current for c in n if _test(c, tag, pred)]
        # XPath node-sets are sets: drop duplicates introduced by
        # overlapping descendant contexts.
        seen: set[int] = set()
        current = []
        for element in nxt:
            if id(element) not in seen:
                seen.add(id(element))
                current.append(element)
    return current


# -- corpus ------------------------------------------------------------------

# ElementTree drops comments and processing instructions when parsing,
# which would break the preorder pairing below — generated documents
# must therefore stay comment-free.
DOCUMENTS = {
    "articles": lambda: article_corpus(articles=5, sections=3,
                                       paragraphs=3),
    "catalog": lambda: catalog_corpus(products=12),
    "random-1": lambda: random_document(seed=101, allow_comments=False),
    "random-2": lambda: random_document(seed=202, allow_comments=False),
    "random-3": lambda: random_document(seed=303, allow_comments=False),
}

#: Queries per document family: the supported subset without position
#: predicates.  Wildcards, descendant steps, attribute existence and
#: equality predicates, and existential child predicates.
QUERIES = {
    "articles": (
        "/journal/article/title",
        "//para",
        "//section/para",
        "//article[@year]/title",
        "//section[para]/title",
        "//article//para",
        "/journal/*",
        "//*",
    ),
    "catalog": (
        "/catalog/product/name",
        "//review/comment",
        "//product[@sku]/price",
        "//product[review]/name",
        "//product/*",
        "//*",
    ),
    "random": (
        "//a",
        "//b",
        "//a/b",
        "//b//c",
        "//d[@id]",
        "//a[b]",
        "/*",
        "//*",
    ),
}


def _queries_for(name: str) -> tuple[str, ...]:
    return QUERIES.get(name.split("-")[0], QUERIES["random"])


@pytest.mark.parametrize("doc_name", sorted(DOCUMENTS))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_store_matches_elementtree(doc_name, encoding, backend):
    document = DOCUMENTS[doc_name]()
    xml = serialize(document.root)
    et_root = ET.fromstring(xml)

    # Pair our DOM elements with ET elements by preorder position.
    ours = [
        node for node in document.iter_preorder()
        if isinstance(node, Element)
    ]
    theirs = list(et_root.iter())
    assert len(ours) == len(theirs), (
        f"{doc_name}: element count diverged between parsers "
        f"({len(ours)} vs {len(theirs)})"
    )
    ids = node_ids(document)
    surrogate = {
        id(et_element): ids[id(our_element)]
        for our_element, et_element in zip(ours, theirs)
    }

    store = XmlStore(backend=backend, encoding=encoding)
    doc = store.load(document)
    for xpath in _queries_for(doc_name):
        expected = sorted(
            surrogate[id(e)] for e in et_matches(et_root, xpath)
        )
        got = [item.node_id for item in store.query(xpath, doc)]
        assert got == expected, (
            f"{doc_name} {encoding}/{backend} {xpath!r}: "
            f"got {got}, want {expected}"
        )


def test_et_matcher_rejects_unsupported():
    root = ET.fromstring("<a><b/></a>")
    with pytest.raises(ValueError):
        et_matches(root, "b")  # relative paths are out of scope
    with pytest.raises(ValueError):
        et_matches(root, "/a/b[1]")  # position predicates are excluded


# -- predicate literals with hostile characters ------------------------------

#: Values that historically break naive SQL-literal inlining: embedded
#: single quotes, pre-doubled quotes, LIKE metacharacters, non-ASCII.
#: Parameter binding must pass every one of them through verbatim.
TRICKY_VALUES = (
    "o'brien",
    "it''s",
    "100%",
    "under_score",
    "naïve café ☕",
    'say "hi"',
)


def _xpath_literal(value: str) -> str:
    """Quote *value* as an XPath string literal (the lexer has no
    escape mechanism, so the delimiter must not occur in the value)."""
    if "'" in value:
        assert '"' not in value, "value needs both quote kinds"
        return f'"{value}"'
    return f"'{value}'"


def _tricky_xml() -> str:
    from xml.sax.saxutils import escape, quoteattr

    items = "".join(
        f"<item k={quoteattr(v)}><t>{escape(v)}</t></item>"
        for v in TRICKY_VALUES
    )
    return f"<r>{items}</r>"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_hostile_literals_round_trip(encoding, backend):
    """translate→execute returns exactly what the ET oracle matches,
    for every hostile literal, on every backend × encoding."""
    xml = _tricky_xml()
    et_root = ET.fromstring(xml)
    store = XmlStore(backend=backend, encoding=encoding)
    doc = store.load(xml)

    for value in TRICKY_VALUES:
        lit = _xpath_literal(value)

        expected = [
            e.get("k")
            for e in et_root.iter("item")
            if e.get("k") == value
        ]
        got = [
            item.value
            for item in store.query(f"//item[@k = {lit}]/@k", doc)
        ]
        assert got == expected == [value], (
            f"attribute equality {lit}: got {got}"
        )

        expected = [
            e.get("k")
            for e in et_root.iter("item")
            if e.findtext("t") == value
        ]
        got = [
            item.value
            for item in store.query(f"//item[t = {lit}]/@k", doc)
        ]
        assert got == expected == [value], (
            f"text equality {lit}: got {got}"
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_like_metacharacters_are_not_wildcards(encoding, backend):
    """``%`` and ``_`` in contains()/starts-with() match literally."""
    xml = _tricky_xml()
    et_root = ET.fromstring(xml)
    store = XmlStore(backend=backend, encoding=encoding)
    doc = store.load(xml)

    for needle in ("%", "_", "0%", "under_"):
        lit = _xpath_literal(needle)

        expected = sorted(
            e.get("k")
            for e in et_root.iter("item")
            if needle in (e.findtext("t") or "")
        )
        got = sorted(
            item.value
            for item in store.query(f"//item[contains(t, {lit})]/@k", doc)
        )
        assert got == expected, f"contains({lit}): got {got}"

        expected = sorted(
            e.get("k")
            for e in et_root.iter("item")
            if (e.findtext("t") or "").startswith(needle)
        )
        got = sorted(
            item.value
            for item in store.query(
                f"//item[starts-with(t, {lit})]/@k", doc
            )
        )
        assert got == expected, f"starts-with({lit}): got {got}"
