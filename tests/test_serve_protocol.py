"""Wire-protocol unit tests: framing, limits, and response shapes.

Everything here runs against in-memory socket pairs — no processes, no
ports, tier-1 fast.
"""

import socket
import struct

import pytest

from repro.serve.protocol import (
    HEADER,
    MAX_FRAME,
    ProtocolError,
    decode_payload,
    encode_frame,
    error_response,
    ok_response,
    recv_frame,
    send_frame,
)


def sock_pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = sock_pair()
        try:
            send_frame(a, {"op": "ping", "id": 7})
            assert recv_frame(b) == {"op": "ping", "id": 7}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_sequence(self):
        a, b = sock_pair()
        try:
            for i in range(5):
                send_frame(a, {"n": i})
            assert [recv_frame(b)["n"] for _ in range(5)] == list(range(5))
        finally:
            a.close()
            b.close()

    def test_unicode_payload(self):
        a, b = sock_pair()
        try:
            send_frame(a, {"xml": "<r>détour — ünïcode</r>"})
            assert recv_frame(b)["xml"] == "<r>détour — ünïcode</r>"
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = sock_pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = sock_pair()
        try:
            frame = encode_frame({"op": "ping"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversize_header_rejected(self):
        a, b = sock_pair()
        try:
            a.sendall(HEADER.pack(MAX_FRAME + 1))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversize_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME + 16)})

    def test_garbage_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"not json at all {")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4


class TestResponseShapes:
    def test_ok_response_echoes_id(self):
        response = ok_response({"op": "ping", "id": "abc"}, pong=True)
        assert response == {"ok": True, "id": "abc", "pong": True}

    def test_ok_response_without_id(self):
        assert ok_response({"op": "ping"}) == {"ok": True}

    def test_error_response_shape(self):
        response = error_response(
            {"op": "query", "id": 3}, "bad_request", "no xpath"
        )
        assert response["ok"] is False
        assert response["id"] == 3
        assert response["error"]["type"] == "bad_request"
        assert response["error"]["message"] == "no xpath"

    def test_error_response_extra_fields(self):
        response = error_response(
            {}, "shard_unavailable", "down", shard=2
        )
        assert response["error"]["shard"] == 2
