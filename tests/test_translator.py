"""Tests for XPath -> SQL translation: SQL structure, stats, and the
per-encoding axis conditions (execution correctness is covered by the
store and property tests)."""

import pytest

from repro.core.translator import (
    make_translator,
    normalize_steps,
)
from repro.errors import TranslationError, UnsupportedXPathError
from repro.xpath import parse_xpath


def translate(encoding, xpath, max_depth=6):
    return make_translator(encoding, max_depth).translate(xpath, doc=1)


class TestNormalization:
    def test_double_slash_child_merges_to_descendant(self):
        steps = normalize_steps(parse_xpath("//a").steps)
        assert len(steps) == 1
        assert steps[0].axis == "descendant"
        assert steps[0].positional_axis == "child"

    def test_double_slash_attribute_merges(self):
        steps = normalize_steps(parse_xpath("//@id").steps)
        assert len(steps) == 1
        assert steps[0].axis == "attribute-deep"

    def test_regular_steps_untouched(self):
        steps = normalize_steps(parse_xpath("/a/b[1]").steps)
        assert [s.axis for s in steps] == ["child", "child"]
        assert steps[1].positional_axis == "child"

    def test_explicit_descendant_keeps_its_positional_axis(self):
        steps = normalize_steps(parse_xpath("/a/descendant::b[2]").steps)
        assert steps[1].axis == "descendant"
        assert steps[1].positional_axis == "descendant"


class TestCommonShape:
    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_simple_path_is_join_chain(self, encoding):
        translated = translate(encoding, "/bib/book/title")
        assert translated.sql.startswith("SELECT DISTINCT")
        assert translated.stats.joins == 2
        assert translated.result_kind == "node"
        # One doc parameter per node alias.
        assert translated.params.count(1) == 3

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_name_test_parameterised(self, encoding):
        translated = translate(encoding, "/bib")
        assert "tag = ?" in translated.sql
        assert "bib" in translated.params

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_attribute_result_kind(self, encoding):
        translated = translate(encoding, "/bib/book/@year")
        assert translated.result_kind == "attribute"
        assert "attr_" in translated.sql

    def test_relative_path_rejected(self):
        with pytest.raises(TranslationError):
            translate("global", "book/title")

    def test_bare_root_rejected(self):
        with pytest.raises(TranslationError):
            translate("global", "/")

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_midpath_attribute_rejected(self, encoding):
        with pytest.raises(UnsupportedXPathError):
            translate(encoding, "/a/@id/parent::a")

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_existence_predicate_uses_exists(self, encoding):
        translated = translate(encoding, "/bib/book[author]")
        assert "EXISTS (" in translated.sql
        assert translated.stats.exists_subqueries == 1

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_positional_predicate_uses_count(self, encoding):
        translated = translate(encoding, "/bib/book[2]")
        assert "(SELECT COUNT(*)" in translated.sql
        assert translated.stats.count_subqueries == 1

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_last_uses_not_exists(self, encoding):
        translated = translate(encoding, "/bib/book[last()]")
        assert "NOT EXISTS (" in translated.sql

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_value_comparison_against_number_casts(self, encoding):
        # xpath_number, not CAST: CAST('t11' AS REAL) is 0, but XPath
        # number('t11') is NaN and every NaN comparison is false.
        translated = translate(encoding, "/bib/book[price < 10]")
        assert "xpath_number(" in translated.sql
        assert "CAST(" not in translated.sql

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_numeric_not_equal_keeps_nan_semantics(self, encoding):
        # NaN != x is *true*, so the != comparison needs an IS NULL
        # disjunct (xpath_number maps NaN to NULL).
        translated = translate(encoding, "/bib/book[price != 10]")
        assert "IS NULL" in translated.sql

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_string_equality_parameterised(self, encoding):
        translated = translate(encoding, "/bib/book[author = 'Smith']")
        assert "Smith" in translated.params

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_contains_uses_instr(self, encoding):
        translated = translate(
            encoding, "/bib/book[contains(title, 'Web')]"
        )
        assert "INSTR(" in translated.sql

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_starts_with_uses_substr(self, encoding):
        translated = translate(
            encoding, "/bib/book[starts-with(title, 'T')]"
        )
        assert "SUBSTR(" in translated.sql

    @pytest.mark.parametrize("encoding", ["global", "local", "dewey"])
    def test_string_literal_becomes_parameter(self, encoding):
        # Predicate literals never appear in the SQL text (no quoting
        # or escaping to get wrong); they bind as parameters, and the
        # SQL is shared across literal values.
        translated = translate(
            encoding, "/bib/book[contains(title, \"O'Reilly\")]"
        )
        assert "O'Reilly" not in translated.sql
        assert "O'Reilly" in translated.params
        other = translate(
            encoding, "/bib/book[contains(title, \"Knuth\")]"
        )
        assert other.sql == translated.sql


class TestGlobalEncoding:
    def test_descendant_is_interval(self):
        translated = translate("global", "/bib//title")
        assert ".pos >" in translated.sql
        assert ".endpos" in translated.sql

    def test_following_is_single_comparison(self):
        translated = translate("global", "/bib/book[1]/following::title")
        assert ".pos > " in translated.sql
        assert translated.stats.or_expansions == 0

    def test_orders_by_pos(self):
        translated = translate("global", "/bib/book")
        assert translated.sql.rstrip().endswith(".pos")
        assert not translated.needs_client_order


class TestDeweyEncoding:
    def test_descendant_uses_successor_range(self):
        translated = translate("dewey", "/bib//title")
        assert "dewey_successor(" in translated.sql

    def test_parent_derived_from_key(self):
        translated = translate("dewey", "/bib/book/title/parent::book")
        assert "dewey_parent(" in translated.sql

    def test_orders_by_key(self):
        translated = translate("dewey", "/bib/book")
        assert translated.sql.rstrip().endswith(".dkey")
        assert not translated.needs_client_order


class TestLocalEncoding:
    def test_descendant_expands_by_depth(self):
        shallow = translate("local", "/bib//title", max_depth=4)
        deep = translate("local", "/bib//title", max_depth=10)
        assert deep.stats.or_expansions > shallow.stats.or_expansions
        assert "EXISTS (" in shallow.sql

    def test_needs_client_order(self):
        translated = translate("local", "/bib/book")
        assert translated.needs_client_order
        assert "ORDER BY" not in translated.sql

    def test_sibling_axes_direct(self):
        translated = translate(
            "local", "/bib/book/title/following-sibling::author"
        )
        assert ".lpos >" in translated.sql
        assert translated.stats.or_expansions == 0

    def test_document_order_positional_untranslatable(self):
        with pytest.raises(TranslationError):
            translate("local", "/bib/book[1]/following::author[2]")

    def test_following_axis_is_triple_expansion(self):
        translated = translate(
            "local", "/bib/book[1]/following::author", max_depth=5
        )
        # ancestor-or-self x following-sibling x descendant-or-self
        assert translated.stats.exists_subqueries >= 1
        assert translated.stats.or_expansions >= 6

    def test_global_and_dewey_allow_doc_order_positionals(self):
        for encoding in ("global", "dewey"):
            translated = translate(
                encoding, "/bib/book[1]/following::author[2]"
            )
            assert "(SELECT COUNT(*)" in translated.sql


class TestTranslationStatsComparative:
    def test_local_pays_more_for_document_order(self):
        xpath = "/journal/article[3]/following::author"
        costs = {
            name: translate(name, xpath).stats
            .total_relational_operations()
            for name in ("global", "local", "dewey")
        }
        assert costs["local"] > costs["global"]
        assert costs["local"] > costs["dewey"]

    def test_encodings_equal_on_unordered_paths(self):
        xpath = "/journal/article/title"
        costs = {
            name: translate(name, xpath).stats
            .total_relational_operations()
            for name in ("global", "local", "dewey")
        }
        assert costs["global"] == costs["local"] == costs["dewey"]
