"""The example scripts must run end-to-end without errors."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

# Each example is a subprocess running a full workload — seconds each.
pytestmark = pytest.mark.slow


@pytest.mark.parametrize(
    "script,args",
    [
        ("quickstart.py", []),
        ("ordered_bibliography.py", []),
        ("versioned_catalog.py", []),
        ("encoding_tradeoffs.py", ["20"]),  # small op count for CI
        ("engine_introspection.py", []),
    ],
)
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"


def test_quickstart_output_content():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "Abiteboul" in result.stdout
    assert "SELECT" in result.stdout  # shows the generated SQL
    assert "Ordered XML" in result.stdout  # the inserted book
