"""Store query tests: SQL execution vs the native oracle, over every
encoding (sqlite backend for speed; backend parity is covered separately).
"""

import pytest

from repro.store import XmlStore
from repro.workload import article_corpus
from repro.workload.queries import ORDERED_QUERIES, UNORDERED_QUERIES
from tests.conftest import (
    ALL_ENCODINGS,
    ENCODINGS,
    assert_query_matches_oracle,
    oracle_identities,
    store_identities,
)

FIXED_QUERIES = [
    "/bib",
    "/bib/book",
    "/bib/book/title",
    "/bib/book[2]",
    "/bib/book[2]/author[1]",
    "/bib/book[last()]",
    "/bib/book[position() <= 2]/title",
    "//author",
    "//author/text()",
    "//book[@year = 2000]/title",
    "//book[@year < 2000]/title",
    "//book[author = 'Buneman']/title",
    "//book[price > 20]/title",
    "//book[count(author) > 1]/@year",
    "//book[contains(title, 'Web')]",
    "//book[starts-with(title, 'TCP')]/author",
    "//book[not(@year = 1994)]/title",
    "//book[@year = 1994 or author = 'Smith']/title",
    "//book[@year > 1995 and price < 50]/title",
    "//title/following-sibling::author",
    "//author[1]/following-sibling::author",
    "//author[3]/preceding-sibling::author",
    "/bib/book[1]/following::author",
    "/bib/book[3]/preceding::title",
    "/bib/book/author[last()]",
    "//book/*",
    "//book/node()",
    "//@year",
    "/bib/book[2]/@*",
    "//book[title]/title",
    "//book[author][price]/title",
    "/bib/book/descendant::text()",
    "/bib/descendant-or-self::book/title",
    "//author/parent::book/@id",
    "//price/ancestor::book/title",
    "//book/title/..",
    "//book[2]/self::book/title",
]


class TestFixedQueriesMatchOracle:
    @pytest.mark.parametrize("xpath", FIXED_QUERIES)
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_query(self, encoding, xpath, bib_document):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(bib_document)
        assert_query_matches_oracle(store, doc, bib_document, xpath)


class TestBackendParity:
    """Both backends must return identical results for every encoding."""

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_minidb_equals_sqlite(self, encoding, bib_document):
        queries = [
            "/bib/book[2]/author[1]",
            "//book[@year < 2000]/title",
            "//title/following-sibling::author",
            "/bib/book[1]/following::author",
            "//book[count(author) > 1]/@year",
            "//book/author[last()]",
        ]
        lite = XmlStore(backend="sqlite", encoding=encoding)
        mini = XmlStore(backend="minidb", encoding=encoding)
        doc_l = lite.load(bib_document)
        doc_m = mini.load(bib_document)
        for xpath in queries:
            assert store_identities(lite, doc_l, xpath) == \
                store_identities(mini, doc_m, xpath), xpath


class TestWorkloadQueriesMatchOracle:
    """The benchmark query suites are correct on the benchmark corpus."""

    @pytest.mark.parametrize(
        "query", ORDERED_QUERIES + UNORDERED_QUERIES,
        ids=lambda q: q.id,
    )
    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_workload_query(self, encoding, query):
        document = article_corpus(articles=6)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        got = store_identities(store, doc, query.xpath)
        want = oracle_identities(document, query.xpath)
        assert got == want


class TestQueryApi:
    def test_result_items_carry_values(self, bib_store):
        store, doc, _document = bib_store
        items = store.query("/bib/book/title", doc)
        assert [i.value for i in items] == [
            "TCP/IP Illustrated", "Data on the Web", "Economics",
        ]
        assert all(i.kind == "elem" for i in items)
        assert all(i.label == "title" for i in items)

    def test_text_results(self, bib_store):
        store, doc, _document = bib_store
        items = store.query("//price/text()", doc)
        assert [i.value for i in items] == ["65.95", "39.95", "10"]
        assert all(i.kind == "text" for i in items)

    def test_attribute_results(self, bib_store):
        store, doc, _document = bib_store
        items = store.query("//book/@year", doc)
        assert [i.value for i in items] == ["1994", "2000", "1999"]
        assert all(i.kind == "attribute" for i in items)
        assert [i.label for i in items] == ["year"] * 3

    def test_query_values_helper(self, bib_store):
        store, doc, _document = bib_store
        assert store.query_values("//author", doc) == [
            "Stevens", "Abiteboul", "Buneman", "Suciu", "Smith",
        ]

    def test_empty_result(self, bib_store):
        store, doc, _document = bib_store
        assert store.query("/bib/magazine", doc) == []

    def test_multiple_documents_are_isolated(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc1 = store.load("<a><x>1</x></a>")
        doc2 = store.load("<a><x>2</x><x>3</x></a>")
        assert store.query_values("//x/text()", doc1) == ["1"]
        assert store.query_values("//x/text()", doc2) == ["2", "3"]
        infos = store.documents()
        assert [i.doc for i in infos] == [doc1, doc2]

    def test_document_info(self, bib_store):
        store, doc, document = bib_store
        info = store.document_info(doc)
        assert info.node_count == document.node_count()
        assert info.max_depth == 4  # bib / book / title / text()
        assert info.next_id == info.node_count + 1

    def test_unknown_document_raises(self, bib_store):
        store, _doc, _document = bib_store
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            store.document_info(999)

    def test_invalid_gap_rejected(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            XmlStore(backend="sqlite", encoding="global", gap=0)


class TestDocumentManagement:
    def test_delete_document_removes_all_rows(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc1 = store.load("<a><b x='1'>t</b></a>")
        doc2 = store.load("<c><d>u</d></c>")
        removed = store.delete_document(doc1)
        assert removed >= 4  # nodes + attribute
        assert [i.doc for i in store.documents()] == [doc2]
        # The other document is untouched.
        assert store.query_values("//d/text()", doc2) == ["u"]
        count = store.backend.execute(
            f"SELECT COUNT(*) FROM {store.node_table} WHERE doc = ?",
            (doc1,),
        )
        assert count.rows[0][0] == 0

    def test_delete_unknown_document_raises(self, encoding):
        from repro.errors import StorageError

        store = XmlStore(backend="sqlite", encoding=encoding)
        with pytest.raises(StorageError):
            store.delete_document(42)

    def test_reload_after_delete_gets_fresh_id(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc1 = store.load("<a/>")
        store.delete_document(doc1)
        doc2 = store.load("<b/>")
        assert store.query("/b", doc2)
