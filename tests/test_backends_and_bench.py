"""Tests for the backend layer and the benchmark harness."""

import pytest

from repro.backends import (
    Backend,
    MiniDbBackend,
    SqliteBackend,
    make_backend,
)
from repro.bench.harness import (
    ENCODING_NAMES,
    ExperimentTable,
    build_store,
    speedup,
    timed,
)
from repro.workload import article_corpus


class TestBackendFactory:
    def test_make_backend_names(self):
        assert isinstance(make_backend("sqlite"), SqliteBackend)
        assert isinstance(make_backend("minidb"), MiniDbBackend)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_backend("oracle11g")


@pytest.mark.parametrize("name", ["sqlite", "minidb"])
class TestBackendContract:
    def _backend(self, name) -> Backend:
        backend = make_backend(name)
        backend.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        return backend

    def test_execute_returns_rows(self, name):
        backend = self._backend(name)
        backend.execute("INSERT INTO t VALUES (?, ?)", (1, "x"))
        result = backend.execute("SELECT a, b FROM t")
        assert result.rows == [(1, "x")]

    def test_rowcount_on_dml(self, name):
        backend = self._backend(name)
        backend.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, "v") for i in range(4)]
        )
        result = backend.execute("UPDATE t SET b = 'w' WHERE a >= 2")
        assert result.rowcount == 2
        result = backend.execute("DELETE FROM t WHERE a = 0")
        assert result.rowcount == 1

    def test_rows_written_accumulates(self, name):
        backend = self._backend(name)
        base = backend.rows_written()
        backend.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, "v") for i in range(3)]
        )
        assert backend.rows_written() >= base + 3

    def test_executescript(self, name):
        backend = make_backend(name)
        backend.executescript(
            "CREATE TABLE s (x INTEGER); "
            "INSERT INTO s VALUES (1); INSERT INTO s VALUES (2)"
        )
        assert backend.execute("SELECT COUNT(*) FROM s").rows == [(2,)]

    def test_blob_roundtrip_and_order(self, name):
        backend = make_backend(name)
        backend.execute("CREATE TABLE b (k BLOB)")
        backend.executemany(
            "INSERT INTO b VALUES (?)",
            [(bytes([3]),), (bytes([1, 9]),), (bytes([1]),)],
        )
        result = backend.execute("SELECT k FROM b ORDER BY k")
        assert [r[0] for r in result.rows] == [
            bytes([1]), bytes([1, 9]), bytes([3]),
        ]

    def test_dewey_functions_available(self, name):
        from repro.core.dewey import DeweyKey

        backend = make_backend(name)
        backend.execute("CREATE TABLE d (k BLOB)")
        backend.execute(
            "INSERT INTO d VALUES (?)",
            (DeweyKey.parse("1.2.3").encode(),),
        )
        result = backend.execute(
            "SELECT dewey_local(k), dewey_depth(k) FROM d"
        )
        assert result.rows == [(3, 3)]
        result = backend.execute("SELECT dewey_parent(k) FROM d")
        assert DeweyKey.decode(result.rows[0][0]) == DeweyKey.parse("1.2")


class TestHarness:
    def test_timed_returns_positive(self):
        assert timed(lambda: sum(range(100)), repeat=3) >= 0

    def test_build_store(self):
        document = article_corpus(articles=2)
        for encoding in ENCODING_NAMES:
            store, doc = build_store(document, encoding)
            assert store.node_count(doc) == document.node_count()

    def test_speedup(self):
        assert speedup(1.0, 2.0) == 2.0
        assert speedup(0.0, 1.0) > 0

    def test_experiment_table_render(self):
        table = ExperimentTable(
            "EX", "demo", ("name", "ms"),
        )
        table.add_row("alpha", 1.5)
        table.add_row("beta", 120.0)
        table.add_note("a note")
        text = table.render()
        assert "EX: demo" in text
        assert "alpha" in text and "120" in text
        assert "note: a note" in text

    def test_experiment_table_markdown(self):
        table = ExperimentTable("EX", "demo", ("a", "b"))
        table.add_row(1, 2)
        markdown = table.render_markdown()
        assert markdown.startswith("| a | b |")
        assert "| 1 | 2 |" in markdown

    def test_row_width_checked(self):
        table = ExperimentTable("EX", "demo", ("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)


class TestExperimentsFastPath:
    """E1 and E9 are cheap enough to assert shapes inside the test suite."""

    def test_e1_dewey_labels_grow_with_depth(self):
        from repro.bench.experiments import run_e1_storage

        table = run_e1_storage(sizes=(500,))
        by_encoding = {row[1]: row for row in table.rows}
        assert by_encoding["global"][3] == 8.0  # two 4-byte integers
        assert by_encoding["local"][3] == 4.0
        assert by_encoding["dewey"][3] > 4.0  # variable-length keys

    def test_e9_local_most_expensive_on_document_order(self):
        from repro.bench.experiments import run_e9_translation

        table = run_e9_translation()
        q7 = next(row for row in table.rows if row[0] == "Q7")
        _id, _feature, global_ops, local_ops, dewey_ops = q7
        assert local_ops > global_ops
        assert local_ops > dewey_ops
