"""Tests for the ORDPATH extension: keys, careted insertion, store
behaviour, and the no-relabeling guarantee."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ordpath import (
    OrdpathKey,
    decode_signed_components,
    encode_signed_component,
    ordpath_depth_bytes,
    ordpath_parent_bytes,
    ordpath_successor_bytes,
    suffix_between,
)
from repro.errors import EncodingError
from repro.store import XmlStore


class TestKeyStructure:
    def test_parse_and_str(self):
        key = OrdpathKey.parse("1.6.1.3")
        assert key.components == (1, 6, 1, 3)
        assert str(key) == "1.6.1.3"

    def test_keys_must_end_odd(self):
        with pytest.raises(EncodingError):
            OrdpathKey((1, 6))

    def test_levels_group_carets(self):
        key = OrdpathKey.parse("1.6.1.3")
        assert key.levels() == [(1,), (6, 1), (3,)]
        assert key.depth() == 3

    def test_parent_drops_last_level(self):
        key = OrdpathKey.parse("1.6.1.3")
        assert key.parent() == OrdpathKey.parse("1.6.1")
        assert OrdpathKey.parse("1.6.1").parent() == OrdpathKey.parse("1")
        assert OrdpathKey.parse("1").parent() is None

    def test_caret_component_is_not_a_level(self):
        # 6.1 is ONE level (caret 6, slot 1), so 1.6.1 has depth 2: it is
        # a *child* of 1, logically between children 5 and 7.
        assert OrdpathKey.parse("1.6.1").depth() == 2

    def test_suffix_after(self):
        key = OrdpathKey.parse("1.6.1.3")
        assert key.suffix_after(OrdpathKey.parse("1.6.1")) == (3,)
        with pytest.raises(EncodingError):
            key.suffix_after(OrdpathKey.parse("3"))

    def test_is_ancestor_of(self):
        parent = OrdpathKey.parse("1.6.1")
        child = OrdpathKey.parse("1.6.1.3")
        assert parent.is_ancestor_of(child)
        assert not child.is_ancestor_of(parent)

    def test_subtree_successor_bounds_descendants(self):
        key = OrdpathKey.parse("1.5")
        descendant = OrdpathKey.parse("1.5.2.7.3")
        sibling = OrdpathKey.parse("1.7")
        caret_sibling = OrdpathKey.parse("1.6.1")
        assert key.components < descendant.components < \
            key.subtree_successor()
        assert not (key.components < sibling.components
                    < key.subtree_successor())
        assert not (key.components < caret_sibling.components
                    < key.subtree_successor())

    def test_initial_child_slots_are_odd_and_gapped(self):
        root = OrdpathKey.parse("1")
        assert OrdpathKey.initial_child(root, 1) == OrdpathKey.parse("1.1")
        assert OrdpathKey.initial_child(root, 3) == OrdpathKey.parse("1.5")
        gapped = OrdpathKey.initial_child(root, 2, gap=8)
        assert gapped.components == (1, 31)
        assert gapped.components[-1] % 2 == 1


class TestSignedCodec:
    @pytest.mark.parametrize("value", [-(2**31), -1, 0, 1, 2**31 - 1])
    def test_roundtrip_extremes(self, value):
        assert decode_signed_components(
            encode_signed_component(value)
        ) == (value,)

    def test_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_signed_component(2**31)
        with pytest.raises(EncodingError):
            encode_signed_component(-(2**31) - 1)

    def test_truncated_rejected(self):
        with pytest.raises(EncodingError):
            decode_signed_components(b"\x00\x01")

    @settings(max_examples=200, deadline=None)
    @given(a=st.integers(-(2**31), 2**31 - 1),
           b=st.integers(-(2**31), 2**31 - 1))
    def test_order_preserved_across_signs(self, a, b):
        assert (a < b) == (
            encode_signed_component(a) < encode_signed_component(b)
        )

    @settings(max_examples=150, deadline=None)
    @given(comps=st.lists(st.integers(-1000, 1000).map(
        lambda v: v if v % 2 else v + 1), min_size=1, max_size=6))
    def test_key_bytes_order_equals_component_order(self, comps):
        key = OrdpathKey(comps)
        assert OrdpathKey.decode(key.encode()) == key


class TestSuffixBetween:
    def test_first_child(self):
        assert suffix_between(None, None) == (1,)

    def test_after_last(self):
        assert suffix_between((5,), None) == (7,)

    def test_before_first(self):
        assert suffix_between(None, (1,)) == (-1,)

    def test_free_odd_slot(self):
        assert suffix_between((1,), (7,)) == (3,)

    def test_adjacent_odds_open_a_caret(self):
        assert suffix_between((5,), (7,)) == (6, 1)

    def test_inside_caret(self):
        # Between 5 and 6.1 there is room at 6.-1.
        assert suffix_between((5,), (6, 1)) == (6, -1)
        # Between 6.1 and 7 there is room at 6.3.
        assert suffix_between((6, 1), (7,)) == (6, 3)

    def test_nested_carets(self):
        s = suffix_between((6, 1), (6, 3))
        assert (6, 1) < s < (6, 3)
        assert s[-1] % 2 != 0

    def test_invalid_suffixes_rejected(self):
        with pytest.raises(EncodingError):
            suffix_between((4,), None)  # even-terminated
        with pytest.raises(EncodingError):
            suffix_between((), (1,))

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_random_insertions_never_collide(self, seed):
        """The crown property: any insertion sequence yields strictly
        ordered, odd-terminated, mutually non-prefix suffixes."""
        rng = random.Random(seed)
        suffixes: list[tuple[int, ...]] = []
        for _ in range(rng.randint(1, 40)):
            index = rng.randint(0, len(suffixes))
            left = suffixes[index - 1] if index > 0 else None
            right = suffixes[index] if index < len(suffixes) else None
            suffix = suffix_between(left, right)
            suffixes.insert(index, suffix)
            assert suffix[-1] % 2 != 0
        for a, b in zip(suffixes, suffixes[1:]):
            assert a < b
            assert a != b[: len(a)]
            assert b != a[: len(b)]


class TestSqlScalars:
    def test_successor(self):
        key = OrdpathKey.parse("1.6.1")
        assert ordpath_successor_bytes(key.encode()) == \
            b"".join(encode_signed_component(c) for c in (1, 6, 2))

    def test_parent(self):
        key = OrdpathKey.parse("1.6.1.3")
        assert OrdpathKey.decode(
            ordpath_parent_bytes(key.encode())
        ) == OrdpathKey.parse("1.6.1")
        assert ordpath_parent_bytes(OrdpathKey.parse("3").encode()) is None

    def test_depth(self):
        assert ordpath_depth_bytes(OrdpathKey.parse("1.6.1.3").encode()) == 3


class TestOrdpathStore:
    def test_never_relabels(self):
        store = XmlStore(backend="sqlite", encoding="ordpath")
        doc = store.load("<r><a/><b/><c/></r>")
        root = store.query("/r", doc)[0].node_id
        total = 0
        for step in range(25):
            report = store.updates.insert(doc, root, 1, f"<m i='{step}'/>")
            total += report.relabeled
        assert total == 0
        values = store.query_values("/r/m/@i", doc)
        assert values == [str(i) for i in reversed(range(25))]

    def test_subtree_insert_never_relabels(self):
        store = XmlStore(backend="sqlite", encoding="ordpath")
        doc = store.load("<r><a><x/></a><b/></r>")
        a_id = store.query("/r/a", doc)[0].node_id
        report = store.updates.insert(
            doc, a_id, 0, "<sub><deep>t</deep></sub>"
        )
        assert report.relabeled == 0
        assert report.inserted == 3
        assert store.query_values("//deep/text()", doc) == ["t"]

    def test_ordpath_vs_dewey_update_cost(self):
        """The extension's whole point, quantified."""
        costs = {}
        xml = "<list>" + "<i><v>x</v></i>" * 10 + "</list>"
        for encoding in ("dewey", "ordpath"):
            store = XmlStore(backend="sqlite", encoding=encoding)
            doc = store.load(xml)
            root = store.query("/list", doc)[0].node_id
            relabeled = 0
            for _ in range(8):
                relabeled += store.updates.insert(
                    doc, root, 1, "<i/>"
                ).relabeled
            costs[encoding] = relabeled
        assert costs["ordpath"] == 0
        assert costs["dewey"] > 50

    def test_key_growth_is_the_price(self):
        """Repeated same-spot insertion grows ORDPATH keys (carets) —
        the space-for-stability trade."""
        store = XmlStore(backend="sqlite", encoding="ordpath")
        doc = store.load("<r><a/><b/></r>")
        root = store.query("/r", doc)[0].node_id
        for step in range(15):
            store.updates.insert(doc, root, 1, "<m/>")
        lengths = [
            len(row[0])
            for row in store.backend.execute(
                "SELECT okey FROM node_ordpath WHERE doc = ?", (doc,)
            ).rows
        ]
        assert max(lengths) > 8  # some keys needed carets
