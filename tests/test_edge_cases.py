"""Edge-case tests across the stack: self-value predicates, dot/dotdot
navigation, deep documents, unusual content, minidb corner cases."""

import pytest

from repro.minidb import MiniDb
from repro.store import XmlStore
from repro.xmldom import parse
from repro.xpath import evaluate, string_value
from tests.conftest import (
    ALL_ENCODINGS,
    assert_query_matches_oracle,
)


class TestSelfValuePredicates:
    XML = "<r><a>x</a><a>y</a><b><a>x</a></b></r>"

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    @pytest.mark.parametrize(
        "xpath",
        [
            "//a[. = 'x']",
            "//a[. != 'x']",
            "//a[starts-with(., 'x')]",
            "//a[contains(., 'y')]",
            "//b/a[.]",
        ],
    )
    def test_dot_predicates(self, encoding, xpath):
        document = parse(self.XML)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert_query_matches_oracle(store, doc, document, xpath)

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_dotdot_navigation(self, encoding):
        document = parse(self.XML)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert_query_matches_oracle(
            store, doc, document, "//b/a/../a"
        )


class TestUnusualContent:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_unicode_everywhere(self, encoding):
        xml = '<röt attr="héllo"><子>中文内容</子><e>🎉</e></röt>'
        document = parse(xml)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.reconstruct(doc).structurally_equal(document)
        assert store.query_values("/röt/子/text()", doc) == ["中文内容"]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_special_characters_in_values(self, encoding):
        xml = "<r><q>it's \"quoted\" &amp; 50% &lt;ok&gt;</q></r>"
        document = parse(xml)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.query_values("//q/text()", doc) == [
            "it's \"quoted\" & 50% <ok>"
        ]
        # A quoted string in a predicate survives SQL escaping.
        assert len(store.query('//q[contains(., "it\'s")]', doc)) == 1

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_wide_sibling_lists(self, encoding):
        xml = "<r>" + "".join(f"<i>{n}</i>" for n in range(300)) + "</r>"
        document = parse(xml)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.query_values("/r/i[150]/text()", doc) == ["149"]
        assert store.query_values("/r/i[last()]/text()", doc) == ["299"]
        assert len(store.query("/r/i[position() > 290]", doc)) == 10

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_deep_chains(self, encoding):
        depth = 40
        xml = "".join(f"<n{i}>" for i in range(depth)) + "leaf" + \
            "".join(f"</n{i}>" for i in reversed(range(depth)))
        document = parse(xml)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.query_values(f"//n{depth - 1}/text()", doc) == \
            ["leaf"]
        deep = store.query(f"//n{depth - 1}", doc)[0].node_id
        ancestors = store.query(
            f"//n{depth - 1}/ancestor::*", doc
        )
        assert len(ancestors) == depth - 1
        assert store.string_value(doc, deep) == "leaf"

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_empty_elements_and_whitespace_text(self, encoding):
        xml = "<r><e/><s> </s><t>\n</t></r>"
        document = parse(xml)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        assert store.reconstruct(doc).structurally_equal(document)
        assert store.query_values("/r/s/text()", doc) == [" "]


class TestMiniDbCorners:
    def test_select_without_from(self):
        db = MiniDb()
        assert db.execute("SELECT 1 + 1, 'x' || 'y'").rows == \
            [(2, "xy")]

    def test_where_false_constant(self):
        db = MiniDb()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.execute("SELECT a FROM t WHERE 1 = 0").rows == []

    def test_parameter_in_select_list(self):
        db = MiniDb()
        assert db.execute("SELECT ?", ("hi",)).rows == [("hi",)]

    def test_blob_parameters_roundtrip(self):
        db = MiniDb()
        db.execute("CREATE TABLE b (v BLOB)")
        payload = bytes(range(256))
        db.execute("INSERT INTO b VALUES (?)", (payload,))
        assert db.execute("SELECT v FROM b").rows == [(payload,)]

    def test_distinct_on_blobs(self):
        db = MiniDb()
        db.execute("CREATE TABLE b (v BLOB)")
        db.executemany(
            "INSERT INTO b VALUES (?)", [(b"\x01",), (b"\x01",)]
        )
        assert len(db.execute("SELECT DISTINCT v FROM b").rows) == 1

    def test_update_with_self_reference(self):
        db = MiniDb()
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("UPDATE t SET a = b, b = a")
        # Assignments see the pre-update row, like SQL requires.
        assert db.execute("SELECT a, b FROM t").rows == [(10, 1)]

    def test_limit_expression(self):
        db = MiniDb()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.executemany("INSERT INTO t VALUES (?)",
                       [(i,) for i in range(10)])
        assert len(db.execute(
            "SELECT a FROM t ORDER BY a LIMIT ?", (4,)
        ).rows) == 4

    def test_order_by_mixed_types_total_order(self):
        db = MiniDb()
        db.execute("CREATE TABLE t (v TEXT)")
        # Heterogeneous values through an untyped-ish column.
        db.execute("INSERT INTO t VALUES (NULL)")
        db.execute("INSERT INTO t VALUES ('a')")
        result = db.execute("SELECT v FROM t ORDER BY v")
        assert result.rows == [(None,), ("a",)]


class TestEvaluatorEdges:
    def test_position_on_reverse_axis_counts_backwards(self):
        document = parse("<r><a/><a/><a/><b/></r>")
        result = evaluate(document, "/r/b/preceding-sibling::a[1]")
        # Nearest preceding sibling = the third a.
        (node,) = result
        assert node is document.root.children[2]

    def test_following_of_last_node_is_empty(self):
        document = parse("<r><a/><b/></r>")
        assert evaluate(document, "/r/b/following::*") == []

    def test_descendant_of_leaf_is_empty(self):
        document = parse("<r><a/></r>")
        assert evaluate(document, "/r/a/descendant::node()") == []

    def test_attribute_of_text_node_is_empty(self):
        document = parse("<r>text</r>")
        assert evaluate(document, "/r/text()/@x") == []

    def test_numeric_string_comparison_follows_xpath(self):
        document = parse('<r><v a="10"/><v a="9"/></r>')
        # Numeric, not lexicographic: 9 < 10.
        result = evaluate(document, "//v[@a < 10]")
        assert len(result) == 1
        assert result[0].get("a") == "9"

    def test_comment_content_not_matched_by_text(self):
        document = parse("<r><!--note-->real</r>")
        values = [
            string_value(n) for n in evaluate(document, "/r/text()")
        ]
        assert values == ["real"]

    def test_pi_not_matched_by_wildcard(self):
        document = parse("<r><?target data?><e/></r>")
        assert len(evaluate(document, "/r/*")) == 1


class TestContextRelativeQueries:
    XML = (
        '<bib><book year="1994"><title>A</title><author>X</author>'
        '</book><book year="2000"><title>B</title><author>Y</author>'
        "<author>Z</author></book></bib>"
    )

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_navigate_from_node(self, encoding):
        from repro.xpath import Evaluator, string_value

        document = parse(self.XML)
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        book2 = store.query("/bib/book[2]", doc)[0].node_id
        evaluator = Evaluator(document)
        dom_book2 = evaluator.evaluate("/bib/book[2]")[0]
        for xpath in (
            "author",
            "author[last()]",
            "title/following-sibling::author",
            "preceding-sibling::book/title",
            "../book[1]/author",
            "@year",
            "descendant::text()",
        ):
            got = [i.value for i in store.query(
                xpath, doc, context_id=book2
            )]
            want = [
                string_value(n)
                for n in evaluator.evaluate(xpath, context=dom_book2)
            ]
            assert got == want, (encoding, xpath)

    def test_relative_without_context_rejected(self):
        from repro.errors import TranslationError

        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(self.XML)
        with pytest.raises(TranslationError):
            store.query("author", doc)

    def test_absolute_ignores_context(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(self.XML)
        book2 = store.query("/bib/book[2]", doc)[0].node_id
        assert len(store.query("//author", doc, context_id=book2)) == 3

    def test_relative_union(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(self.XML)
        book2 = store.query("/bib/book[2]", doc)[0].node_id
        values = [
            i.value
            for i in store.query("title | author", doc,
                                 context_id=book2)
        ]
        assert values == ["B", "Y", "Z"]

    def test_nonexistent_context_yields_empty(self):
        store = XmlStore(backend="sqlite", encoding="local")
        doc = store.load(self.XML)
        assert store.query("author", doc, context_id=9999) == []
