"""Tests for shredding (DOM -> records) and the encodings' rows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dewey import DeweyKey
from repro.core.encodings import get_encoding
from repro.core.schema import DOCUMENT_PARENT
from repro.core.shredder import direct_text_value, shred
from repro.workload.docgen import random_document
from repro.xmldom import parse

DOC = parse(
    '<a x="1"><b>hello</b><!--c--><d><e/>tail</d></a>'
)


class TestShredRecords:
    def test_node_count(self):
        shredded = shred(DOC)
        # a, b, text, comment, d, e, text
        assert shredded.node_count() == 7

    def test_ids_are_preorder_ranks(self):
        shredded = shred(DOC)
        assert [n.id for n in shredded.nodes] == list(range(1, 8))
        assert [n.rank for n in shredded.nodes] == list(range(1, 8))

    def test_root_parent_is_document(self):
        shredded = shred(DOC)
        assert shredded.nodes[0].parent == DOCUMENT_PARENT

    def test_parent_links(self):
        shredded = shred(DOC)
        by_id = {n.id: n for n in shredded.nodes}
        e_node = next(n for n in shredded.nodes if n.tag == "e")
        d_node = by_id[e_node.parent]
        assert d_node.tag == "d"

    def test_end_rank_covers_subtree(self):
        shredded = shred(DOC)
        root = shredded.nodes[0]
        assert root.end_rank == 7
        d_node = next(n for n in shredded.nodes if n.tag == "d")
        assert d_node.end_rank == d_node.rank + 2

    def test_sibling_index_counts_all_node_kinds(self):
        shredded = shred(DOC)
        d_node = next(n for n in shredded.nodes if n.tag == "d")
        assert d_node.sibling_index == 3  # after b and the comment

    def test_dewey_components(self):
        shredded = shred(DOC)
        e_node = next(n for n in shredded.nodes if n.tag == "e")
        assert e_node.dewey == (1, 3, 1)

    def test_depths(self):
        shredded = shred(DOC)
        assert shredded.nodes[0].depth == 1
        assert shredded.max_depth == 3

    def test_attributes_extracted(self):
        shredded = shred(DOC)
        (attr,) = shredded.attributes
        assert (attr.owner, attr.name, attr.value) == (1, "x", "1")

    def test_kinds_and_values(self):
        shredded = shred(DOC)
        kinds = [n.kind for n in shredded.nodes]
        assert kinds == [
            "elem", "elem", "text", "comment", "elem", "elem", "text",
        ]
        text_node = shredded.nodes[2]
        assert text_node.value == "hello"

    def test_element_direct_text_value(self):
        shredded = shred(DOC)
        b_node = next(n for n in shredded.nodes if n.tag == "b")
        assert b_node.value == "hello"
        a_node = shredded.nodes[0]
        assert a_node.value is None  # no direct text children


class TestDirectTextValue:
    def test_none_without_text(self):
        assert direct_text_value(parse("<a><b/></a>").root) is None

    def test_concatenates_direct_only(self):
        element = parse("<a>x<b>skip</b>y</a>").root
        assert direct_text_value(element) == "xy"

    def test_empty_text(self):
        # CDATA can produce genuinely empty text content.
        element = parse("<a>one</a>").root
        assert direct_text_value(element) == "one"


class TestEncodingRows:
    def test_global_rows(self):
        shredded = shred(DOC)
        encoding = get_encoding("global")
        row = encoding.node_row(9, shredded.nodes[0], gap=1)
        assert row[:3] == (9, 1, 0)
        assert row[-2:] == (1, 7)  # pos, endpos

    def test_global_gap_scales_positions(self):
        shredded = shred(DOC)
        encoding = get_encoding("global")
        row = encoding.node_row(1, shredded.nodes[0], gap=100)
        assert row[-2:] == (100, 700)

    def test_local_rows(self):
        shredded = shred(DOC)
        encoding = get_encoding("local")
        d_node = next(n for n in shredded.nodes if n.tag == "d")
        row = encoding.node_row(1, d_node, gap=10)
        assert row[-1] == 30  # sibling index 3 * gap

    def test_dewey_rows_are_encoded_keys(self):
        shredded = shred(DOC)
        encoding = get_encoding("dewey")
        e_node = next(n for n in shredded.nodes if n.tag == "e")
        (key_bytes,) = encoding.order_values(e_node, gap=2)
        assert DeweyKey.decode(key_bytes) == DeweyKey((2, 6, 2))

    def test_get_encoding_unknown(self):
        with pytest.raises(ValueError):
            get_encoding("hilbert")

    def test_create_statements_cover_tables_and_indexes(self):
        for name in ("global", "local", "dewey"):
            statements = get_encoding(name).create_statements()
            assert sum("CREATE TABLE" in s for s in statements) == 2
            assert any("CREATE INDEX" in s or "CREATE UNIQUE INDEX" in s
                       for s in statements)


class TestOrderInvariant:
    """Invariant 1: sorting rows by order key = document order."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_all_encodings_order_matches_preorder(self, seed):
        doc = random_document(seed)
        shredded = shred(doc)
        ranks = [n.rank for n in shredded.nodes]
        for name in ("global", "local", "dewey"):
            encoding = get_encoding(name)
            if name == "global":
                keyed = sorted(
                    shredded.nodes,
                    key=lambda n: encoding.order_values(n, 1)[0],
                )
                assert [n.rank for n in keyed] == ranks
            elif name == "dewey":
                keyed = sorted(
                    shredded.nodes,
                    key=lambda n: encoding.order_values(n, 1)[0],
                )
                assert [n.rank for n in keyed] == ranks
            else:
                # Local order is only meaningful within one sibling list.
                for node in shredded.nodes:
                    siblings = [
                        m for m in shredded.nodes
                        if m.parent == node.parent
                    ]
                    by_lpos = sorted(
                        siblings,
                        key=lambda n: encoding.order_values(n, 1)[0],
                    )
                    assert [n.rank for n in by_lpos] == sorted(
                        n.rank for n in siblings
                    )
