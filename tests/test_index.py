"""Secondary indexes: cost model, lifecycle, and differential plans.

Four guards around the ``repro.index`` subsystem:

* **cost model** — the scan-vs-index decision pinned on both sides of
  each crossover, so retuning the constants is a conscious act;
* **differential plans** — every query of the conformance corpus runs
  on an indexed store and an indexes-off twin (both the per-store
  override and the ``REPRO_INDEX`` environment hatch), across all four
  encodings and both backends, and must answer byte-identically: the
  planner may change access paths, never answers;
* **lifecycle** — plan-cache invalidation when an index appears
  (statistics fingerprint), stale-statistics detection after deepening
  inserts, eager maintenance through the update manager, the advisor's
  decision rule, and a fixed-seed create/drop crash sweep;
* **regressions** — the mixed-content string-value comparison the
  first-text-child shortcut used to get wrong, pinned explicitly and
  exercised by the fuzzer's bare-element predicate pool.
"""

from __future__ import annotations

import pytest

from tests.conftest import ALL_ENCODINGS, BACKENDS, BIB_XML
from repro.index import (
    INDEX_PROBE_COST,
    IndexAdvisor,
    STATS_REFRESH_THRESHOLD,
    choose_path_plan,
    choose_value_plan,
    estimate_value_matches,
    index_mode_from_env,
    is_indexable_xpath,
)
from repro.obs import METRICS
from repro.store import XmlStore
from repro.workload import catalog_corpus
from repro.workload.docgen import random_document
from repro.xmldom import parse, serialize


# -- cost model ----------------------------------------------------------


class TestCostModel:
    def test_value_plan_scan_side_of_crossover(self):
        # Tiny document: 10 node rows never amortize a 24-unit probe.
        choice = choose_value_plan(node_count=10, tag_count=5, distinct=5)
        assert choice.access_path == "scan"
        assert not choice.use_index
        assert choice.index_names == ()
        assert choice.est_rows is None
        assert choice.scan_cost == 10
        assert choice.index_cost == INDEX_PROBE_COST + 1

    def test_value_plan_index_side_of_crossover(self):
        choice = choose_value_plan(
            node_count=10_000, tag_count=50, distinct=10
        )
        assert choice.access_path == "value-index"
        assert choice.use_index
        assert choice.index_names == ("ix_idx_sval_parent",)
        assert choice.est_rows == 5
        assert choice.index_cost == INDEX_PROBE_COST + 5
        assert choice.index_cost < choice.scan_cost

    def test_value_plan_exact_boundary_prefers_scan(self):
        # index_cost == scan_cost must keep the scan (strict <).
        boundary = int(INDEX_PROBE_COST) + 1
        choice = choose_value_plan(
            node_count=boundary, tag_count=boundary, distinct=boundary
        )
        assert choice.index_cost == choice.scan_cost
        assert choice.access_path == "scan"

    def test_path_plan_scan_side_of_crossover(self):
        choice = choose_path_plan(
            node_count=10, step_count=1, path_count=8, est_rows=5
        )
        assert choice.access_path == "scan"
        assert choice.index_names == ()
        assert choice.scan_cost == 10
        assert choice.index_cost == INDEX_PROBE_COST + 8 + 5

    def test_path_plan_index_side_of_crossover(self):
        choice = choose_path_plan(
            node_count=10_000, step_count=3, path_count=40, est_rows=100
        )
        assert choice.access_path == "path-index"
        assert choice.index_names == ("ux_idx_paths", "ix_idx_pathmap")
        assert choice.est_rows == 100
        assert choice.scan_cost == 30_000
        assert choice.index_cost == INDEX_PROBE_COST + 140

    def test_path_plan_step_count_moves_the_crossover(self):
        # The same document flips to the index as the path deepens:
        # every extra step adds a full node-table pass to the scan.
        args = dict(node_count=40, path_count=10, est_rows=20)
        assert choose_path_plan(step_count=1, **args).access_path == "scan"
        assert (
            choose_path_plan(step_count=2, **args).access_path
            == "path-index"
        )

    def test_estimate_value_matches(self):
        assert estimate_value_matches(0, 5) == 0
        assert estimate_value_matches(100, 10) == 10
        assert estimate_value_matches(100, 0) == 100
        assert estimate_value_matches(3, 1000) == 1  # never below one


# -- the environment hatch ----------------------------------------------


class TestIndexMode:
    @pytest.mark.parametrize("value,expected", [
        ("on", "on"), ("1", "on"), ("TRUE", "on"),
        ("off", "off"), ("0", "off"), ("no", "off"),
        ("", "auto"), ("anything-else", "auto"),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_INDEX", value)
        assert index_mode_from_env() == expected

    def test_unset_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX", raising=False)
        assert index_mode_from_env() == "auto"

    def test_force_mode_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX", "on")
        store = XmlStore(backend="sqlite", encoding="global")
        store.indexes.force_mode = "off"
        assert store.indexes.mode() == "off"


# -- differential plans: indexed vs unindexed must answer identically ----

#: The conformance corpus plus value predicates and deep descents — the
#: shapes the value/path rewrites serve, with enough non-indexable
#: queries mixed in to cover the fall-through.
DIFFERENTIAL_QUERIES = (
    "/bib/book/title",
    "/bib//title",
    "//price",
    "//book//author",
    "/bib/*",
    "//*",
    "//book[price > 50]/title",
    "//book[author = 'Smith']",
    "//book[price < 40]/author",
    "//book[title != 'Economics']",
    "/bib/book[2]/author",
    "/bib/book[last()]",
    "//book[@year]/title",
    "//book[count(author) > 1]/title",
    "//title | //author",
)


def _answers(store: XmlStore, doc: int, queries) -> dict:
    return {
        xpath: [
            (i.kind, i.node_id, i.label, i.value)
            for i in store.query(xpath, doc)
        ]
        for xpath in queries
    }


class TestDifferentialPlans:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_index_on_off_byte_identical(self, encoding, backend):
        document = parse(BIB_XML)
        indexed = XmlStore(backend=backend, encoding=encoding)
        indexed.indexes.force_mode = "on"
        plain = XmlStore(backend=backend, encoding=encoding)
        plain.indexes.force_mode = "off"
        doc_i = indexed.load(document)
        doc_p = plain.load(document)
        assert indexed.indexes.exists(doc_i)
        assert not plain.indexes.exists(doc_p)
        assert _answers(indexed, doc_i, DIFFERENTIAL_QUERIES) == _answers(
            plain, doc_p, DIFFERENTIAL_QUERIES
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_env_hatch_on_off_byte_identical(self, monkeypatch, backend):
        """The same differential through the REPRO_INDEX environment
        hatch — the knob CI's tier-1 matrix flips."""
        document = catalog_corpus(products=15)
        queries = (
            "/catalog/product/name",
            "//review/comment",
            "//product[@sku]/price",
            "//product//comment",
            "//product[name = 'Widget 3']",
        )
        answers = {}
        for mode in ("on", "off"):
            monkeypatch.setenv("REPRO_INDEX", mode)
            store = XmlStore(backend=backend, encoding="dewey")
            doc = store.load(document)
            assert store.indexes.exists(doc) == (mode == "on")
            answers[mode] = _answers(store, doc, queries)
        assert answers["on"] == answers["off"]

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_differential_survives_updates(self, encoding):
        """Eager maintenance: after inserts, deletes, renames and text
        edits the indexed store still answers like the unindexed one —
        the index rows ride the same transaction as the node rows."""
        document = random_document(seed=7, max_depth=4, max_children=3)
        indexed = XmlStore(backend="sqlite", encoding=encoding)
        indexed.indexes.force_mode = "on"
        plain = XmlStore(backend="sqlite", encoding=encoding)
        plain.indexes.force_mode = "off"
        doc_i = indexed.load(document)
        doc_p = plain.load(document)
        queries = ("//a", "//a//b", "/a/b", "//b[c > 10]", "//a[b = 5]")
        for store, doc in ((indexed, doc_i), (plain, doc_p)):
            root = store.query("/*", doc)[0].node_id
            store.updates.insert(doc, root, 0, "<b><c>42</c>mixed</b>")
            store.updates.insert(doc, root, 1, "t5 ")
            child = store.fetch_children(doc, root)[0]["id"]
            store.updates.rename(doc, child, "a")
            store.updates.set_text(doc, child, "5")
        assert _answers(indexed, doc_i, queries) == _answers(
            plain, doc_p, queries
        )


# -- lifecycle -----------------------------------------------------------


class TestIndexLifecycle:
    def _bulk_store(self, encoding="global", backend="sqlite"):
        """A store whose document is big enough that indexed plans win
        the cost crossover.  Mode is pinned to ``auto`` so the
        lifecycle assertions (explicit create/drop flipping plans)
        hold regardless of the ambient ``REPRO_INDEX`` matrix leg."""
        store = XmlStore(backend=backend, encoding=encoding)
        store.indexes.force_mode = "auto"
        doc = store.load(catalog_corpus(products=30))
        return store, doc

    def test_plan_cache_invalidated_by_index_creation(self):
        """Creating an index changes the statistics fingerprint, so a
        cached scan plan cannot outlive the statistics that justified
        it — the next translate re-compiles and picks the index."""
        store, doc = self._bulk_store()
        xpath = "//product//comment"
        before = store.translate(xpath, doc)
        assert before.access_path == "scan"
        store.indexes.create(doc)
        after = store.translate(xpath, doc)
        assert after.access_path == "path-index"
        assert after.index_names == ("ux_idx_paths", "ix_idx_pathmap")
        # And dropping flips it back: the fingerprint component of the
        # plan key disappears with the index.
        store.indexes.drop(doc)
        assert store.translate(xpath, doc).access_path == "scan"

    def test_value_index_plan_on_big_document(self):
        store, doc = self._bulk_store()
        store.indexes.create(doc)
        plan = store.translate("//product[name = 'Widget 3']", doc)
        assert plan.access_path == "value-index"
        assert plan.index_names == ("ix_idx_sval_parent",)
        assert plan.est_rows is not None and plan.est_rows >= 1

    def test_stale_statistics_after_deepening_insert(self):
        """An insert that deepens the document past the recorded
        max_depth marks the statistics stale (the drift that skews
        path estimates) even before the update-counter threshold."""
        store, doc = self._bulk_store()
        store.indexes.create(doc)
        assert not store.indexes.stats_stale(doc)
        product = store.query("/catalog/product", doc)[0].node_id
        store.updates.insert(
            doc, product, 0,
            "<deep1><deep2><deep3><deep4>x</deep4></deep3></deep2></deep1>",
        )
        assert store.indexes.stats_stale(doc)
        describe = store.indexes.describe(doc)
        assert describe["stale"] is True
        store.indexes.refresh_stats(doc)
        assert not store.indexes.stats_stale(doc)

    def test_update_counter_triggers_stats_refresh(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(parse(BIB_XML))
        store.indexes.create(doc)
        version = store.indexes.describe(doc)["stats_version"]
        book = store.query("/bib/book[1]", doc)[0].node_id
        for n in range(STATS_REFRESH_THRESHOLD):
            store.updates.set_attribute(doc, book, "x", str(n))
        describe = store.indexes.describe(doc)
        assert describe["stats_version"] == version + 1
        assert describe["updates_since"] == 0

    def test_maintenance_keeps_value_rows_exact(self):
        """After an update, the idx_sval rows equal a from-scratch
        rebuild: eager maintenance leaves nothing stale behind."""
        store = XmlStore(backend="sqlite", encoding="ordpath")
        doc = store.load(parse(BIB_XML))
        store.indexes.create(doc)
        title = store.query("/bib/book[1]/title", doc)[0].node_id
        store.updates.set_text(doc, title, "Renamed Book")

        def sval_rows():
            return sorted(store.backend.execute(
                "SELECT id, tag, sval FROM idx_sval WHERE doc = ?",
                (doc,),
            ).rows)

        maintained = sval_rows()
        store.indexes.create(doc)  # full rebuild
        assert sval_rows() == maintained
        assert (title, "title", "Renamed Book") in maintained

    def test_delete_document_purges_index_rows(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(parse(BIB_XML))
        store.indexes.create(doc)
        store.delete_document(doc)
        for table in ("idx_sval", "idx_paths", "idx_pathmap", "idx_stats"):
            rows = store.backend.execute(
                f"SELECT COUNT(*) FROM {table} WHERE doc = ?", (doc,)
            ).rows
            assert rows[0][0] == 0, table

    def test_obs_counters_track_index_activity(self):
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            store, doc = self._bulk_store()
            store.indexes.create(doc)
            store.query("//product//comment", doc)
            store.query("//product[name = 'Widget 3']", doc)
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        assert counters["index.created"] >= 1
        assert counters["index.rewrite_path"] >= 1
        assert counters["index.rewrite_value"] >= 1
        assert counters["translate.access.path-index"] >= 1
        assert counters["translate.access.value-index"] >= 1
        assert counters["index.plan_queries"] >= 2
        assert counters["index.est_rows"] >= 1
        assert counters["index.actual_rows"] >= 1

    def test_miss_counter_feeds_the_advisor(self):
        was_enabled = METRICS.enabled
        METRICS.reset()
        METRICS.enabled = True
        try:
            store, doc = self._bulk_store()
            for _ in range(3):
                store.query("//product//comment", doc)
            counters = METRICS.snapshot()["counters"]
        finally:
            METRICS.enabled = was_enabled
            METRICS.reset()
        # Compilation is cached: at least the cold compile missed.
        assert counters.get("index.miss", 0) >= 1


# -- the advisor ---------------------------------------------------------


class TestIndexAdvisor:
    def test_holds_below_threshold(self):
        rec = IndexAdvisor(min_samples=5).decide(
            {"index.miss": 2}, unindexed=[1], slow_xpaths=["/a/b"]
        )
        assert rec.action == "hold"
        assert not rec.act
        assert rec.samples == 2  # '/a/b' is not an indexable shape

    def test_creates_past_threshold(self):
        rec = IndexAdvisor(min_samples=5).decide(
            {"counters": {"index.miss": 3}},
            unindexed=[1, 2],
            slow_xpaths=["//a[b = 1]", "//deep//path"],
        )
        assert rec.action == "create"
        assert rec.act
        assert rec.documents == (1, 2)
        assert rec.samples == 5

    def test_refresh_when_indexed_but_stale(self):
        rec = IndexAdvisor().decide(
            {"index.miss": 100}, unindexed=[], stale=[3]
        )
        assert rec.action == "refresh"
        assert rec.documents == (3,)

    def test_holds_when_fresh_and_indexed(self):
        rec = IndexAdvisor().decide({"index.miss": 100}, unindexed=[])
        assert rec.action == "hold"

    def test_indexable_xpath_shapes(self):
        assert is_indexable_xpath("//a/b")
        assert is_indexable_xpath("/a[b = 1]")
        assert is_indexable_xpath("/a[contains(b, 'x')]")
        assert not is_indexable_xpath("/a/b")


# -- mixed-content string-value regression -------------------------------


class TestMixedContentStringValue:
    """Bare element comparisons use the XPath string-value — every
    descendant text node concatenated in document order — not the first
    text child.  Mixed content is exactly where a first-text shortcut
    diverges, so these stay pinned across all encodings and backends.
    """

    MIXED_XML = (
        "<r>"
        "<a>1<b>2</b>3</a>"          # string-value "123"
        "<a><b>45</b></a>"           # string-value "45"
        "<a>45</a>"                  # string-value "45"
        "<a>4<b></b>5</a>"           # string-value "45" (empty element)
        "<a>45<b>0</b></a>"          # string-value "450"
        "</r>"
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_element_comparison_aggregates_descendant_text(
        self, encoding, backend
    ):
        store = XmlStore(backend=backend, encoding=encoding)
        doc = store.load(parse(self.MIXED_XML))
        ids = lambda xpath: [  # noqa: E731
            i.node_id for i in store.query(xpath, doc)
        ]
        # ids: r=1, then a=2 (1,b,3 -> 3,4,6), a=7 (b=8), a=10,
        # a=12 (4,b,5), a=16 (45,b=18).
        assert ids("/r/a[. != 0]") == ids("/r/a")  # smoke: all match !=
        assert ids("//a[b = 2]") == [2]
        assert ids("/r[a = 123]") == [1]
        equals_45 = store.query("/r/a[. = 45]", doc)
        assert len(equals_45) == 3  # "45" three ways, never "450"/"123"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_indexed_plan_agrees_on_mixed_content(self, backend):
        """The value index stores the same string-value the correlated
        aggregation computes, so the indexed plan answers mixed-content
        comparisons identically."""
        indexed = XmlStore(backend=backend, encoding="global")
        indexed.indexes.force_mode = "on"
        plain = XmlStore(backend=backend, encoding="global")
        plain.indexes.force_mode = "off"
        doc_i = indexed.load(parse(self.MIXED_XML))
        doc_p = plain.load(parse(self.MIXED_XML))
        queries = ("/r[a = 123]", "/r[a = 45]", "/r[a != 45]",
                   "//a[b = 2]")
        assert _answers(indexed, doc_i, queries) == _answers(
            plain, doc_p, queries
        )

    def test_fuzzer_predicate_pool_emits_bare_element_comparisons(self):
        """The regression stays guarded: the fuzzer's predicate pool
        must keep generating bare element comparisons (not only
        text()), the shape that exposed the bug."""
        import random

        from repro.check.fuzz import _random_predicate

        rng = random.Random(0)
        predicates = {_random_predicate(rng) for _ in range(400)}
        bare = [
            p for p in predicates
            if any(p.startswith(f"{t} ") for t in "abcd")
        ]
        assert bare, "predicate pool lost bare element comparisons"


# -- fixed-seed differential matrices ------------------------------------


class TestIndexTwinFuzzMatrix:
    def test_fixed_seed_index_twin_all_encodings_both_backends(self):
        from repro.check.fuzz import FuzzConfig, run_fuzz

        config = FuzzConfig(
            seeds=1, ops=8, encodings=ALL_ENCODINGS, backends=BACKENDS,
            base_seed=11, queries_per_check=4, check_every=4,
            index_twin=True,
        )
        report = run_fuzz(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)
        assert report.operations == 8

    def test_mixed_content_seed_regression(self):
        """Pinned seed whose op stream builds mixed content while the
        (post-fix) predicate pool compares bare elements against it —
        the exact combination that used to diverge from the oracle."""
        from repro.check.fuzz import FuzzConfig, run_fuzz

        config = FuzzConfig(
            seeds=2, ops=12, encodings=("global", "local"),
            backends=("sqlite",), base_seed=3, queries_per_check=6,
            check_every=3,
        )
        report = run_fuzz(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)


@pytest.mark.skip_audit  # the harness audits internally, on reopened stores
class TestIndexCrashSweep:
    def test_fixed_seed_create_drop_sweep(self):
        """Index DDL crash-safety: crashes injected at statement
        boundaries of create and drop must always recover to a clean
        audit with the index either absent or complete."""
        from repro.robust.crashtest import (
            CrashTestConfig,
            run_index_crashtest,
        )

        config = CrashTestConfig(
            seeds=1, encodings=("global", "dewey"),
            backends=BACKENDS, crashes_per_op=3,
        )
        report = run_index_crashtest(config)
        assert report.ok(), "\n".join(str(f) for f in report.failures)
        assert report.crashes > 0
        assert report.recoveries == report.crashes
