"""Invariant 3 — translation correctness, property-style.

For random documents and random XPath queries in the supported fragment,
SQL over shredded rows must return exactly the node set (in document
order) that the native evaluator returns — for all three encodings, and
on both backends.

The query generator draws from the same small alphabets as
:func:`repro.workload.docgen.random_document`, so queries regularly match
something.  Value comparisons are restricted to attributes and text
nodes, whose stored values are exactly their XPath string-values (element
direct-text materialisation is exercised by the fixed-query tests; see
DESIGN.md for the simple-content caveat).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TranslationError, UnsupportedXPathError
from repro.store import XmlStore
from repro.workload.docgen import random_document
from tests.conftest import ALL_ENCODINGS, oracle_identities, store_identities

TAGS = ("a", "b", "c", "d")
ATTRS = ("id", "x", "y")


def random_query(rng: random.Random) -> str:
    steps = []
    n_steps = rng.randint(1, 3)
    for position in range(n_steps):
        final = position == n_steps - 1
        steps.append(_random_step(rng, final))
    lead = rng.choice(("/", "//"))
    return lead + "/".join(steps)


def _random_step(rng: random.Random, final: bool) -> str:
    roll = rng.random()
    if final and roll < 0.15:
        name = rng.choice((*ATTRS, "*"))
        return f"@{name}"
    axis = rng.choices(
        (
            "", "descendant::", "following-sibling::",
            "preceding-sibling::", "following::", "preceding::",
            "parent::", "ancestor::", "self::",
        ),
        weights=(10, 3, 2, 2, 1, 1, 1, 1, 1),
    )[0]
    if axis in ("parent::", "ancestor::"):
        # node() on upward axes can reach the document node, which has
        # no relational representation; keep to element tests.
        test = rng.choice((*TAGS, "*"))
    else:
        test = rng.choices(
            (*TAGS, "*", "text()", "node()"),
            weights=(4, 4, 4, 4, 2, 1, 1),
        )[0]
    predicates = ""
    if test not in ("text()", "node()") or axis == "":
        while rng.random() < 0.35 and len(predicates) < 40:
            predicates += f"[{_random_predicate(rng)}]"
    return f"{axis}{test}{predicates}"


def _random_predicate(rng: random.Random) -> str:
    kind = rng.randint(0, 10)
    if kind == 0:
        return str(rng.randint(1, 4))
    if kind == 1:
        return "last()"
    if kind == 2:
        op = rng.choice(("<=", "<", ">=", ">", "=", "!="))
        return f"position() {op} {rng.randint(1, 4)}"
    if kind == 3:
        return rng.choice((*TAGS, "@" + rng.choice(ATTRS)))
    if kind == 4:
        op = rng.choice(("=", "!=", "<", ">"))
        return f"@{rng.choice(ATTRS)} {op} {rng.randint(0, 9)}"
    if kind == 5:
        return f"count({rng.choice(TAGS)}) {rng.choice(('=', '>'))} " \
               f"{rng.randint(0, 2)}"
    if kind == 6:
        inner = _random_predicate(rng)
        return f"not({inner})"
    if kind == 7:
        # contains/starts-with only against attributes and text nodes:
        # their stored values are exact string-values (elements store
        # direct text only; see DESIGN.md).
        fn = rng.choice(("contains", "starts-with"))
        target = rng.choice(("@" + rng.choice(ATTRS), "text()"))
        return f"{fn}({target}, '{rng.randint(0, 9)}')"
    if kind == 8:
        op = rng.choice(("=", "!=", "<", ">"))
        return f"text() {op} {rng.randint(0, 99)}"
    if kind == 9:
        # Nested relative path with its own filter.
        return (f"{rng.choice(TAGS)}/@{rng.choice(ATTRS)} "
                f"{rng.choice(('=', '!='))} {rng.randint(0, 9)}")
    op = rng.choice(("and", "or"))
    return (f"{_random_predicate(rng)} {op} "
            f"{_random_predicate(rng)}")


@settings(max_examples=120, deadline=None)
@given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
def test_translations_match_oracle_sqlite(doc_seed, query_seed):
    document = random_document(doc_seed, max_depth=4, max_children=3)
    xpath = random_query(random.Random(query_seed))
    want = oracle_identities(document, xpath)
    for encoding in ALL_ENCODINGS:
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document)
        try:
            got = store_identities(store, doc, xpath)
        except (TranslationError, UnsupportedXPathError):
            continue  # outside the encoding's translatable fragment
        assert got == want, (encoding, xpath)


@settings(max_examples=25, deadline=None)
@given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
def test_translations_match_oracle_minidb(doc_seed, query_seed):
    document = random_document(doc_seed, max_depth=3, max_children=3)
    xpath = random_query(random.Random(query_seed))
    want = oracle_identities(document, xpath)
    for encoding in ALL_ENCODINGS:
        store = XmlStore(backend="minidb", encoding=encoding)
        doc = store.load(document)
        try:
            got = store_identities(store, doc, xpath)
        except (TranslationError, UnsupportedXPathError):
            continue
        assert got == want, (encoding, xpath)


@settings(max_examples=40, deadline=None)
@given(
    doc_seed=st.integers(0, 10_000),
    query_seed=st.integers(0, 10_000),
    gap=st.sampled_from([4, 64]),
)
def test_gapped_stores_match_oracle(doc_seed, query_seed, gap):
    """Sparse numbering must not change any query result."""
    document = random_document(doc_seed, max_depth=4, max_children=3)
    xpath = random_query(random.Random(query_seed))
    want = oracle_identities(document, xpath)
    for encoding in ALL_ENCODINGS:
        store = XmlStore(backend="sqlite", encoding=encoding, gap=gap)
        doc = store.load(document)
        try:
            got = store_identities(store, doc, xpath)
        except (TranslationError, UnsupportedXPathError):
            continue
        assert got == want, (encoding, xpath, gap)


# -- differential fuzzing (repro.check.fuzz) --------------------------------
#
# The hypothesis tests above cover *static* stores; the fuzzer drives the
# same oracle through random update streams, auditing every encoding's
# structural invariants and cross-checking all stores in a cell against
# each other along the way.


@pytest.mark.fuzz_smoke
def test_fuzz_smoke_fixed_seed():
    """Fast fixed-seed fuzz: every encoding, sqlite, checked per-op."""
    from repro.check import FuzzConfig, run_fuzz

    report = run_fuzz(FuzzConfig(
        seeds=2, ops=12, backends=("sqlite",), gaps=(1, 4),
        check_every=1, queries_per_check=3,
    ))
    assert report.ok(), "\n".join(str(f) for f in report.failures)
    assert report.operations == 2 * 2 * 12


def test_fuzz_full_matrix_fixed_seed():
    """The acceptance matrix: 4 encodings x 2 backends x 3 gaps, 25 ops.

    Every one of the 24 (encoding, backend, gap) configurations sees the
    same seeded update stream; zero invariant violations and zero oracle
    mismatches are required.
    """
    from repro.check import FuzzConfig, run_fuzz

    report = run_fuzz(FuzzConfig(
        seeds=1, ops=25, backends=("sqlite", "minidb"),
        gaps=(1, 4, 64), check_every=5, queries_per_check=4,
    ))
    assert report.ok(), "\n".join(str(f) for f in report.failures)
    assert report.cells == 3
    assert report.operations == 3 * 25
