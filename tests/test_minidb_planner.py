"""Unit tests for the minidb planner (conjunct analysis, access paths)."""


from repro.minidb import MiniDb
from repro.minidb.planner import (
    choose_access_path,
    free_column_refs,
    split_conjuncts,
)
from repro.minidb.sql_parser import parse_sql
from repro.minidb.tables import HeapTable, TableIndex


def where_of(sql: str):
    return parse_sql(sql).where


class TestSplitConjuncts:
    def test_flattens_nested_ands(self):
        where = where_of("SELECT 1 FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert len(split_conjuncts(where)) == 3

    def test_or_is_one_conjunct(self):
        where = where_of("SELECT 1 FROM t WHERE a = 1 OR b = 2")
        assert len(split_conjuncts(where)) == 1

    def test_none_is_empty(self):
        assert split_conjuncts(None) == []


class TestFreeColumnRefs:
    def test_simple_refs(self):
        where = where_of("SELECT 1 FROM t WHERE t.a = u.b")
        refs = free_column_refs(where)
        assert ("t", "a") in refs and ("u", "b") in refs

    def test_subquery_bound_aliases_excluded(self):
        where = where_of(
            "SELECT 1 FROM t WHERE EXISTS "
            "(SELECT 1 FROM u WHERE u.x = t.y)"
        )
        refs = free_column_refs(where)
        assert ("t", "y") in refs
        assert ("u", "x") not in refs

    def test_function_args_walked(self):
        where = where_of("SELECT 1 FROM t WHERE LENGTH(t.a) > 2")
        assert ("t", "a") in free_column_refs(where)

    def test_in_list_walked(self):
        where = where_of("SELECT 1 FROM t WHERE t.a IN (t.b, 3)")
        refs = free_column_refs(where)
        assert ("t", "a") in refs and ("t", "b") in refs


def _table_with_indexes() -> HeapTable:
    table = HeapTable("t", ("a", "b", "c"), ("INTEGER",) * 3)
    table.add_index(TableIndex("ix_ab", table, (0, 1)))
    table.add_index(TableIndex("ix_c", table, (2,)))
    return table


def _conjuncts(sql: str):
    return split_conjuncts(where_of(sql))


class TestChooseAccessPath:
    def test_equality_prefix_chosen(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts("SELECT 1 FROM t WHERE t.a = 1 AND t.b = 2"),
            set(),
        )
        assert path.index is not None
        assert path.index.name == "ix_ab"
        assert len(path.eq_exprs) == 2
        assert path.residual == []

    def test_range_after_equality(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts("SELECT 1 FROM t WHERE t.a = 1 AND t.b > 5"),
            set(),
        )
        assert path.index.name == "ix_ab"
        assert len(path.eq_exprs) == 1
        assert path.lower and not path.upper

    def test_two_sided_range(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts(
                "SELECT 1 FROM t WHERE t.c >= 1 AND t.c < 9"
            ),
            set(),
        )
        assert path.index.name == "ix_c"
        assert path.lower and path.upper

    def test_in_list_probing(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts("SELECT 1 FROM t WHERE t.c IN (1, 2, 3)"),
            set(),
        )
        assert path.index.name == "ix_c"
        assert path.in_exprs is not None
        assert len(path.in_exprs) == 3

    def test_unusable_conjuncts_stay_residual(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts(
                "SELECT 1 FROM t WHERE t.a = 1 AND t.c + 1 = 2"
            ),
            set(),
        )
        assert path.index.name == "ix_ab"
        assert len(path.residual) == 1

    def test_no_index_match_full_scan(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts("SELECT 1 FROM t WHERE t.b = 1"),
            set(),
        )
        assert path.index is None
        assert len(path.residual) == 1

    def test_flipped_comparison_recognised(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts("SELECT 1 FROM t WHERE 5 = t.a"),
            set(),
        )
        assert path.index is not None
        assert path.index.name == "ix_ab"

    def test_join_conjunct_with_unbound_side_not_usable(self):
        table = _table_with_indexes()
        # u is not bound yet, so t.a = u.x cannot drive an index.
        path = choose_access_path(
            table, "t",
            _conjuncts("SELECT 1 FROM t WHERE t.a = u.x"),
            set(),  # u not in bound set
        )
        assert path.index is None

    def test_join_conjunct_with_bound_side_usable(self):
        table = _table_with_indexes()
        path = choose_access_path(
            table, "t",
            _conjuncts("SELECT 1 FROM t WHERE t.a = u.x"),
            {"u"},
        )
        assert path.index is not None
        assert path.index.name == "ix_ab"


class TestPlannerBehaviourEndToEnd:
    def test_index_nested_loop_join_reads_few_rows(self):
        db = MiniDb()
        db.execute("CREATE TABLE big (k INTEGER, v TEXT)")
        db.execute("CREATE INDEX ix_big_k ON big (k)")
        db.executemany(
            "INSERT INTO big VALUES (?, ?)",
            [(i, f"v{i}") for i in range(1000)],
        )
        db.execute("CREATE TABLE small (k INTEGER)")
        db.executemany(
            "INSERT INTO small VALUES (?)", [(5,), (500,)]
        )
        db.reset_stats()
        result = db.execute(
            "SELECT b.v FROM small s, big b WHERE b.k = s.k ORDER BY b.v"
        )
        assert [r[0] for r in result.rows] == ["v5", "v500"]
        # 2 small rows + 2 index probes — not 1000 reads.
        assert db.stats.rows_read < 20

    def test_range_scan_touches_only_matching_rows(self):
        db = MiniDb()
        db.execute("CREATE TABLE r (k INTEGER)")
        db.execute("CREATE INDEX ix_r ON r (k)")
        db.executemany("INSERT INTO r VALUES (?)",
                       [(i,) for i in range(500)])
        db.reset_stats()
        db.execute("SELECT k FROM r WHERE k >= 100 AND k < 110")
        assert db.stats.rows_read == 10
