"""Tests for repro.concurrent: latch, pool, write queue, and the
pooled backend serving N readers plus one writer."""

from __future__ import annotations

import random
import threading
import time
from pathlib import Path

import pytest

from repro.backends.pooled_sqlite import PooledSqliteBackend
from repro.backends.sqlite_backend import SqliteBackend
from repro.check import audit_store
from repro.concurrent import ConnectionPool, RWLatch
from repro.errors import (
    ConcurrencyError,
    PoolExhaustedError,
    StorageError,
    WriteQueueClosedError,
)
from repro.robust.retry import RetryPolicy
from repro.store import XmlStore
from repro.workload.mixer import ConcurrentWorkload
from repro.workload.queries import ORDERED_QUERIES, UNORDERED_QUERIES
from repro.workload.update_ops import make_fragment
from repro.xmldom import parse

from .conftest import ALL_ENCODINGS, BIB_XML


def _run_in_thread(target):
    """Run *target* in a thread; return (result, exception)."""
    box = {}

    def wrapper():
        try:
            box["result"] = target()
        except BaseException as exc:
            box["error"] = exc

    thread = threading.Thread(target=wrapper)
    thread.start()
    thread.join(30)
    assert not thread.is_alive(), "worker thread hung"
    return box.get("result"), box.get("error")


# -- RWLatch -------------------------------------------------------------


class TestRWLatch:
    def test_readers_share(self):
        latch = RWLatch()
        barrier = threading.Barrier(2, timeout=5)
        seen = []

        def reader():
            with latch.read():
                barrier.wait()  # both inside simultaneously
                seen.append(latch.active_readers)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert max(seen) == 2

    def test_writer_excludes_readers(self):
        latch = RWLatch()
        writer_in = threading.Event()
        release_writer = threading.Event()
        order = []

        def writer():
            with latch.write():
                writer_in.set()
                release_writer.wait(10)
                order.append("writer-out")

        def reader():
            writer_in.wait(10)
            with latch.read():
                order.append("reader-in")

        wt = threading.Thread(target=writer)
        rt = threading.Thread(target=reader)
        wt.start()
        rt.start()
        writer_in.wait(10)
        time.sleep(0.05)  # give the reader time to block (it must not)
        assert "reader-in" not in order
        release_writer.set()
        wt.join(10)
        rt.join(10)
        assert order == ["writer-out", "reader-in"]

    def test_writer_reentrant(self):
        latch = RWLatch()
        with latch.write():
            with latch.write():  # exclusive re-entry
                with latch.read():  # read under own exclusive hold
                    assert latch.held_exclusively_by_me()
        assert not latch.held_exclusively_by_me()

    def test_release_write_by_non_owner_raises(self):
        latch = RWLatch()
        with latch.write():
            _, error = _run_in_thread(latch.release_write)
            assert isinstance(error, RuntimeError)


# -- ConnectionPool ------------------------------------------------------


class _FakeConn:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestConnectionPool:
    def test_checkin_reuses_connection(self):
        pool = ConnectionPool(_FakeConn, capacity=4)
        with pool.connection() as first:
            pass
        with pool.connection() as second:
            assert second is first
        assert pool.created == 1
        assert pool.reused == 1

    def test_exhaustion_raises_after_timeout(self):
        pool = ConnectionPool(
            _FakeConn, capacity=1, acquire_timeout=0.05
        )
        pool.pin()  # the only connection, pinned to this thread
        _, error = _run_in_thread(pool.pin)
        assert isinstance(error, PoolExhaustedError)
        pool.unpin()
        # After unpinning the next checkout succeeds again.
        with pool.connection():
            pass

    def test_pinned_connection_serves_scoped_checkouts(self):
        pool = ConnectionPool(_FakeConn, capacity=2)
        pinned = pool.pin()
        with pool.connection() as conn:
            assert conn is pinned
        pool.unpin()

    def test_double_pin_raises(self):
        pool = ConnectionPool(_FakeConn, capacity=2)
        pool.pin()
        with pytest.raises(ConcurrencyError):
            pool.pin()
        pool.unpin()

    def test_close_drains_idle_connections(self):
        pool = ConnectionPool(_FakeConn, capacity=2)
        with pool.connection() as conn:
            pass
        pool.close()
        assert conn.closed
        with pytest.raises(ConcurrencyError):
            with pool.connection():
                pass  # pragma: no cover

    def test_checkin_after_close_closes_connection(self):
        pool = ConnectionPool(_FakeConn, capacity=2)
        conn = pool.pin()
        pool.close()
        pool.unpin()
        assert conn.closed


# -- PooledSqliteBackend -------------------------------------------------


class TestPooledSqliteBackend:
    def test_memory_path_rejected(self):
        with pytest.raises(StorageError):
            PooledSqliteBackend(":memory:")

    def test_transactions_are_thread_local(self, tmp_path):
        backend = PooledSqliteBackend(str(tmp_path / "p.db"))
        backend.execute("CREATE TABLE t (x INTEGER)")
        in_tx = threading.Event()
        finish = threading.Event()

        def open_transaction():
            with backend.transaction():
                backend.execute("INSERT INTO t VALUES (1)")
                in_tx.set()
                finish.wait(10)

        worker = threading.Thread(target=open_transaction)
        worker.start()
        assert in_tx.wait(10)
        # The worker's open transaction is invisible to this thread's
        # bookkeeping: we are at depth 0 and can run our own scope.
        assert backend._tx_depth == 0
        with backend.transaction():
            assert backend._tx_depth == 1
            backend.execute("SELECT count(*) FROM t")
        finish.set()
        worker.join(10)
        rows = backend.execute("SELECT count(*) FROM t").rows
        assert rows[0][0] == 1
        backend.close()

    def test_close_truncates_wal_and_is_idempotent(self, tmp_path):
        path = tmp_path / "p.db"
        backend = PooledSqliteBackend(str(path))
        backend.execute("CREATE TABLE t (x INTEGER)")
        backend.execute("INSERT INTO t VALUES (1)")
        backend.close()
        wal = Path(str(path) + "-wal")
        assert not wal.exists() or wal.stat().st_size == 0
        backend.close()  # second close is a no-op


def test_sqlite_close_truncates_wal_and_is_idempotent(tmp_path):
    path = tmp_path / "s.db"
    backend = SqliteBackend(str(path))
    backend.execute("CREATE TABLE t (x INTEGER)")
    backend.execute("INSERT INTO t VALUES (1)")
    backend.close()
    wal = Path(str(path) + "-wal")
    assert not wal.exists() or wal.stat().st_size == 0
    backend.close()  # second close is a no-op


# -- WriteQueue ----------------------------------------------------------


def _pooled_bib_store(tmp_path, encoding="global"):
    backend = PooledSqliteBackend(str(tmp_path / "wq.db"))
    store = XmlStore(backend=backend, encoding=encoding)
    doc = store.load(parse(BIB_XML))
    root = [
        row for row in store.fetch_children(doc, 0)
        if row["kind"] == "elem"
    ][0]["id"]
    return store, doc, root


class TestWriteQueue:
    def test_staged_batch_is_one_group_commit(self, tmp_path):
        store, doc, root = _pooled_bib_store(tmp_path)
        base = len(store.fetch_children(doc, root))
        queue = store.enable_write_queue(max_batch=8, autostart=False)
        futures = [
            queue.submit(
                lambda i=i: store.updates.insert(
                    doc, root, base + i, make_fragment("gc")
                )
            )
            for i in range(3)
        ]
        queue.start()
        for future in futures:
            future.result(timeout=30)
        assert queue.batches == 1
        assert queue.operations == 3
        assert queue.grouped_operations == 3
        assert len(store.fetch_children(doc, root)) == base + 3
        store.close()

    def test_failing_operation_is_isolated(self, tmp_path):
        store, doc, root = _pooled_bib_store(tmp_path)
        base = len(store.fetch_children(doc, root))
        queue = store.enable_write_queue(max_batch=8, autostart=False)

        def bad():
            raise ValueError("poisoned operation")

        good_before = queue.submit(
            lambda: store.updates.insert(
                doc, root, base, make_fragment("ok")
            )
        )
        poisoned = queue.submit(bad)
        good_after = queue.submit(
            lambda: store.updates.insert(
                doc, root, base + 1, make_fragment("ok")
            )
        )
        queue.start()
        good_before.result(timeout=30)
        good_after.result(timeout=30)
        with pytest.raises(ValueError):
            poisoned.result(timeout=30)
        # The batch rolled back and replayed individually: both good
        # inserts landed, the store audits clean.
        assert len(store.fetch_children(doc, root)) == base + 2
        assert audit_store(store) == []
        store.close()

    def test_closed_queue_rejects_submissions(self, tmp_path):
        store, doc, root = _pooled_bib_store(tmp_path)
        queue = store.enable_write_queue()
        queue.close()
        with pytest.raises(WriteQueueClosedError):
            queue.submit(lambda: None)
        # The store falls back to running updates on the caller.
        store.updates.insert(
            doc, root, len(store.fetch_children(doc, root)),
            make_fragment("direct"),
        )
        store.close()


# -- RetryPolicy jitter --------------------------------------------------


class TestRetryJitter:
    def test_seeded_backoff_is_reproducible(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        delays_a = [a.backoff_delay(n) for n in range(1, 6)]
        delays_b = [b.backoff_delay(n) for n in range(1, 6)]
        assert delays_a == delays_b
        c = RetryPolicy(seed=43)
        assert [c.backoff_delay(n) for n in range(1, 6)] != delays_a

    def test_injected_rng_is_honored(self):
        policy = RetryPolicy(rng=random.Random(7))
        reference = random.Random(7)
        base = min(
            policy.base_delay * policy.multiplier ** 2,
            policy.max_delay,
        )
        expected = base * (1.0 - policy.jitter * reference.random())
        assert policy.backoff_delay(3) == pytest.approx(expected)


# -- N readers + 1 writer stress ----------------------------------------


def _stress(store, seconds=0.15, readers=3):
    doc = store.load(parse(BIB_XML))
    workload = ConcurrentWorkload(
        store, doc, ORDERED_QUERIES + UNORDERED_QUERIES, seed=11
    )
    result = workload.run(readers, seconds, writer=True)
    assert result.read_errors == []
    assert result.write_error is None
    assert result.read_operations > 0
    assert audit_store(store) == []


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_stress_pooled_sqlite_with_write_queue(tmp_path, encoding):
    backend = PooledSqliteBackend(str(tmp_path / "stress.db"))
    store = XmlStore(backend=backend, encoding=encoding)
    store.enable_write_queue()
    try:
        _stress(store)
    finally:
        store.close()


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_stress_serialized_sqlite(encoding):
    store = XmlStore(backend="sqlite", encoding=encoding)
    try:
        _stress(store)
    finally:
        store.close()


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_stress_minidb(encoding):
    store = XmlStore(backend="minidb", encoding=encoding)
    try:
        _stress(store)
    finally:
        store.close()


# -- writer crash mid-batch ---------------------------------------------


@pytest.mark.skip_audit  # crashed stores can't be audited at teardown
def test_writer_crash_mid_batch_recovers_to_pre_batch_state():
    from repro.robust.crashtest import run_writer_crashtest

    report = run_writer_crashtest(
        seeds=1, batches=1, batch_size=3,
        encodings=("global",), crashes_per_batch=2,
    )
    assert report.ok(), [str(f) for f in report.failures]
    assert report.writer_batches == 1
    assert report.crashes >= 1
    assert report.recoveries == report.crashes
