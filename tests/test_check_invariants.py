"""The check subsystem: invariant auditor, fuzzer plumbing, bug fixes.

Covers the three bugs fixed alongside the subsystem (text-only insert
fragments, schema errors silently swallowed, sqlite's thread-bound
connection) plus fault-injection tests proving the auditor detects each
class of corruption it claims to.
"""

from __future__ import annotations

import threading

import pytest

from tests.conftest import ALL_ENCODINGS, BACKENDS, BIB_XML
from repro.backends.base import Backend, BackendResult
from repro.backends.minidb_backend import MiniDbBackend
from repro.backends.sqlite_backend import SqliteBackend
from repro.check import (
    FuzzConfig,
    assert_store_clean,
    audit_document,
    audit_store,
    run_fuzz,
)
from repro.cli import main
from repro.errors import StorageError, UpdateError, XmlSyntaxError
from repro.store import XmlStore
from repro.xmldom import parse_fragment, serialize
from repro.xmldom.dom import Comment, Element, ProcessingInstruction, Text


# -- bug 1: parse_fragment on non-element fragments ----------------------


class TestFragmentParsing:
    def test_element_fragment(self):
        element = parse_fragment("<x a='1'><y/></x>")
        assert isinstance(element, Element)
        assert element.tag == "x"
        assert element.parent is None

    def test_text_only_fragment(self):
        node = parse_fragment("plain text")
        assert isinstance(node, Text)
        assert node.content == "plain text"

    def test_text_fragment_preserves_whitespace_and_entities(self):
        node = parse_fragment("  a &amp; b  ")
        assert isinstance(node, Text)
        assert node.content == "  a & b  "

    def test_comment_fragment(self):
        node = parse_fragment("<!-- note -->")
        assert isinstance(node, Comment)
        assert node.content == " note "

    def test_pi_fragment(self):
        node = parse_fragment("<?target data?>")
        assert isinstance(node, ProcessingInstruction)
        assert node.target == "target"

    def test_empty_fragment_rejected(self):
        with pytest.raises(XmlSyntaxError, match="empty fragment"):
            parse_fragment("   ")

    def test_multi_rooted_fragment_rejected(self):
        with pytest.raises(XmlSyntaxError, match="2 top-level nodes"):
            parse_fragment("<a/><b/>")

    def test_mixed_multi_root_message_names_shapes(self):
        with pytest.raises(XmlSyntaxError, match="one at a time"):
            parse_fragment("text<a/>")

    def test_document_parse_still_rejects_top_level_text(self):
        from repro.xmldom import parse

        with pytest.raises(XmlSyntaxError, match="outside the root"):
            parse("<a/>trailing")

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_insert_text_fragment_string(self, encoding):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load("<r><a>one</a></r>")
        report = store.updates.insert(doc, 2, 1, " two")
        assert report.inserted == 1
        assert store.query_values("/r/a/text()", doc) == ["one", " two"]
        # The direct-text cache on <a> must have been refreshed too.
        assert store.query_values("/r/a", doc) == ["one two"]

    def test_insert_multi_rooted_string_raises_update_error(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load("<r/>")
        with pytest.raises(UpdateError, match="cannot parse insert"):
            store.updates.insert(doc, 1, 0, "<a/><b/>")

    def test_cli_insert_text_fragment(self, tmp_path, capsys):
        db = str(tmp_path / "t.db")
        xml = tmp_path / "d.xml"
        xml.write_text("<r><a>hi</a></r>")
        assert main(["load", str(xml), "--db", db]) == 0
        assert main(
            ["insert", "bye", "--db", db, "--parent", "/r/a"]
        ) == 0
        assert main(["check", "--db", db]) == 0


# -- bug 2: schema bootstrap must not swallow real DDL errors ------------


class _FailingDDLBackend(Backend):
    """Backend whose CREATE statements always fail (e.g. no permission)."""

    name = "failing-ddl"

    def execute(self, sql, params=()):
        if sql.lstrip().upper().startswith("CREATE"):
            raise RuntimeError("disk I/O error")
        return BackendResult(rows=[], rowcount=0)

    def executemany(self, sql, seq_of_params):
        return BackendResult(rows=[], rowcount=0)

    def rows_written(self):
        return 0

    def begin(self):
        pass

    def commit_transaction(self):
        pass

    def rollback(self):
        pass


class TestSchemaBootstrap:
    def test_ddl_failure_surfaces_as_storage_error(self):
        with pytest.raises(StorageError, match="disk I/O error"):
            XmlStore(backend=_FailingDDLBackend(), encoding="dewey")

    def test_sqlite_backend_reuse_is_fine(self):
        backend = SqliteBackend(None)
        first = XmlStore(backend=backend, encoding="global")
        doc = first.load(BIB_XML)
        second = XmlStore(backend=backend, encoding="global")
        assert second.document_info(doc).node_count > 0

    def test_minidb_backend_reuse_is_fine(self):
        backend = MiniDbBackend()
        first = XmlStore(backend=backend, encoding="local")
        doc = first.load(BIB_XML)
        second = XmlStore(backend=backend, encoding="local")
        assert second.document_info(doc).node_count > 0

    def test_sqlite_uses_if_not_exists(self):
        assert SqliteBackend.supports_if_not_exists is True
        from repro.core.encodings import get_encoding

        statements = get_encoding("dewey").create_statements(True)
        assert all("IF NOT EXISTS" in s for s in statements)


# -- bug 3: sqlite connection shared across threads ----------------------


class TestSqliteThreading:
    def test_queries_from_worker_thread(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(BIB_XML)
        errors: list[Exception] = []

        def worker():
            try:
                for _ in range(20):
                    titles = store.query_values("//book/title", doc)
                    assert len(titles) == 3
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

    def test_updates_from_worker_thread(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load("<r><a/></r>")
        errors: list[Exception] = []

        def worker(tag):
            try:
                for i in range(5):
                    store.updates.insert(doc, 1, 0, f"<{tag} n='{i}'/>")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tag,))
            for tag in ("b", "c")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert len(store.query("/r/*", doc)) == 11


# -- the auditor: clean stores pass ---------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_audit_clean_after_updates(backend, encoding):
    store = XmlStore(backend=backend, encoding=encoding, gap=4)
    doc = store.load(BIB_XML)
    store.updates.insert(doc, 2, 0, "<note>new</note>")
    store.updates.insert(doc, 3, 1, " (2nd ed)")
    store.updates.delete(doc, store.query("//book[3]", doc)[0].node_id)
    store.updates.set_text(doc, 3, "TCP/IP")
    store.updates.set_attribute(doc, 2, "isbn", "0-201")
    store.updates.rename(doc, 2, "textbook")
    assert audit_store(store) == []
    assert_store_clean(store)  # must not raise


@pytest.mark.skip_audit
def test_audit_multiple_documents_and_stray_rows():
    store = XmlStore(backend="sqlite", encoding="dewey")
    a = store.load("<a><b/></a>")
    b = store.load("<x>t</x>")
    assert audit_store(store) == []
    store.backend.execute("DELETE FROM documents WHERE doc = ?", (a,))
    codes = [v.code for v in audit_store(store)]
    assert "catalog-missing-doc" in codes
    assert store.document_info(b).node_count == 2


# -- the auditor: fault injection -----------------------------------------


@pytest.mark.skip_audit
class TestAuditorDetectsCorruption:
    def _store(self, encoding, xml="<r><a>x</a><b><c/></b></r>"):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(xml)
        assert audit_document(store, doc) == []
        return store, doc

    def _codes(self, store, doc):
        return {v.code for v in audit_document(store, doc)}

    def test_global_degenerate_interval(self):
        store, doc = self._store("global")
        store.backend.execute(
            "UPDATE node_global SET endpos = pos - 1 WHERE id = 1"
        )
        assert "global-interval-degenerate" in self._codes(store, doc)

    def test_global_sibling_overlap(self):
        store, doc = self._store("global")
        row = store.fetch_node(doc, 4)  # <b>, second child of root
        store.backend.execute(
            "UPDATE node_global SET pos = ? WHERE id = 4",
            (row["pos"] - 2,),
        )
        codes = self._codes(store, doc)
        assert codes & {"global-sibling-overlap", "global-pos-duplicate"}

    def test_global_containment(self):
        store, doc = self._store("global")
        store.backend.execute(
            "UPDATE node_global SET pos = 999, endpos = 1000 "
            "WHERE id = 5"
        )
        assert "global-containment" in self._codes(store, doc)

    def test_local_duplicate_slot(self):
        store, doc = self._store("local")
        row = store.fetch_node(doc, 2)
        store.backend.execute(
            "UPDATE node_local SET lpos = ? WHERE id = 4",
            (row["lpos"],),
        )
        assert "local-lpos-duplicate" in self._codes(store, doc)

    def test_local_nonpositive_slot(self):
        store, doc = self._store("local")
        store.backend.execute(
            "UPDATE node_local SET lpos = 0 WHERE id = 2"
        )
        assert "local-lpos-nonpositive" in self._codes(store, doc)

    def test_dewey_parent_mismatch(self):
        store, doc = self._store("dewey")
        store.backend.execute(
            "UPDATE node_dewey SET parent = 4 WHERE id = 3"
        )
        codes = self._codes(store, doc)
        assert "dewey-parent-mismatch" in codes

    def test_dewey_corrupt_key(self):
        store, doc = self._store("dewey")
        store.backend.execute(
            "UPDATE node_dewey SET dkey = ? WHERE id = 2",
            (b"\xff",),  # truncated multi-byte component
        )
        assert "dewey-key-corrupt" in self._codes(store, doc)

    def test_ordpath_duplicate_key(self):
        store, doc = self._store("ordpath")
        row = store.fetch_node(doc, 2)
        store.backend.execute(
            "UPDATE node_ordpath SET okey = ? WHERE id = 4",
            (row["okey"],),
        )
        assert "ordpath-key-duplicate" in self._codes(store, doc)

    def test_orphan_node(self):
        store, doc = self._store("dewey")
        store.backend.execute(
            "UPDATE node_dewey SET parent = 777 WHERE id = 3"
        )
        codes = self._codes(store, doc)
        assert "store-orphan-node" in codes
        assert "store-unreachable" in codes

    def test_depth_mismatch(self):
        store, doc = self._store("global")
        store.backend.execute(
            "UPDATE node_global SET depth = 9 WHERE id = 2"
        )
        assert "store-depth-mismatch" in self._codes(store, doc)

    def test_stale_direct_text(self):
        store, doc = self._store("local")
        store.backend.execute(
            "UPDATE node_local SET value = 'stale' "
            "WHERE id = 2 AND kind = 'elem'"
        )
        assert "store-direct-text-stale" in self._codes(store, doc)

    def test_attribute_orphan_and_duplicate(self):
        store, doc = self._store(
            "dewey", xml="<r><a k='v'>x</a></r>"
        )
        store.backend.execute(
            "INSERT INTO attr_dewey VALUES (?, ?, ?, ?)",
            (doc, 999, "k", "v"),
        )
        store.backend.execute(
            "INSERT INTO attr_dewey VALUES (?, ?, ?, ?)",
            (doc, 2, "k", "v2"),
        )
        codes = self._codes(store, doc)
        assert "store-attr-orphan" in codes
        assert "store-attr-duplicate" in codes

    def test_catalog_counts(self):
        store, doc = self._store("global")
        store.backend.execute(
            "UPDATE documents SET node_count = 99, next_id = 1, "
            "max_depth = 0 WHERE doc = ?",
            (doc,),
        )
        codes = self._codes(store, doc)
        assert {"catalog-node-count", "catalog-next-id",
                "catalog-max-depth"} <= codes

    def test_assert_store_clean_raises_with_listing(self):
        store, doc = self._store("global")
        store.backend.execute(
            "UPDATE node_global SET endpos = 0 WHERE id = 1"
        )
        with pytest.raises(AssertionError, match="global-interval"):
            assert_store_clean(store, context="fault injection")

    def test_cli_check_reports_violations(self, tmp_path, capsys):
        db = str(tmp_path / "c.db")
        xml = tmp_path / "d.xml"
        xml.write_text("<r><a/></r>")
        assert main(["load", str(xml), "--db", db,
                     "--encoding", "global"]) == 0
        assert main(["check", "--db", db]) == 0
        assert "0 violations" in capsys.readouterr().out
        assert main(["sql", "UPDATE node_global SET endpos = 0 "
                     "WHERE id = 1", "--db", db]) == 0
        assert main(["check", "--db", db]) == 1
        assert "global-interval-degenerate" in capsys.readouterr().out


# -- the fuzzer: plumbing -------------------------------------------------


def test_fuzz_failure_repro_command():
    from repro.check import FuzzFailure

    failure = FuzzFailure(
        seed=7, gap=4, backend="minidb", encoding="ordpath",
        op_index=12, op="delete node 9", kind="invariant",
        detail="boom",
    )
    command = failure.repro_command()
    assert "--base-seed 7" in command
    assert "--ops 12" in command
    assert "--gaps 4" in command
    assert "--encodings ordpath" in command
    assert "--backends minidb" in command
    assert "--check-every 1" in command
    assert "boom" in str(failure)


@pytest.mark.skip_audit
def test_fuzz_detects_injected_corruption(monkeypatch):
    """A store that silently corrupts order data must be caught."""
    from repro.core.updates import UpdateManager

    original = UpdateManager.set_text

    def corrupting_set_text(self, doc, element_id, text):
        report = original(self, doc, element_id, text)
        if self.store.encoding.name == "global":
            self.store.backend.execute(
                "UPDATE node_global SET pos = pos + 500 "
                "WHERE doc = ? AND id = ?",
                (doc, element_id),
            )
        return report

    monkeypatch.setattr(UpdateManager, "set_text", corrupting_set_text)
    report = run_fuzz(FuzzConfig(
        seeds=3, ops=20, encodings=("global",),
        backends=("sqlite",), gaps=(1,), queries_per_check=2,
    ))
    assert not report.ok()
    failure = report.failures[0]
    assert failure.kind in ("invariant", "crash")
    assert "repro fuzz" in failure.repro_command()


@pytest.mark.skip_audit
def test_fuzz_minimizes_with_coarse_checking(monkeypatch):
    """check_every > 1 failures are replayed down to the exact op."""
    from repro.core.updates import UpdateManager

    original = UpdateManager.rename

    def corrupting_rename(self, doc, element_id, tag):
        report = original(self, doc, element_id, tag)
        self.store.backend.execute(
            f"UPDATE {self.store.node_table} SET depth = depth + 7 "
            f"WHERE doc = ? AND id = ?",
            (doc, element_id),
        )
        return report

    monkeypatch.setattr(UpdateManager, "rename", corrupting_rename)
    report = run_fuzz(FuzzConfig(
        seeds=4, ops=20, encodings=("dewey",), backends=("sqlite",),
        gaps=(1,), check_every=10, queries_per_check=1,
    ))
    assert not report.ok()
    failure = report.failures[0]
    # Minimization replays with per-op checks: the reported op must be
    # the corrupting rename itself, not the later coarse checkpoint.
    assert "rename" in failure.op
    assert failure.kind == "invariant"


def test_reconstruct_with_ids_round_trip():
    from repro.core.reconstruct import reconstruct_document_with_ids

    store = XmlStore(backend="sqlite", encoding="ordpath")
    doc = store.load(BIB_XML)
    tree, id_map = reconstruct_document_with_ids(store, doc)
    assert serialize(tree) == BIB_XML
    ids = sorted(id_map.values())
    assert ids == list(range(1, store.document_info(doc).node_count + 1))
