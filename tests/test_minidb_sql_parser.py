"""Tests for the minidb SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.minidb.sql_ast import (
    Binary,
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Exists,
    FunctionExpr,
    InList,
    InSelect,
    Insert,
    IsNull,
    Literal,
    Param,
    ScalarSubquery,
    Star,
    SubquerySource,
    TableSource,
    Union_,
    Unary,
    Update,
)
from repro.minidb.sql_lexer import tokenize_sql
from repro.minidb.sql_parser import parse_sql


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize_sql("select From WHERE")]
        assert kinds == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        token = tokenize_sql("myTable")[0]
        assert token.kind == "ident"
        assert token.value == "myTable"

    def test_string_with_escaped_quote(self):
        token = tokenize_sql("'it''s'")[0]
        assert token.value == "it's"

    def test_numbers(self):
        tokens = tokenize_sql("1 2.5 1e3")
        assert [t.value for t in tokens] == ["1", "2.5", "1e3"]

    def test_params_and_operators(self):
        kinds = [t.kind for t in tokenize_sql("a <> ? <= >= ||")]
        assert kinds == ["ident", "<>", "param", "<=", ">=", "||"]

    def test_line_comments_skipped(self):
        tokens = tokenize_sql("SELECT 1 -- the one\n, 2")
        assert len(tokens) == 4

    def test_quoted_identifier(self):
        token = tokenize_sql('"order"')[0]
        assert token.kind == "ident"
        assert token.value == "order"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize_sql("'open")

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize_sql("SELECT $x")


class TestDdl:
    def test_create_table(self):
        statement = parse_sql(
            "CREATE TABLE t (a INTEGER, b TEXT, c REAL, d BLOB)"
        )
        assert isinstance(statement, CreateTable)
        assert [c.name for c in statement.columns] == list("abcd")
        assert [c.type for c in statement.columns] == [
            "INTEGER", "TEXT", "REAL", "BLOB",
        ]

    def test_create_table_if_not_exists(self):
        statement = parse_sql(
            "CREATE TABLE IF NOT EXISTS t (a INTEGER)"
        )
        assert statement.if_not_exists

    def test_create_index(self):
        statement = parse_sql("CREATE INDEX ix ON t (a, b)")
        assert isinstance(statement, CreateIndex)
        assert statement.columns == ("a", "b")
        assert not statement.unique

    def test_create_unique_index(self):
        statement = parse_sql("CREATE UNIQUE INDEX ux ON t (a)")
        assert statement.unique

    def test_drop_table(self):
        statement = parse_sql("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTable)
        assert statement.if_exists


class TestDml:
    def test_insert_with_params(self):
        statement = parse_sql("INSERT INTO t VALUES (?, ?, 'x')")
        assert isinstance(statement, Insert)
        assert statement.values[0][0] == Param(0)
        assert statement.values[0][1] == Param(1)
        assert statement.values[0][2] == Literal("x")

    def test_insert_with_columns(self):
        statement = parse_sql("INSERT INTO t (a, b) VALUES (1, 2)")
        assert statement.columns == ("a", "b")

    def test_insert_multiple_rows(self):
        statement = parse_sql("INSERT INTO t VALUES (1), (2), (3)")
        assert len(statement.values) == 3

    def test_update(self):
        statement = parse_sql("UPDATE t SET a = a + 1 WHERE b = ?")
        assert isinstance(statement, Update)
        assert statement.assignments[0][0] == "a"
        assert isinstance(statement.where, Binary)

    def test_delete(self):
        statement = parse_sql("DELETE FROM t WHERE a IS NULL")
        assert isinstance(statement, Delete)
        assert isinstance(statement.where, IsNull)


class TestSelect:
    def test_star(self):
        statement = parse_sql("SELECT * FROM t")
        assert statement.items == (Star(),)
        assert statement.from_items[0].source == TableSource("t")

    def test_qualified_star(self):
        statement = parse_sql("SELECT t.* FROM t")
        assert statement.items == (Star("t"),)

    def test_aliases(self):
        statement = parse_sql("SELECT a AS x, b y FROM t u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.from_items[0].alias == "u"

    def test_comma_join(self):
        statement = parse_sql("SELECT 1 FROM a, b, c")
        assert [f.alias for f in statement.from_items] == ["a", "b", "c"]

    def test_inner_join_on(self):
        statement = parse_sql(
            "SELECT 1 FROM a JOIN b ON a.x = b.x"
        )
        assert statement.from_items[1].join_type == "inner"
        assert statement.from_items[1].on is not None

    def test_left_join(self):
        statement = parse_sql(
            "SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x"
        )
        assert statement.from_items[1].join_type == "left"

    def test_derived_table(self):
        statement = parse_sql("SELECT d.a FROM (SELECT a FROM t) d")
        assert isinstance(statement.from_items[0].source, SubquerySource)

    def test_where_precedence(self):
        statement = parse_sql(
            "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3"
        )
        assert statement.where.op == "OR"
        assert statement.where.right.op == "AND"

    def test_not(self):
        statement = parse_sql("SELECT 1 FROM t WHERE NOT a = 1")
        assert isinstance(statement.where, Unary)
        assert statement.where.op == "NOT"

    def test_between_desugars(self):
        statement = parse_sql("SELECT 1 FROM t WHERE a BETWEEN 2 AND 5")
        where = statement.where
        assert where.op == "AND"
        assert where.left.op == ">="
        assert where.right.op == "<="

    def test_in_list(self):
        statement = parse_sql("SELECT 1 FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(statement.where, InList)
        assert len(statement.where.items) == 3

    def test_not_in(self):
        statement = parse_sql("SELECT 1 FROM t WHERE a NOT IN (1)")
        assert statement.where.negated

    def test_in_select(self):
        statement = parse_sql(
            "SELECT 1 FROM t WHERE a IN (SELECT b FROM u)"
        )
        assert isinstance(statement.where, InSelect)

    def test_exists(self):
        statement = parse_sql(
            "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)"
        )
        assert isinstance(statement.where, Exists)

    def test_scalar_subquery(self):
        statement = parse_sql(
            "SELECT (SELECT COUNT(*) FROM u) FROM t"
        )
        assert isinstance(statement.items[0].expr, ScalarSubquery)

    def test_like(self):
        statement = parse_sql("SELECT 1 FROM t WHERE a LIKE 'x%'")
        assert statement.where.op == "LIKE"

    def test_cast(self):
        statement = parse_sql("SELECT CAST(a AS REAL) FROM t")
        assert statement.items[0].expr.target == "REAL"

    def test_functions(self):
        statement = parse_sql("SELECT COUNT(*), MAX(a), length(b) FROM t")
        count, mx, length = [i.expr for i in statement.items]
        assert count == FunctionExpr("count", star=True)
        assert mx.name == "max"
        assert length.name == "length"

    def test_group_by_having(self):
        statement = parse_sql(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_by_limit(self):
        statement = parse_sql(
            "SELECT a FROM t ORDER BY a DESC, b LIMIT 5"
        )
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit == Literal(5)

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_union_all(self):
        statement = parse_sql(
            "SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY 1"
        )
        assert isinstance(statement, Union_)
        assert statement.all
        assert len(statement.arms) == 2

    def test_union_distinct(self):
        statement = parse_sql("SELECT a FROM t UNION SELECT a FROM u")
        assert not statement.all

    def test_mixed_union_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql(
                "SELECT 1 UNION SELECT 2 UNION ALL SELECT 3"
            )

    def test_param_numbering_in_source_order(self):
        statement = parse_sql(
            "SELECT ? FROM t WHERE a = ? AND b = ?"
        )
        assert statement.items[0].expr == Param(0)
        assert statement.where.left.right == Param(1)
        assert statement.where.right.right == Param(2)

    def test_negative_literal_folded(self):
        statement = parse_sql("SELECT -5 FROM t")
        assert statement.items[0].expr == Literal(-5)

    def test_trailing_semicolon_ok(self):
        parse_sql("SELECT 1;")

    def test_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT FROM WHERE")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELEC 1")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT 1 2")  # a number cannot be an alias
