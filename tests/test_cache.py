"""Plan/catalog/result caching: epoch invalidation and satellites.

Covers the :mod:`repro.cache` layer itself (LRU mechanics, the
refuse-stale-put race rule), its wiring through :class:`XmlStore` and
the write queue, the deepening-insert regression (a warmed plan whose
``max_depth`` bound went stale must never drop nodes), the statement-
verb ``rows_written`` classification, the slow-log short-circuit, and
the cache-twin mode of the differential fuzzer.
"""

from __future__ import annotations

import threading

import pytest

from tests.conftest import ALL_ENCODINGS, BACKENDS
from repro.backends.base import is_write_statement
from repro.backends.pooled_sqlite import PooledSqliteBackend
from repro.backends.sqlite_backend import SqliteBackend
from repro.cache import StoreCache, cache_enabled_from_env
from repro.store import XmlStore

SHALLOW = "<r><a><b>x</b></a><a><b>y</b></a></r>"
DEEP_FRAGMENT = "<c><d><e><f>deep</f></e></d></c>"


# -- the cache object itself ---------------------------------------------


def test_lru_eviction_and_counters():
    cache = StoreCache(plan_capacity=2)
    epoch = cache.current_epoch()
    cache.put_plan("a", 1, epoch)
    cache.put_plan("b", 2, epoch)
    cache.put_plan("c", 3, epoch)  # evicts "a"
    assert cache.get_plan("a") is None
    assert cache.get_plan("b") == 2
    assert cache.get_plan("c") == 3
    stats = cache.stats()["layers"]["plan"]
    assert stats["evictions"] == 1
    assert stats["size"] == 2
    assert stats["hits"] == 2 and stats["misses"] == 1


def test_bump_clears_every_layer_and_advances_epoch():
    cache = StoreCache()
    epoch = cache.current_epoch()
    cache.put_plan("p", 1, epoch)
    cache.put_catalog("c", 2, epoch)
    cache.put_result("r", 3, epoch)
    cache.bump()
    assert cache.current_epoch() == epoch + 1
    assert cache.get_plan("p") is None
    assert cache.get_catalog("c") is None
    assert cache.get_result("r") is None
    layers = cache.stats()["layers"]
    assert all(v["invalidations"] == 1 for v in layers.values())


def test_put_with_stale_epoch_is_refused():
    """The read-during-write race: a value computed from pre-commit
    state arrives after the writer's bump and must not be stored."""
    cache = StoreCache()
    epoch = cache.current_epoch()
    cache.bump()  # the "writer" commits and invalidates
    assert cache.put_plan("p", "stale", epoch) is False
    assert cache.get_plan("p") is None
    # A put with the fresh epoch is accepted.
    assert cache.put_plan("p", "fresh", cache.current_epoch()) is True
    assert cache.get_plan("p") == "fresh"


def test_disabled_cache_bump_is_inert():
    cache = StoreCache(enabled=False)
    cache.bump()
    assert cache.current_epoch() == 0


def test_env_escape_hatch(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert cache_enabled_from_env() is True
    for value in ("off", "0", "false", "NO", " Disabled "):
        monkeypatch.setenv("REPRO_CACHE", value)
        assert cache_enabled_from_env() is False
    monkeypatch.setenv("REPRO_CACHE", "on")
    assert cache_enabled_from_env() is True


def test_store_honors_env_and_explicit_knob(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert XmlStore().cache.enabled is False
    assert XmlStore(cache=True).cache.enabled is True
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert XmlStore().cache.enabled is True
    assert XmlStore(cache=False).cache.enabled is False


# -- store wiring ---------------------------------------------------------


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_repeated_query_hits_every_layer(encoding):
    store = XmlStore(encoding=encoding, cache=True)
    doc = store.load(SHALLOW)
    first = [i.identity() for i in store.query("//b", doc)]
    second = [i.identity() for i in store.query("//b", doc)]
    assert first == second and len(first) == 2
    layers = store.cache.stats()["layers"]
    assert layers["result"]["hits"] >= 1
    # The second query was served from the result layer; the plan and
    # catalog layers were hit when the first query re-validated.
    store.translate("//b", doc)
    layers = store.cache.stats()["layers"]
    assert layers["plan"]["hits"] >= 1
    assert layers["catalog"]["hits"] >= 1


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_deepening_insert_returns_new_nodes(encoding, backend):
    """Regression: warm every cache layer, then insert a fragment
    deeper than ``document_info.max_depth``.  Local's depth-bounded
    ``//`` expansion silently drops the new nodes if the stale plan
    (or stale catalogue row) survives the insert."""
    store = XmlStore(backend=backend, encoding=encoding, cache=True)
    doc = store.load(SHALLOW)
    old_depth = store.document_info(doc).max_depth
    # Warm: plans + results for the exact queries re-run below.
    assert store.query("//f", doc) == []
    assert store.query("//*", doc) != []
    store.query("/r/a/b/text()", doc)

    store.updates.insert(doc, 2, 0, DEEP_FRAGMENT)

    info = store.document_info(doc)
    assert info.max_depth > old_depth
    got = [i.value for i in store.query("//f", doc)]
    assert got == ["deep"], (
        f"{encoding}/{backend}: stale depth-bounded plan dropped the "
        f"deepened nodes: {got}"
    )
    # Byte-identical to a caching-off store replaying the same ops.
    twin = XmlStore(backend=backend, encoding=encoding, cache=False)
    twin_doc = twin.load(SHALLOW)
    twin.updates.insert(twin_doc, 2, 0, DEEP_FRAGMENT)
    for xpath in ("//f", "//*", "/r/a/b/text()", "//e/f/text()"):
        got = [(i.kind, i.node_id, i.label, i.value)
               for i in store.query(xpath, doc)]
        want = [(i.kind, i.node_id, i.label, i.value)
                for i in twin.query(xpath, twin_doc)]
        assert got == want, (encoding, backend, xpath)


def test_every_update_kind_bumps_the_epoch():
    store = XmlStore(cache=True)
    doc = store.load(SHALLOW)

    def epoch() -> int:
        return store.cache.current_epoch()

    before = epoch()
    store.updates.insert(doc, 1, 0, "<z/>")
    after_insert = epoch()
    assert after_insert > before
    store.updates.set_text(doc, 2, "new")
    assert epoch() > after_insert
    before = epoch()
    store.updates.rename(doc, 2, "aa")
    assert epoch() > before
    before = epoch()
    store.updates.set_attribute(doc, 2, "k", "v")
    assert epoch() > before
    before = epoch()
    store.updates.delete(doc, 2)
    assert epoch() > before
    before = epoch()
    store.load("<other/>")
    assert epoch() > before
    before = epoch()
    store.delete_document(doc)
    assert epoch() > before


def test_delete_document_invalidates_cached_results():
    store = XmlStore(cache=True)
    doc = store.load(SHALLOW)
    assert len(store.query("//b", doc)) == 2
    store.delete_document(doc)
    from repro.errors import StorageError

    with pytest.raises(StorageError):
        store.query("//b", doc)


def test_result_cache_hands_out_fresh_lists():
    store = XmlStore(cache=True)
    doc = store.load(SHALLOW)
    first = store.query("//b", doc)
    first.clear()  # caller-side mutation must not poison the cache
    assert len(store.query("//b", doc)) == 2


def test_cache_off_store_caches_nothing():
    store = XmlStore(cache=False)
    doc = store.load(SHALLOW)
    store.query("//b", doc)
    store.query("//b", doc)
    stats = store.cache.stats()
    assert all(
        layer["size"] == 0 and layer["hits"] == 0
        for layer in stats["layers"].values()
    )


def test_write_queue_commit_bumps_epoch():
    store = XmlStore(cache=True)
    doc = store.load(SHALLOW)
    store.query("//b", doc)  # warm
    store.enable_write_queue()
    try:
        before = store.cache.current_epoch()
        store.updates.insert(doc, 1, 0, "<z>q</z>")
        assert store.cache.current_epoch() > before
        assert len(store.query("//z", doc)) == 1
    finally:
        store.close()


def test_pooled_backend_concurrent_queries_stay_correct(tmp_path):
    """Readers on pooled per-thread connections share one epoch; a
    writer's inserts must become visible to every thread's queries."""
    backend = PooledSqliteBackend(str(tmp_path / "cache.db"))
    store = XmlStore(backend=backend, encoding="dewey", cache=True)
    doc = store.load(SHALLOW)
    errors: list[str] = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            items = store.query("//b", doc)
            if not 2 <= len(items) <= 10:
                errors.append(f"saw {len(items)} <b> nodes")
                return

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(8):
            store.updates.insert(doc, 1, 0, "<b>w</b>")
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors, errors
    assert len(store.query("//b", doc)) == 10
    store.close()


# -- satellite: statement-verb write classification -----------------------


def test_is_write_statement_classifies_by_verb():
    assert is_write_statement("INSERT INTO t VALUES (1)")
    assert is_write_statement("  update t set x = 1")
    assert is_write_statement("DELETE FROM t")
    assert is_write_statement("REPLACE INTO t VALUES (1)")
    assert is_write_statement("-- comment\nINSERT INTO t VALUES (1)")
    assert not is_write_statement("SELECT * FROM t")
    assert not is_write_statement("CREATE TABLE t (x)")
    assert not is_write_statement("PRAGMA journal_mode=WAL")
    assert not is_write_statement("ANALYZE")
    assert not is_write_statement("-- only a comment")
    assert not is_write_statement("")


def test_rows_written_counts_dml_not_row_returning_reads(tmp_path):
    for backend in (
        SqliteBackend(),
        PooledSqliteBackend(str(tmp_path / "w.db")),
    ):
        backend.execute("CREATE TABLE t (x INTEGER)")
        backend.execute("INSERT INTO t VALUES (1)")
        backend.execute("INSERT INTO t VALUES (2)")
        assert backend.rows_written() == 2
        # Reads never count, however many rows they produce.
        backend.execute("SELECT * FROM t")
        assert backend.rows_written() == 2
        # A row-producing write still counts (sqlite >= 3.35).
        import sqlite3

        if sqlite3.sqlite_version_info >= (3, 35):
            result = backend.execute(
                "UPDATE t SET x = x + 1 RETURNING x"
            )
            assert result.rows  # the old heuristic saw rows -> skipped
            assert backend.rows_written() == 4
        backend.close()


# -- satellite: slow-log short-circuit ------------------------------------


def test_slowlog_below_threshold_records_nothing():
    from repro.obs import disable_slow_log, enable_slow_log

    store = XmlStore(cache=False)
    doc = store.load(SHALLOW)
    log = enable_slow_log(threshold_ms=10_000.0)
    try:
        for _ in range(5):
            store.query("//b", doc)
        assert log.entries() == []
    finally:
        disable_slow_log()


def test_slowlog_above_threshold_still_records_breakdown():
    from repro.obs import disable_slow_log, enable_slow_log

    store = XmlStore(cache=False)
    doc = store.load(SHALLOW)
    log = enable_slow_log(threshold_ms=0.0)
    try:
        store.query("//b", doc)
        entries = log.entries()
        assert len(entries) == 1
        assert entries[0].xpath == "//b"
        assert "execute" in entries[0].breakdown_ms
    finally:
        disable_slow_log()


# -- the fuzzer's cache-twin mode -----------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_fuzz_cache_twin_fixed_seeds(backend):
    from repro.check import FuzzConfig, run_fuzz

    report = run_fuzz(FuzzConfig(
        seeds=2, ops=8, encodings=ALL_ENCODINGS,
        backends=(backend,), gaps=(1,), check_every=4,
        queries_per_check=3, cache_twin=True,
    ))
    assert report.ok(), "\n".join(str(f) for f in report.failures)


@pytest.mark.skip_audit
def test_fuzz_cache_twin_catches_missing_invalidation(monkeypatch):
    """Sanity check that the harness actually detects stale caches: a
    store whose epoch never advances must fail the battery."""
    from repro.cache.lru import StoreCache
    from repro.check import FuzzConfig, run_fuzz

    monkeypatch.setattr(StoreCache, "bump", lambda self: None)
    report = run_fuzz(FuzzConfig(
        seeds=3, ops=12, encodings=("local",),
        backends=("sqlite",), gaps=(1,), check_every=2,
        queries_per_check=3, cache_twin=True,
    ))
    assert not report.ok()
    kinds = {failure.kind for failure in report.failures}
    # Stale state surfaces as a twin mismatch, an oracle divergence,
    # or an invariant violation (the audit reads the stale catalogue
    # row), depending on which check reaches it first.
    assert kinds & {"cache-twin", "oracle", "invariant"}, kinds


# -- compiled-plan sharing and the compile/invalidate race -----------------


def test_plan_shared_across_documents_and_literals():
    """One compiled plan serves both documents and both literal values:
    the plan key is the query *shape* (dialect, encoding, shape, depth),
    with doc/context/literals bound as parameters afterwards."""
    from repro.obs import METRICS

    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    try:
        store = XmlStore(cache=True)
        # Pin indexes off: with an index context the plan key carries
        # the per-document statistics fingerprint, which legitimately
        # narrows sharing to one document — this test is about the
        # shape-keyed sharing of plain scan plans.
        store.indexes.force_mode = "off"
        d1 = store.load("<r><item id='a'/><item id='b'/></r>")
        d2 = store.load("<r><item id='a'/></r>")
        t1 = store.translate("//item[@id = 'a']", d1)
        t2 = store.translate("//item[@id = 'b']", d1)  # other literal
        t3 = store.translate("//item[@id = 'a']", d2)  # other document
        assert t1.sql == t2.sql == t3.sql
        assert t1.params != t2.params  # literals still bind correctly
        assert t1.params != t3.params  # and so does the document id
        layers = store.cache.stats()["layers"]
        assert layers["plan"]["misses"] == 1
        assert layers["plan"]["hits"] == 2
        counters = METRICS.snapshot()["counters"]
        assert counters["translate.compile"] == 1
        assert counters["translate.plan_shared"] == 2
    finally:
        METRICS.enabled = was_enabled
        METRICS.reset()


@pytest.mark.skip_audit
def test_compile_then_invalidate_race_refuses_stale_plan(monkeypatch):
    """The observed epoch is captured before compilation starts; a
    writer committing mid-compile (simulated by bumping inside the
    catalogue read) must prevent the freshly compiled plan from being
    stored — the shape-level compile cache above the plan cache does
    not weaken the epoch check."""
    store = XmlStore(cache=True)
    doc = store.load(SHALLOW)
    original = XmlStore.document_info

    def racing_info(self, d, **kwargs):
        info = original(self, d, **kwargs)
        self.cache.bump()  # a concurrent writer commits mid-translate
        return info

    monkeypatch.setattr(XmlStore, "document_info", racing_info)
    translated = store.translate("//b", doc)
    assert translated.sql  # translation itself still succeeds
    plan_layer = store.cache.stats()["layers"]["plan"]
    assert plan_layer["size"] == 0, "stale plan put must be refused"


@pytest.mark.skip_audit
def test_missed_invalidation_serves_stale_depth_plan(monkeypatch):
    """Negative control for the deepening-insert regression: with the
    epoch bump disabled, the stale depth-bounded plan (and result)
    survive the insert and the new deep nodes are dropped — proving
    the bump, not the pure shape-extraction cache above it, is what
    keeps plans fresh."""
    from repro.cache.lru import StoreCache

    monkeypatch.setattr(StoreCache, "bump", lambda self: None)
    store = XmlStore(encoding="local", cache=True)
    doc = store.load(SHALLOW)
    assert store.query("//f", doc) == []  # warm plan + result layers

    store.updates.insert(doc, 2, 0, DEEP_FRAGMENT)

    got = [i.value for i in store.query("//f", doc)]
    assert got != ["deep"], (
        "epoch bump disabled yet the deep nodes appeared — the "
        "missed-invalidation harness would no longer detect stale "
        "caches"
    )
