"""Tests for the fault-injection and retry layers (repro.robust)."""

import sqlite3

import pytest

from repro.backends import make_backend
from repro.errors import TransientStorageError
from repro.obs import METRICS
from repro.robust import (
    FaultInjectingBackend,
    FaultPlan,
    RetryPolicy,
    SimulatedCrash,
    TransientInjectedError,
    is_transient_error,
)
from repro.store import XmlStore

BACKENDS = ("sqlite", "minidb")


def _counting_store(backend_name, plan=None, retry=None):
    injected = FaultInjectingBackend(make_backend(backend_name))
    store = XmlStore(backend=injected, encoding="dewey", retry=retry)
    injected.arm(plan)
    return store, injected


@pytest.fixture
def metrics():
    """The process metrics registry, enabled and zeroed for one test."""
    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    yield METRICS
    METRICS.enabled = was_enabled
    METRICS.reset()


class TestFaultPlan:
    def test_crash_at_statement_is_exact(self):
        plan = FaultPlan(crash_at_statement=3)
        assert plan.next_fault(0) == "ok"
        assert plan.next_fault(1) == "ok"
        assert plan.next_fault(2) == "crash"

    def test_transient_rate_is_seeded_and_bounded(self):
        plan_a = FaultPlan(seed=7, transient_rate=0.5,
                           max_consecutive_transients=2)
        plan_b = FaultPlan(seed=7, transient_rate=0.5,
                           max_consecutive_transients=2)
        fates_a = [plan_a.next_fault(0) for _ in range(50)]
        fates_b = [plan_b.next_fault(0) for _ in range(50)]
        assert fates_a == fates_b  # deterministic replay
        assert "transient" in fates_a
        # Never more than the cap in a row.
        run = 0
        for fate in fates_a:
            run = run + 1 if fate == "transient" else 0
            assert run <= 2

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestFaultInjectingBackend:
    def test_inert_without_plan(self, backend_name):
        store, injected = _counting_store(backend_name)
        doc = store.load("<a><b>x</b></a>")
        assert store.query_values("/a/b/text()", doc) == ["x"]
        assert injected.statements_executed > 0
        assert not injected.crashed

    def test_transient_fault_surfaces_without_retry(self, backend_name):
        store, injected = _counting_store(backend_name)
        doc = store.load("<a/>")
        injected.arm(FaultPlan(transient_rate=0.99,
                               max_consecutive_transients=1))
        with pytest.raises(TransientInjectedError):
            store.query("/a", doc)
        injected.arm(None)

    @pytest.mark.skip_audit
    def test_crash_discards_engine(self, backend_name):
        store, injected = _counting_store(backend_name)
        doc = store.load("<a><b/><b/></a>")
        injected.arm(FaultPlan(crash_at_statement=2))
        with pytest.raises(SimulatedCrash):
            store.updates.insert(doc, 1, 0, "<c/>")
        assert injected.crashed
        # A dead backend stays dead: every further statement raises.
        with pytest.raises(SimulatedCrash):
            store.query("/a", doc)
        # ... but rollback/close are silent no-ops (nobody is left to
        # run them after a real process death).
        injected.rollback()
        injected.close()

    @pytest.mark.skip_audit
    def test_crash_pierces_broad_except_clauses(self, backend_name):
        store, injected = _counting_store(backend_name)
        doc = store.load("<a/>")
        injected.arm(FaultPlan(crash_at_statement=1))
        with pytest.raises(SimulatedCrash):
            try:
                store.query("/a", doc)
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash was caught as an Exception")


class TestRetryPolicy:
    def test_classification(self):
        assert is_transient_error(TransientInjectedError("busy"))
        assert is_transient_error(
            sqlite3.OperationalError("database is locked")
        )
        assert is_transient_error(
            sqlite3.OperationalError("database table is busy")
        )
        assert not is_transient_error(ValueError("nope"))
        assert not is_transient_error(
            sqlite3.OperationalError("no such table: t")
        )

    def test_retries_until_success(self, metrics):
        sleeps = []
        policy = RetryPolicy(attempts=5, base_delay=0.01, seed=0,
                             sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientInjectedError("busy")
            return "done"

        assert policy.run(flaky) == "done"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0] * 0.5  # backoff grows (with jitter)
        # Two faults were classified transient, both were retried, and
        # the third attempt recovered.
        counters = metrics.snapshot()["counters"]
        assert counters.get("retry.transient_faults") == 2
        assert counters.get("retry.retries") == 2
        assert counters.get("retry.recoveries") == 1
        assert "retry.exhausted" not in counters

    def test_exhaustion_raises_typed_error(self, metrics):
        policy = RetryPolicy(attempts=3, sleep=lambda _d: None)

        def always_busy():
            raise TransientInjectedError("busy")

        with pytest.raises(TransientStorageError) as excinfo:
            policy.run(always_busy)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error,
                          TransientInjectedError)
        assert isinstance(excinfo.value.__cause__,
                          TransientInjectedError)
        # Three faults, two re-attempts after the first, no recovery,
        # one exhausted budget.
        counters = metrics.snapshot()["counters"]
        assert counters.get("retry.transient_faults") == 3
        assert counters.get("retry.retries") == 2
        assert "retry.recoveries" not in counters
        assert counters.get("retry.exhausted") == 1

    def test_permanent_errors_propagate_immediately(self):
        policy = RetryPolicy(attempts=5, sleep=lambda _d: None)
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            policy.run(broken)
        assert calls["n"] == 1

    def test_delays_bounded_by_max(self):
        policy = RetryPolicy(attempts=10, base_delay=0.1, max_delay=0.3,
                             jitter=0.0, seed=1, sleep=lambda _d: None)
        assert policy.backoff_delay(9) == 0.3


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestRetryThroughStore:
    def test_update_stream_survives_transients(self, backend_name,
                                               metrics):
        retry = RetryPolicy(attempts=6, base_delay=0.0001,
                            max_delay=0.001, seed=3,
                            sleep=lambda _d: None)
        store, injected = _counting_store(backend_name, retry=retry)
        doc = store.load("<list><i>1</i><i>2</i></list>")
        injected.arm(FaultPlan(seed=11, transient_rate=0.05,
                               max_consecutive_transients=2))
        root = 1
        for n in range(6):
            store.updates.insert(doc, root, 0, f"<i>{n}</i>")
        store.updates.set_text(doc, root, "t")
        store.updates.delete(doc, store.fetch_children(doc, root)[0]["id"])
        injected.arm(None)
        assert store.node_count(doc) >= 1
        # The whole stream succeeded, so every injected fault was both
        # retried and eventually recovered from: faults == retries,
        # each faulted operation recovered, and nothing exhausted.
        counters = metrics.snapshot()["counters"]
        faults = counters.get("retry.transient_faults", 0)
        assert faults >= 1  # the seeded plan injects at least one
        assert counters.get("retry.retries", 0) == faults
        assert 1 <= counters.get("retry.recoveries", 0) <= faults
        assert "retry.exhausted" not in counters

    def test_exhausted_retry_surfaces_typed_error(self, backend_name):
        retry = RetryPolicy(attempts=2, sleep=lambda _d: None)
        store, injected = _counting_store(backend_name, retry=retry)
        doc = store.load("<a/>")
        injected.arm(FaultPlan(transient_rate=0.99,
                               max_consecutive_transients=99))
        with pytest.raises(TransientStorageError):
            store.query("/a", doc)
        injected.arm(None)
