"""Tests for the minidb value model (comparison, logic, CAST)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.minidb.values import (
    cast_value,
    compare,
    is_true,
    logical_and,
    logical_not,
    logical_or,
    row_sort_key,
    sort_key,
)


class TestCompare:
    def test_numbers(self):
        assert compare(1, 2) == -1
        assert compare(2.5, 2.5) == 0
        assert compare(3, 2.5) == 1
        assert compare(1, 1.0) == 0

    def test_strings(self):
        assert compare("a", "b") == -1
        assert compare("b", "b") == 0

    def test_blobs(self):
        assert compare(b"\x01", b"\x02") == -1

    def test_null_is_unknown(self):
        assert compare(None, 1) is None
        assert compare("x", None) is None
        assert compare(None, None) is None

    def test_cross_type_raises(self):
        with pytest.raises(ExecutionError):
            compare("1", 1)
        with pytest.raises(ExecutionError):
            compare(b"x", "x")


class TestSortKey:
    def test_type_class_order(self):
        values = [b"\x00", "a", 3, None, 1.5]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, 1.5, 3, "a", b"\x00"]

    def test_row_sort_key_tuples(self):
        rows = [(1, "b"), (1, "a"), (None, "z")]
        ordered = sorted(rows, key=row_sort_key)
        assert ordered == [(None, "z"), (1, "a"), (1, "b")]

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.integers(-100, 100),
                st.floats(allow_nan=False, allow_infinity=False,
                          width=32),
                st.text(max_size=5),
                st.binary(max_size=5),
            ),
            max_size=10,
        )
    )
    def test_sort_key_is_total(self, values):
        sorted(values, key=sort_key)  # must never raise


class TestLogic:
    def test_kleene_and(self):
        assert logical_and(True, True) is True
        assert logical_and(True, False) is False
        assert logical_and(False, None) is False
        assert logical_and(True, None) is None

    def test_kleene_or(self):
        assert logical_or(False, True) is True
        assert logical_or(False, False) is False
        assert logical_or(None, True) is True
        assert logical_or(False, None) is None

    def test_kleene_not(self):
        assert logical_not(True) is False
        assert logical_not(None) is None

    def test_is_true_collapses_unknown(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)


class TestCast:
    def test_cast_to_integer(self):
        assert cast_value("42", "INTEGER") == 42
        assert cast_value("3.7", "INTEGER") == 3
        assert cast_value("junk", "INTEGER") == 0
        assert cast_value(None, "INTEGER") is None

    def test_cast_to_real(self):
        assert cast_value("39.95", "REAL") == 39.95
        assert cast_value("junk", "REAL") == 0.0
        assert cast_value(7, "REAL") == 7.0

    def test_cast_to_text(self):
        assert cast_value(42, "TEXT") == "42"
        assert cast_value(b"ab", "TEXT") == "ab"

    def test_cast_to_blob(self):
        assert cast_value("ab", "BLOB") == b"ab"
        assert cast_value(b"ab", "BLOB") == b"ab"

    def test_unknown_target_raises(self):
        with pytest.raises(ExecutionError):
            cast_value("x", "JSON")
