"""XPath number() vs SQL CAST semantics (the seed-12 regression).

The migrate-during fuzzer surfaced a divergence present since the first
translator: value predicates compared via ``CAST(value AS REAL)``, and
SQL CAST of non-numeric text yields 0 while XPath ``number()`` yields
NaN — so ``text() < 25`` matched a node whose text was ``"t11"`` in SQL
but not in the native evaluator.  The fix routes every numeric
comparison through the registered ``xpath_number`` scalar (NaN mapped
to NULL, with an ``IS NULL`` disjunct on ``!=`` where NaN compares
true).  These tests pin the original failing shape and sweep the
semantics across all four encodings and both backends.
"""

import random

import pytest

from repro.check.fuzz import FuzzConfig, apply_operation, plan_operation, run_fuzz
from repro.core.numeric import xpath_number_value
from repro.store import XmlStore
from repro.workload.docgen import random_document
from repro.xmldom.parser import parse
from repro.xmldom.serializer import serialize
from repro.xpath.evaluator import evaluate

ENCODINGS = ("global", "local", "dewey", "ordpath")
BACKENDS = ("sqlite", "minidb")

#: The ROADMAP repro query, verbatim.
SEED12_QUERY = "//node()/*[text() < 25]/c"

#: A hand-held version of the seed-12 state: the first ``a`` holds the
#: non-numeric text an insert_text op produced ("t11"); under CAST
#: semantics it wrongly matched ``text() < 25`` and leaked its ``c``
#: child into the result.
SEED12_XML = (
    "<r><a>t11<c/></a><a>7<c/></a><a> 12 <c/></a><a>88<c/></a>"
    "<d><b>t11</b><c/></d><d><b>7</b><c/></d></r>"
)


def _oracle_count(xml: str, query: str) -> int:
    return len(evaluate(parse(xml), query))


class TestXpathNumberScalar:
    def test_non_numeric_text_is_null(self):
        assert xpath_number_value("t11") is None
        assert xpath_number_value("") is None
        assert xpath_number_value("12abc") is None

    def test_numeric_text_parses_with_whitespace(self):
        assert xpath_number_value(" 12 ") == 12.0
        assert xpath_number_value("-3.5") == -3.5

    def test_scalar_types_pass_through(self):
        assert xpath_number_value(None) is None
        assert xpath_number_value(7) == 7.0
        assert xpath_number_value(2.5) == 2.5
        assert xpath_number_value(b"\x01\x02") is None

    def test_nan_never_escapes(self):
        assert xpath_number_value("nan") is None


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("encoding", ENCODINGS)
class TestSeed12Regression:
    def test_repro_query_matches_evaluator(self, backend, encoding):
        store = XmlStore(backend=backend, encoding=encoding)
        try:
            doc = store.load(parse(SEED12_XML))
            got = store.query(SEED12_QUERY, doc=doc)
            want = _oracle_count(SEED12_XML, SEED12_QUERY)
            # Three numeric b's (7, 12 below 25; 88 not) => two matches;
            # "t11" must not be one of them.
            assert want == 2
            assert len(got) == want
        finally:
            store.close()

    def test_not_equal_follows_nan_semantics(self, backend, encoding):
        # number('t11') is NaN and NaN != 7 is *true*: the t11 branch
        # must match, the 7 branch must not.
        query = "//d[b != 7]/c"
        store = XmlStore(backend=backend, encoding=encoding)
        try:
            doc = store.load(parse(SEED12_XML))
            got = store.query(query, doc=doc)
            want = _oracle_count(SEED12_XML, query)
            assert want == 1
            assert len(got) == want
        finally:
            store.close()

    def test_seeded_stream_state_matches_evaluator(self, backend, encoding):
        """Rebuild a seed-12-style state the fuzzer's own way: random
        doc 12 plus its seeded op stream (whose insert pool emits
        "tNN " text), then differential-check the repro query."""
        store = XmlStore(backend=backend, encoding=encoding)
        try:
            doc = store.load(random_document(12, max_depth=4, max_children=3))
            rng = random.Random(12 * 7919 + 1)
            for _ in range(12):
                plan = plan_operation(rng, store, doc)
                apply_operation(store, doc, plan)
            xml = serialize(store.reconstruct(doc))
            for query in (SEED12_QUERY, "//a[b < 50]", "//*[text() != 3]"):
                got = store.query(query, doc=doc)
                assert len(got) == _oracle_count(xml, query), query
        finally:
            store.close()


@pytest.mark.slow
def test_fuzz_pool_samples_non_numeric_text():
    """The differential fuzzer now locks the fix in: its documents and
    insert fragments carry non-numeric text and its predicate pool
    keeps drawing numeric comparisons over element/text values."""
    report = run_fuzz(FuzzConfig(
        seeds=2, ops=15, base_seed=12,
        encodings=("global", "dewey"), backends=("sqlite",),
    ))
    assert not report.failures, report.failures
