"""Tests for online encoding migration (``repro migrate``).

Covers the full source->target encoding matrix on both backends, the
journal's two-phase staging protocol, concurrent updates landing in the
shadow via replay, the abort path leaving no orphaned shadow state
(regression for the mid-copy abort bug), and the workload advisor's
E7-crossover thresholds.
"""

import threading

import pytest

from repro.core.encodings import ENCODINGS
from repro.errors import MigrationError
from repro.migrate import (
    MigrationAdvisor,
    MigrationJournal,
    migrate_document,
)
from repro.store import XmlStore
from repro.workload.docgen import random_document
from repro.xmldom import serialize

ALL_ENCODINGS = tuple(ENCODINGS)
PAIRS = [
    (source, target)
    for source in ALL_ENCODINGS
    for target in ALL_ENCODINGS
    if source != target
]

QUERIES = (
    "/bib/book[2]/author[1]",
    "//book[@year < 2000]/title",
    "//author/following-sibling::*",
    "/bib/book/price/text()",
)

BIB = (
    '<bib><book year="1994"><title>TCP/IP</title>'
    "<author>Stevens</author><price>65.95</price></book>"
    '<book year="2000"><title>Data on the Web</title>'
    "<author>Abiteboul</author><author>Buneman</author>"
    "<price>39.95</price></book>"
    '<book year="1999"><title>Economics</title>'
    "<author>Smith</author><price>10</price></book></bib>"
)


def identities(store: XmlStore, doc: int, xpath: str) -> list[tuple]:
    return [
        (item.kind, item.node_id, item.label, item.value)
        for item in store.query(xpath, doc)
    ]


class TestMigrationMatrix:
    @pytest.mark.parametrize("source,target", PAIRS)
    def test_every_pair_preserves_document_and_ids(self, source, target):
        store = XmlStore(backend="sqlite", encoding=source)
        doc = store.load(BIB)
        before_xml = serialize(store.reconstruct(doc))
        before = {q: identities(store, doc, q) for q in QUERIES}

        report = migrate_document(store, doc, target)

        assert report.outcome == "migrated"
        assert (report.source, report.target) == (source, target)
        assert report.rows_copied > 0
        assert store.encoding_for(doc).name == target
        assert serialize(store.reconstruct(doc)) == before_xml
        # Surrogate ids survive the re-encoding, so identity-level
        # query results are byte-for-byte stable across the cutover.
        assert {q: identities(store, doc, q) for q in QUERIES} == before

    @pytest.mark.parametrize("backend", ("sqlite", "minidb"))
    def test_both_backends_roundtrip_and_update_after(self, backend):
        store = XmlStore(backend=backend, encoding="global")
        doc = store.load(BIB)
        migrate_document(store, doc, "dewey")
        assert store.encoding_for(doc).name == "dewey"
        # Updates after cutover land in the new encoding's tables.
        report = store.updates.insert(doc, 1, 0, "<book><title>New</title></book>")
        assert report.inserted == 3
        assert len(store.query("/bib/book", doc)) == 4
        rows = store.backend.execute(
            f"SELECT COUNT(*) FROM "
            f"{ENCODINGS['dewey'].node_table.name} WHERE doc = ?",
            (doc,),
        ).rows
        assert rows[0][0] == store.document_info(doc).node_count

    def test_noop_when_already_on_target(self):
        store = XmlStore(backend="sqlite", encoding="local")
        doc = store.load(BIB)
        report = migrate_document(store, doc, "local")
        assert report.outcome == "noop"
        assert report.rows_copied == 0

    def test_unknown_target_rejected(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(BIB)
        with pytest.raises(Exception):
            migrate_document(store, doc, "no-such-encoding")

    def test_mixed_encoding_store(self):
        """Documents with different encodings coexist in one store."""
        store = XmlStore(backend="sqlite", encoding="global")
        doc_a = store.load(BIB, name="a")
        doc_b = store.load(BIB, name="b")
        migrate_document(store, doc_a, "dewey")
        assert store.encoding_for(doc_a).name == "dewey"
        assert store.encoding_for(doc_b).name == "global"
        assert identities(store, doc_a, QUERIES[0]) == identities(
            store, doc_b, QUERIES[0]
        )


class TestConcurrentWrites:
    def test_updates_during_migration_replay_into_shadow(self):
        """Writers racing the copy loop land via the journal replay."""
        document = random_document(3, max_depth=4, max_children=3)
        store = XmlStore(backend="sqlite", encoding="global")
        twin = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(document)
        twin_doc = twin.load(document)

        errors: list[BaseException] = []

        def migrate() -> None:
            try:
                migrate_document(store, doc, "dewey", batch_size=1)
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=migrate)
        thread.start()
        for i in range(20):
            fragment = f"<a id=\"{i}\">{i}</a>"
            store.updates.insert(doc, 1, 0, fragment)
            twin.updates.insert(twin_doc, 1, 0, fragment)
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert not errors, errors
        assert store.encoding_for(doc).name == "dewey"
        assert serialize(store.reconstruct(doc)) == serialize(
            twin.reconstruct(twin_doc)
        )

    def test_migration_through_write_queue(self):
        store = XmlStore(backend="sqlite", encoding="local")
        doc = store.load(BIB)
        store.enable_write_queue(max_batch=4)
        before = serialize(store.reconstruct(doc))
        report = migrate_document(store, doc, "global")
        assert report.outcome == "migrated"
        assert store.encoding_for(doc).name == "global"
        assert serialize(store.reconstruct(doc)) == before
        store.close()


class TestAbortLeavesNoShadowState:
    """Regression: an aborted migration must drop every ``mig_*``
    table and leave the catalog (and its cache) on the source
    encoding."""

    def _failing_copy_store(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(BIB)
        original = store.backend.executemany
        state = {"armed": True}

        def failing(sql, rows):
            if state["armed"] and "mig_" in sql:
                state["armed"] = False
                raise RuntimeError("disk full (simulated)")
            return original(sql, rows)

        store.backend.executemany = failing
        return store, doc

    def test_abort_mid_copy_then_requery(self):
        store, doc = self._failing_copy_store()
        before = serialize(store.reconstruct(doc))
        with pytest.raises(RuntimeError, match="disk full"):
            migrate_document(store, doc, "dewey")
        # No orphaned shadow tables, no in-flight marker.
        assert store._migration is None
        tables = store.backend.list_tables()
        assert not [t for t in tables if t.startswith("mig_")]
        # Catalog and cache still resolve the source encoding.
        assert store.encoding_for(doc).name == "global"
        assert serialize(store.reconstruct(doc)) == before
        assert len(store.query("/bib/book", doc)) == 3

    def test_abort_then_successful_retry(self):
        store, doc = self._failing_copy_store()
        with pytest.raises(RuntimeError):
            migrate_document(store, doc, "dewey")
        report = migrate_document(store, doc, "dewey")
        assert report.outcome == "migrated"
        assert store.encoding_for(doc).name == "dewey"

    def test_recover_on_open_sweeps_leftover_shadow_tables(self, tmp_path):
        path = str(tmp_path / "store.db")
        from repro.backends.sqlite_backend import SqliteBackend

        backend = SqliteBackend(path)
        store = XmlStore(backend=backend, encoding="global")
        store.load(BIB)
        # Simulate a crash that left shadow tables behind: create one
        # by hand, close, reopen.
        backend.execute("CREATE TABLE mig_leftover (x INTEGER)")
        backend.commit()
        store.close()
        reopened = XmlStore(
            backend=SqliteBackend(path), encoding="global"
        )
        assert not [
            t
            for t in reopened.backend.list_tables()
            if t.startswith("mig_")
        ]
        reopened.close()


class TestJournal:
    def test_two_phase_stage_promote_drain(self):
        journal = MigrationJournal()
        journal.stage(("delete", 5))
        assert journal.pending() == []  # staged, not yet promoted
        journal.promote()
        assert journal.pending() == [("delete", 5)]
        assert journal.drain() == [("delete", 5)]
        assert journal.pending() == []

    def test_discard_clears_only_this_threads_staging(self):
        journal = MigrationJournal()
        journal.stage(("delete", 1))

        def other() -> None:
            journal.stage(("delete", 2))
            journal.promote()

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        journal.discard()  # drops this thread's ("delete", 1) only
        journal.promote()
        assert journal.pending() == [("delete", 2)]

    def test_poison_and_overflow_flags(self):
        journal = MigrationJournal(capacity=2)
        assert not journal.poisoned
        journal.poison()
        assert journal.poisoned
        for i in range(3):
            journal.stage(("delete", i))
        journal.promote()
        assert journal.overflowed


class TestAdvisor:
    def snapshot(self, queries: int, renumber: int) -> dict:
        return {
            "counters": {
                "query.executed": queries,
                "updates.renumber_ops": renumber,
            }
        }

    def test_update_heavy_side_of_crossover_recommends_local(self):
        advisor = MigrationAdvisor()
        rec = advisor.decide(self.snapshot(40, 60), "global")
        assert rec.migrate and rec.target == "local"
        assert rec.update_share == pytest.approx(0.6)

    def test_query_heavy_side_of_crossover_recommends_global(self):
        advisor = MigrationAdvisor()
        rec = advisor.decide(self.snapshot(95, 5), "local")
        assert rec.migrate and rec.target == "global"
        assert rec.update_share == pytest.approx(0.05)

    def test_mixed_regime_recommends_dewey(self):
        advisor = MigrationAdvisor()
        rec = advisor.decide(self.snapshot(70, 30), "global")
        assert rec.migrate and rec.target == "dewey"

    def test_exact_thresholds_are_deterministic(self):
        advisor = MigrationAdvisor(update_heavy=0.5, query_heavy=0.1)
        # share == update_heavy -> local; share == query_heavy -> global
        assert advisor.decide(self.snapshot(50, 50), "dewey").target == "local"
        assert advisor.decide(self.snapshot(90, 10), "dewey").target == "global"

    def test_holds_below_min_samples(self):
        advisor = MigrationAdvisor(min_samples=20)
        rec = advisor.decide(self.snapshot(5, 5), "global")
        assert not rec.migrate and rec.samples == 10

    def test_holds_when_already_on_best(self):
        advisor = MigrationAdvisor()
        rec = advisor.decide(self.snapshot(40, 60), "local")
        assert not rec.migrate
        assert "already on local" in rec.reason

    def test_accepts_flat_counters_and_full_snapshots(self):
        advisor = MigrationAdvisor()
        flat = self.snapshot(40, 60)["counters"]
        assert advisor.decide(flat, "global").target == "local"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            MigrationAdvisor(update_heavy=0.1, query_heavy=0.5)
        with pytest.raises(ValueError):
            MigrationAdvisor(min_samples=0)


class TestGuards:
    def test_concurrent_second_migration_rejected(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(BIB)
        from repro.migrate.engine import MigrationState

        store._migration = MigrationState(
            doc=doc,
            source=ENCODINGS["global"],
            target=ENCODINGS["dewey"],
            journal=MigrationJournal(),
        )
        try:
            with pytest.raises(MigrationError):
                migrate_document(store, doc, "dewey")
        finally:
            store._migration = None

    def test_bad_batch_size_rejected(self):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load(BIB)
        with pytest.raises(MigrationError):
            migrate_document(store, doc, "dewey", batch_size=0)
