"""Transaction tests: atomicity on both engines, plus failure injection
showing that a crashed multi-statement update leaves no partial state."""

import threading

import pytest

from repro.backends import make_backend
from repro.backends.base import split_sql_script
from repro.errors import ExecutionError
from repro.minidb import MiniDb
from repro.store import XmlStore
from tests.conftest import BACKENDS


@pytest.mark.parametrize("name", BACKENDS)
class TestBackendTransactions:
    def _backend(self, name):
        backend = make_backend(name)
        backend.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        backend.execute("INSERT INTO t VALUES (?, ?)", (1, "keep"))
        return backend

    def test_commit_keeps_changes(self, name):
        backend = self._backend(name)
        with backend.transaction():
            backend.execute("INSERT INTO t VALUES (?, ?)", (2, "new"))
        rows = backend.execute("SELECT COUNT(*) FROM t").rows
        assert rows == [(2,)]

    def test_rollback_on_exception(self, name):
        backend = self._backend(name)
        with pytest.raises(RuntimeError):
            with backend.transaction():
                backend.execute("INSERT INTO t VALUES (?, ?)", (2, "x"))
                backend.execute("UPDATE t SET b = 'mod' WHERE a = 1")
                backend.execute("DELETE FROM t WHERE a = 1")
                raise RuntimeError("boom")
        rows = backend.execute("SELECT a, b FROM t ORDER BY a").rows
        assert rows == [(1, "keep")]

    def test_nested_scopes_flatten(self, name):
        backend = self._backend(name)
        with pytest.raises(RuntimeError):
            with backend.transaction():
                backend.execute("INSERT INTO t VALUES (?, ?)", (2, "o"))
                with backend.transaction():
                    backend.execute(
                        "INSERT INTO t VALUES (?, ?)", (3, "i")
                    )
                raise RuntimeError("outer fails after inner commits")
        # The inner scope's work rolls back with the outer transaction.
        assert backend.execute("SELECT COUNT(*) FROM t").rows == [(1,)]

    def test_sequential_transactions(self, name):
        backend = self._backend(name)
        with backend.transaction():
            backend.execute("INSERT INTO t VALUES (?, ?)", (2, "x"))
        with backend.transaction():
            backend.execute("INSERT INTO t VALUES (?, ?)", (3, "y"))
        assert backend.execute("SELECT COUNT(*) FROM t").rows == [(3,)]


class TestMiniDbJournal:
    def test_rollback_restores_indexes(self):
        db = MiniDb()
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        db.execute("CREATE INDEX ix_t_k ON t (k)")
        db.execute("INSERT INTO t VALUES (?, ?)", (1, "a"))
        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE k = 1")
        db.execute("INSERT INTO t VALUES (?, ?)", (2, "b"))
        db.execute("UPDATE t SET k = 9 WHERE k = 2")
        db.execute("ROLLBACK")
        # Index lookups must see the restored world exactly.
        assert db.execute("SELECT v FROM t WHERE k = 1").rows == [("a",)]
        assert db.execute("SELECT v FROM t WHERE k = 2").rows == []
        assert db.execute("SELECT v FROM t WHERE k = 9").rows == []

    def test_commit_clears_journal(self):
        db = MiniDb()
        db.execute("CREATE TABLE t (k INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("COMMIT")
        assert not db.in_transaction
        assert db.row_count("t") == 1

    def test_double_begin_rejected(self):
        db = MiniDb()
        db.execute("BEGIN")
        with pytest.raises(ExecutionError):
            db.begin()

    def test_commit_without_begin_rejected(self):
        db = MiniDb()
        with pytest.raises(ExecutionError):
            db.execute("COMMIT")
        with pytest.raises(ExecutionError):
            db.execute("ROLLBACK")

    def test_ddl_inside_transaction_rejected(self):
        db = MiniDb()
        db.execute("BEGIN")
        with pytest.raises(ExecutionError):
            db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("ROLLBACK")

    def test_unique_violation_inside_transaction(self):
        db = MiniDb()
        db.execute("CREATE TABLE t (k INTEGER)")
        db.execute("CREATE UNIQUE INDEX ux ON t (k)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (2)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1)")
        db.execute("ROLLBACK")
        assert db.row_count("t") == 1


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("encoding", ("global", "dewey"))
class TestFailureInjection:
    """A multi-statement ordered insert that dies midway must leave the
    store exactly as it was — renumbering and all."""

    def _snapshot(self, store, doc):
        rows = store.backend.execute(
            f"SELECT * FROM {store.node_table} WHERE doc = ?", (doc,)
        ).rows
        return sorted(rows, key=repr)

    def test_crash_during_insert_rolls_back(
        self, backend_name, encoding, monkeypatch
    ):
        store = XmlStore(backend=backend_name, encoding=encoding)
        doc = store.load(
            "<list>" + "<i><v>x</v></i>" * 6 + "</list>"
        )
        root = store.query("/list", doc)[0].node_id
        before = self._snapshot(store, doc)
        info_before = store.document_info(doc)

        # Crash after the renumbering UPDATEs, before the new rows land.
        original = store.updates._insert_rows

        def exploding_insert_rows(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(
            store.updates, "_insert_rows", exploding_insert_rows
        )
        with pytest.raises(RuntimeError):
            store.updates.insert(doc, root, 0, "<i n='new'/>")
        monkeypatch.setattr(store.updates, "_insert_rows", original)

        # Everything — positions, keys, catalogue — is untouched.
        assert self._snapshot(store, doc) == before
        assert store.document_info(doc) == info_before
        # And the store still works normally afterwards.
        report = store.updates.insert(doc, root, 0, "<i n='new'/>")
        assert report.inserted == 1
        assert store.query_values("/list/i[1]/@n", doc) == ["new"]


class TestSplitSqlScript:
    """Quote-aware script splitting (regression: naive ';'.split)."""

    def test_plain_statements(self):
        assert split_sql_script("SELECT 1; SELECT 2;") == [
            "SELECT 1",
            "SELECT 2",
        ]

    def test_semicolon_inside_single_quotes(self):
        script = "INSERT INTO t VALUES ('a; b'); SELECT 1"
        assert split_sql_script(script) == [
            "INSERT INTO t VALUES ('a; b')",
            "SELECT 1",
        ]

    def test_doubled_quote_escape(self):
        script = "INSERT INTO t VALUES ('it''s; fine'); SELECT 1"
        assert split_sql_script(script) == [
            "INSERT INTO t VALUES ('it''s; fine')",
            "SELECT 1",
        ]

    def test_semicolon_inside_double_quotes(self):
        script = 'UPDATE t SET v = 1 WHERE c = "x; y"; SELECT 1'
        assert split_sql_script(script) == [
            'UPDATE t SET v = 1 WHERE c = "x; y"',
            "SELECT 1",
        ]

    def test_semicolon_inside_line_comment(self):
        script = "SELECT 1 -- no; split here\n; SELECT 2"
        assert split_sql_script(script) == [
            "SELECT 1 -- no; split here",
            "SELECT 2",
        ]

    def test_blank_statements_dropped(self):
        assert split_sql_script(" ; ;SELECT 1; ;") == ["SELECT 1"]


@pytest.mark.parametrize("name", BACKENDS)
class TestExecutescript:
    def test_literals_with_semicolons_survive(self, name):
        backend = make_backend(name)
        backend.executescript(
            "CREATE TABLE s (v TEXT);"
            "INSERT INTO s VALUES ('a; b');"
            "INSERT INTO s VALUES ('it''s; fine')"
        )
        rows = backend.execute("SELECT v FROM s ORDER BY v").rows
        assert rows == [("a; b",), ("it's; fine",)]


@pytest.mark.parametrize("name", BACKENDS)
class TestRollbackFailurePropagation:
    """The original error must survive a rollback that itself raises."""

    def test_original_exception_not_masked(self, name):
        backend = make_backend(name)
        backend.execute("CREATE TABLE t (a INTEGER)")

        def exploding_rollback():
            raise ExecutionError("rollback exploded too")

        backend.rollback = exploding_rollback
        with pytest.raises(RuntimeError, match="boom") as excinfo:
            with backend.transaction():
                backend.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("boom")
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("rollback also failed" in note for note in notes)
        # The scope bookkeeping is reset, so the backend is not stuck
        # in a phantom open transaction.
        assert backend._tx_depth == 0


class TestConcurrentSqliteInserts:
    """Two threads updating one lock-guarded sqlite connection."""

    INSERTS_PER_THREAD = 12

    def test_interleaved_inserts_commit_atomically(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load("<root><a/><b/></root>")
        # Preorder surrogate ids: root=1, <a>=2, <b>=3.
        parents = {0: 2, 1: 3}
        barrier = threading.Barrier(2)
        errors = []

        def worker(slot):
            try:
                barrier.wait(timeout=10)
                for n in range(self.INSERTS_PER_THREAD):
                    store.updates.insert(
                        doc, parents[slot], 0, f"<x n='{slot}.{n}'/>"
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in parents
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        # Every insert from both threads committed, under its parent.
        for slot, parent in parents.items():
            children = store.fetch_children(doc, parent)
            assert len(children) == self.INSERTS_PER_THREAD
        assert store.node_count(doc) == 3 + 2 * self.INSERTS_PER_THREAD
        # The autouse audit fixture re-checks every invariant on exit.
