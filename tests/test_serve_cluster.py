"""Serve subsystem tests: worker dispatch, routing math, loadgen
statistics (fast, in-process) and full-cluster integration including
shard-kill recovery (marked slow — real processes).
"""

import tempfile

import pytest

from repro.serve.loadgen import percentile
from repro.serve.worker import ShardWorker
from repro.store import XmlStore
from repro.xmldom.parser import parse
from repro.xmldom.serializer import serialize

SMALL_XML = "<r><a>1</a><b>two</b><a>3</a></r>"


@pytest.fixture()
def worker():
    store = XmlStore(backend="sqlite", encoding="dewey", gap=1)
    try:
        yield ShardWorker(store, shard_index=0)
    finally:
        store.close()


class TestShardWorkerDispatch:
    def test_ping(self, worker):
        response = worker.handle({"op": "ping"})
        assert response["ok"] and response["pong"]
        assert response["shard"] == 0

    def test_unknown_op(self, worker):
        response = worker.handle({"op": "nope"})
        assert not response["ok"]
        assert response["error"]["type"] == "bad_request"

    def test_missing_op(self, worker):
        assert not worker.handle({})["ok"]

    def test_load_query_roundtrip(self, worker):
        doc = worker.handle({"op": "load", "xml": SMALL_XML})["doc"]
        response = worker.handle(
            {"op": "query", "xpath": "//a", "doc": doc}
        )
        assert response["ok"]
        assert len(response["items"]) == 2
        kinds = {item[0] for item in response["items"]}
        assert kinds == {"elem"}

    def test_query_all_covers_every_document(self, worker):
        docs = [
            worker.handle({"op": "load", "xml": SMALL_XML})["doc"]
            for _ in range(3)
        ]
        response = worker.handle({"op": "query_all", "xpath": "//a"})
        assert response["ok"]
        assert [r[0] for r in response["results"]] == docs
        assert all(len(r[1]) == 2 for r in response["results"])

    def test_update_and_state(self, worker):
        doc = worker.handle({"op": "load", "xml": SMALL_XML})["doc"]
        state = worker.handle({"op": "state", "doc": doc})
        root = worker.handle(
            {"op": "query", "xpath": "/*", "doc": doc}
        )["items"][0][1]
        response = worker.handle({
            "op": "update",
            "doc": doc,
            "change": {"kind": "set_attr", "target": root,
                       "name": "k", "value": "v"},
        })
        assert response["ok"] and response["rows_touched"] >= 1
        after = worker.handle({"op": "state", "doc": doc})
        assert after["xml"] != state["xml"]
        assert 'k="v"' in after["xml"]

    def test_update_batch_is_atomic_on_error(self, worker):
        doc = worker.handle({"op": "load", "xml": SMALL_XML})["doc"]
        before = worker.handle({"op": "state", "doc": doc})["xml"]
        root = worker.handle(
            {"op": "query", "xpath": "/*", "doc": doc}
        )["items"][0][1]
        response = worker.handle({
            "op": "update_batch",
            "doc": doc,
            "changes": [
                {"kind": "set_attr", "target": root,
                 "name": "k", "value": "v"},
                {"kind": "delete", "target": 999999},  # no such node
            ],
        })
        assert not response["ok"]
        after = worker.handle({"op": "state", "doc": doc})["xml"]
        assert after == before  # first change rolled back too

    def test_check_clean(self, worker):
        doc = worker.handle({"op": "load", "xml": SMALL_XML})["doc"]
        response = worker.handle({"op": "check", "doc": doc})
        assert response["ok"] and response["violations"] == []

    def test_docs_and_stats(self, worker):
        worker.handle({"op": "load", "xml": SMALL_XML, "name": "x"})
        docs = worker.handle({"op": "docs"})
        assert docs["ok"] and docs["docs"][0]["name"] == "x"
        stats = worker.handle({"op": "stats"})
        assert stats["ok"] and stats["docs"] == 1

    def test_store_error_is_typed(self, worker):
        response = worker.handle(
            {"op": "query", "xpath": "//a", "doc": 42}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "store_error"

    def test_internal_error_carries_traceback(self, worker):
        response = worker.handle({"op": "query", "xpath": "//a"})
        assert not response["ok"]
        assert response["error"]["type"] == "internal"

    def test_shutdown_sets_flag(self, worker):
        assert not worker.shutdown_requested()
        response = worker.handle({"op": "shutdown"})
        assert response["ok"] and response["stopping"]
        assert worker.shutdown_requested()

    def test_state_round_trips_through_parser(self, worker):
        doc = worker.handle({"op": "load", "xml": SMALL_XML})["doc"]
        xml = worker.handle({"op": "state", "doc": doc})["xml"]
        assert serialize(parse(xml)) == xml


class TestRoutingMath:
    def _router(self, shards):
        from repro.serve.router import ShardRouter
        from repro.serve.supervisor import Supervisor

        with tempfile.TemporaryDirectory() as tmp:
            supervisor = Supervisor(tmp, shards)
            # Never started: only the id mapping is exercised.
            return ShardRouter(supervisor)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_global_local_round_trip(self, shards):
        router = self._router(shards)
        for shard in range(shards):
            for local in range(1, 6):
                doc = router.global_doc(shard, local)
                assert router.locate(doc) == (shard, local)

    def test_round_robin_load_order_is_global_order(self):
        router = self._router(4)
        order = [
            router.global_doc(i % 4, i // 4 + 1) for i in range(8)
        ]
        assert order == sorted(order)

    def test_locate_rejects_unmapped_ids(self):
        from repro.errors import ReproError

        router = self._router(4)
        for bad in (0, 1, 2, 3):  # local id would be 0
            with pytest.raises(ReproError):
                router.locate(bad)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_ranks(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert abs(percentile(values, 0.5) - 50.0) <= 1.0
        assert percentile(values, 0.99) >= 98.0


@pytest.mark.slow
class TestClusterIntegration:
    def test_cluster_round_trip_and_kill_isolation(self):
        from repro.serve.client import TcpClient
        from repro.serve.frontdoor import ServeConfig, ServeDaemon

        with tempfile.TemporaryDirectory() as tmp:
            daemon = ServeDaemon(
                ServeConfig(directory=tmp, shards=2,
                            respawn_interval=0.2)
            )
            port = daemon.start_in_background()
            client = TcpClient("127.0.0.1", port)
            try:
                docs = [
                    client.load(SMALL_XML, name=f"d{i}")
                    for i in range(4)
                ]
                assert docs == sorted(docs)
                # per-doc query routes to the right shard
                for doc in docs:
                    result = client.query("//a", doc=doc)
                    assert len(result["items"]) == 2
                # scatter merges every document in global order
                scattered = client.query("//a")
                assert [g["doc"] for g in scattered["groups"]] == docs
                assert scattered["errors"] == []

                # SIGKILL one shard: scatter degrades to a typed error
                # for exactly that shard's documents
                daemon.supervisor.kill(1)
                degraded = client.query("//a")
                assert len(degraded["groups"]) == 2
                assert len(degraded["errors"]) == 1
                assert degraded["errors"][0]["shard"] == 1
                assert degraded["errors"][0]["type"] == "shard_unavailable"

                # the respawn loop brings it back
                import time

                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    healed = client.query("//a")
                    if not healed["errors"]:
                        break
                    time.sleep(0.2)
                assert healed["errors"] == []
                assert [g["doc"] for g in healed["groups"]] == docs

                stats = client.stats()
                generations = stats["generations"]
                assert generations[1] == 2  # respawned exactly once
                response = client.shutdown()
                assert response["ok"]
            finally:
                client.close()
                daemon.stop()

    def test_shard_kill_crashtest_quick(self):
        from repro.serve.crashtest import run_shard_kill_crashtest

        report = run_shard_kill_crashtest(
            seeds=1, rounds=2, ops_per_round=3, pause_ms=20
        )
        assert report.ok(), [str(f) for f in report.failures]
        assert report.crashes == 2
        assert report.recoveries == 2
