"""Tests for the XPath lexer and parser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath import parse_xpath
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    NodeTest,
    NumberLiteral,
    PathExpr,
    StringLiteral,
)
from repro.xpath.lexer import tokenize


class TestLexer:
    def test_simple_path(self):
        kinds = [t.kind for t in tokenize("/a/b")]
        assert kinds == ["/", "name", "/", "name"]

    def test_double_slash(self):
        kinds = [t.kind for t in tokenize("//x")]
        assert kinds == ["//", "name"]

    def test_axis_tokens(self):
        kinds = [t.kind for t in tokenize("following-sibling::a")]
        assert kinds == ["name", "::", "name"]
        assert tokenize("following-sibling::a")[0].value == \
            "following-sibling"

    def test_number_and_dotdot(self):
        values = [t.kind for t in tokenize("a[1]/..")]
        assert values == ["name", "[", "number", "]", "/", ".."]

    def test_decimal_number(self):
        token = tokenize("3.14")[0]
        assert token.kind == "number"
        assert token.value == "3.14"

    def test_string_literals_both_quotes(self):
        assert tokenize("'it'")[0].value == "it"
        assert tokenize('"x y"')[0].value == "x y"

    def test_unterminated_string(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_comparison_operators(self):
        kinds = [t.kind for t in tokenize("a != b <= c >= d")]
        assert "!=" in kinds and "<=" in kinds and ">=" in kinds

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a # b")


class TestParserPaths:
    def test_relative_child_steps(self):
        path = parse_xpath("a/b/c")
        assert not path.absolute
        assert [s.test.name for s in path.steps] == ["a", "b", "c"]
        assert all(s.axis == "child" for s in path.steps)

    def test_absolute_path(self):
        path = parse_xpath("/a")
        assert path.absolute
        assert len(path.steps) == 1

    def test_bare_root(self):
        path = parse_xpath("/")
        assert path.absolute
        assert path.steps == ()

    def test_double_slash_expansion(self):
        path = parse_xpath("//b")
        assert path.absolute
        assert path.steps[0].axis == "descendant-or-self"
        assert path.steps[0].test.kind == "node"
        assert path.steps[1].test.name == "b"

    def test_inner_double_slash(self):
        path = parse_xpath("/a//b")
        assert len(path.steps) == 3
        assert path.steps[1].axis == "descendant-or-self"

    def test_explicit_axes(self):
        path = parse_xpath("ancestor::x/following-sibling::y")
        assert path.steps[0].axis == "ancestor"
        assert path.steps[1].axis == "following-sibling"

    def test_attribute_abbreviation(self):
        path = parse_xpath("a/@id")
        assert path.steps[1].axis == "attribute"
        assert path.steps[1].test.name == "id"

    def test_dot_and_dotdot(self):
        path = parse_xpath("./../x")
        assert path.steps[0].axis == "self"
        assert path.steps[1].axis == "parent"

    def test_wildcard(self):
        path = parse_xpath("a/*")
        assert path.steps[1].test.kind == "wildcard"

    def test_node_type_tests(self):
        path = parse_xpath("a/text()")
        assert path.steps[1].test.kind == "text"
        path = parse_xpath("a/comment()")
        assert path.steps[1].test.kind == "comment"
        path = parse_xpath("a/node()")
        assert path.steps[1].test.kind == "node"

    def test_element_named_like_node_test_without_parens(self):
        path = parse_xpath("a/text")
        assert path.steps[1].test == NodeTest("name", "text")

    def test_unknown_axis_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("sideways::x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a/b]")

    def test_empty_expression_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("")


class TestParserPredicates:
    def test_number_predicate(self):
        step = parse_xpath("a[3]").steps[0]
        assert step.predicates == (NumberLiteral(3.0),)

    def test_multiple_predicates(self):
        step = parse_xpath("a[1][@x]").steps[0]
        assert len(step.predicates) == 2

    def test_position_comparison(self):
        (pred,) = parse_xpath("a[position() <= 5]").steps[0].predicates
        assert isinstance(pred, BinaryOp)
        assert pred.op == "<="
        assert pred.left == FunctionCall("position")

    def test_last_function(self):
        (pred,) = parse_xpath("a[last()]").steps[0].predicates
        assert pred == FunctionCall("last")

    def test_existence_path_predicate(self):
        (pred,) = parse_xpath("book[author]").steps[0].predicates
        assert isinstance(pred, PathExpr)
        assert pred.path.steps[0].test.name == "author"

    def test_attribute_comparison(self):
        (pred,) = parse_xpath('book[@year = "2000"]').steps[0].predicates
        assert isinstance(pred, BinaryOp)
        assert isinstance(pred.left, PathExpr)
        assert pred.right == StringLiteral("2000")

    def test_and_or_precedence(self):
        (pred,) = parse_xpath("a[@x = 1 or @y = 2 and @z = 3]").steps[0] \
            .predicates
        assert pred.op == "or"
        assert pred.right.op == "and"

    def test_parenthesised_expression(self):
        (pred,) = parse_xpath("a[(@x = 1 or @y = 2) and @z = 3]") \
            .steps[0].predicates
        assert pred.op == "and"
        assert pred.left.op == "or"

    def test_not_function(self):
        (pred,) = parse_xpath("a[not(@x)]").steps[0].predicates
        assert pred == FunctionCall("not", (PathExpr(
            parse_xpath("@x")),))

    def test_count_function(self):
        (pred,) = parse_xpath("a[count(b) > 2]").steps[0].predicates
        assert pred.left.name == "count"

    def test_contains_function(self):
        (pred,) = parse_xpath("a[contains(title, 'xml')]").steps[0] \
            .predicates
        assert pred.name == "contains"
        assert len(pred.args) == 2

    def test_wrong_arity_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a[position(1)]")
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a[contains(x)]")

    def test_nested_path_predicate(self):
        (pred,) = parse_xpath("a[b/c = 'x']").steps[0].predicates
        assert isinstance(pred.left, PathExpr)
        assert len(pred.left.path.steps) == 2

    def test_absolute_path_in_predicate(self):
        (pred,) = parse_xpath("a[/root/flag = '1']").steps[0].predicates
        assert pred.left.path.absolute

    def test_predicate_on_attribute_step(self):
        path = parse_xpath("a/@id")
        assert path.steps[1].axis == "attribute"

    def test_text_comparison(self):
        (pred,) = parse_xpath("a[text() = 'x']").steps[0].predicates
        assert pred.left.path.steps[0].test.kind == "text"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "expr",
        [
            "/a/b[2]/c",
            "//x[@id = \"7\"]",
            "a/following-sibling::b[last()]",
            "book[author and price]",
            "a[position() <= 3]/text()",
            "ancestor::x",
        ],
    )
    def test_str_reparses_equal(self, expr):
        path = parse_xpath(expr)
        assert parse_xpath(str(path)) == path
