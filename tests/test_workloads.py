"""Tests for the workload package: generators, update streams, mixer."""

import pytest

from repro.store import XmlStore
from repro.workload import (
    MixedWorkload,
    ORDERED_QUERIES,
    UNORDERED_QUERIES,
    UpdateWorkload,
    article_corpus,
    catalog_corpus,
    document_stats,
    make_fragment,
    random_document,
    sized_article_corpus,
)
from repro.workload.queries import CATALOG_QUERIES
from repro.xmldom import Document, Element, Text, serialize


class TestDocGen:
    def test_article_corpus_shape(self):
        doc = article_corpus(articles=5)
        assert doc.root.tag == "journal"
        articles = doc.root.find_children("article")
        assert len(articles) == 5
        first = articles[0]
        assert first.get("id") == "a1"
        assert first.find_children("title")
        assert first.find_children("section")

    def test_article_corpus_deterministic(self):
        a = serialize(article_corpus(articles=3, seed=9))
        b = serialize(article_corpus(articles=3, seed=9))
        assert a == b
        c = serialize(article_corpus(articles=3, seed=10))
        assert a != c

    def test_catalog_corpus_shape(self):
        doc = catalog_corpus(products=4)
        products = doc.root.find_children("product")
        assert len(products) == 4
        for product in products:
            assert product.get("sku")
            (price,) = product.find_children("price")
            float(price.text_value())  # numeric simple content

    def test_sized_corpus_hits_target(self):
        doc = sized_article_corpus(3000)
        nodes = document_stats(doc)["nodes"]
        assert 1500 <= nodes <= 6000

    def test_random_document_no_adjacent_text(self):
        for seed in range(30):
            doc = random_document(seed)
            for node in doc.iter_preorder():
                if isinstance(node, Element):
                    for left, right in zip(node.children,
                                           node.children[1:]):
                        assert not (
                            isinstance(left, Text)
                            and isinstance(right, Text)
                        )

    def test_document_stats(self):
        doc = article_corpus(articles=2)
        stats = document_stats(doc)
        assert stats["nodes"] > stats["elements"] > 0
        assert stats["max_depth"] >= 4

    def test_simple_content_fields(self):
        """Value-bearing fields must have a single text child (the
        direct-text materialisation requirement)."""
        doc = article_corpus(articles=4)
        for node in doc.iter_preorder():
            if isinstance(node, Element) and node.tag in (
                "title", "author", "para",
            ):
                assert len(node.children) == 1
                assert isinstance(node.children[0], Text)


class TestQuerySuites:
    def test_suites_are_nonempty_and_distinct(self):
        ids = [q.id for q in ORDERED_QUERIES + UNORDERED_QUERIES
               + CATALOG_QUERIES]
        assert len(ids) == len(set(ids))
        assert len(ORDERED_QUERIES) == 8
        assert len(UNORDERED_QUERIES) == 4

    def test_all_queries_parse(self):
        from repro.xpath import parse_xpath

        for query in ORDERED_QUERIES + UNORDERED_QUERIES + \
                CATALOG_QUERIES:
            parse_xpath(query.xpath)

    def test_queries_return_results_on_default_corpus(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(article_corpus(articles=10))
        for query in ORDERED_QUERIES + UNORDERED_QUERIES:
            assert store.query(query.xpath, doc), query.id

    def test_catalog_queries_return_results(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(catalog_corpus(products=20))
        for query in CATALOG_QUERIES:
            assert store.query(query.xpath, doc), query.id


class TestUpdateWorkload:
    def _store(self, encoding="dewey"):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(article_corpus(articles=4))
        return store, doc

    def test_make_fragment_size(self):
        fragment = make_fragment(payload_nodes=4)
        carrier = Document()
        carrier.append(fragment)
        assert carrier.node_count() >= 3

    def test_insert_positions(self):
        store, doc = self._store()
        workload = UpdateWorkload(store, doc, seed=1)
        root = store.query("/journal", doc)[0].node_id
        n_before = store.node_count(doc)
        for where in ("first", "middle", "last", "random"):
            workload.insert_at(root, where)
        assert store.node_count(doc) > n_before

    def test_insert_stream_accumulates(self):
        store, doc = self._store("global")
        workload = UpdateWorkload(store, doc)
        root = store.query("/journal", doc)[0].node_id
        result = workload.insert_stream(root, "first", 3)
        assert result.operations == 3
        assert result.inserted >= 3
        assert result.relabeled > 0  # dense global front inserts

    def test_delete_random(self):
        store, doc = self._store()
        workload = UpdateWorkload(store, doc, seed=2)
        before = store.node_count(doc)
        report = workload.delete_random("/journal/article/section")
        assert report is not None
        assert store.node_count(doc) < before

    def test_delete_random_no_candidates(self):
        store, doc = self._store()
        workload = UpdateWorkload(store, doc)
        assert workload.delete_random("//nonexistent") is None


class TestMixedWorkload:
    def test_zero_fraction_runs_only_queries(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(article_corpus(articles=4))
        mix = MixedWorkload(
            store, doc, ORDERED_QUERIES,
            insert_parent_xpath="/journal/article/section[1]",
        )
        result = mix.run(operations=10, update_fraction=0.0)
        assert result.query_operations == 10
        assert result.update_operations == 0
        assert result.update_seconds == 0

    def test_full_fraction_runs_only_updates(self):
        store = XmlStore(backend="sqlite", encoding="local")
        doc = store.load(article_corpus(articles=4))
        mix = MixedWorkload(
            store, doc, ORDERED_QUERIES,
            insert_parent_xpath="/journal/article/section[1]",
        )
        result = mix.run(operations=10, update_fraction=1.0)
        assert result.update_operations == 10
        assert result.total_seconds >= result.update_seconds

    def test_schedule_is_seed_deterministic(self):
        counts = []
        for _ in range(2):
            store = XmlStore(backend="sqlite", encoding="dewey")
            doc = store.load(article_corpus(articles=4))
            mix = MixedWorkload(
                store, doc, UNORDERED_QUERIES,
                insert_parent_xpath="/journal/article/section[1]",
                seed=7,
            )
            result = mix.run(operations=20, update_fraction=0.5)
            counts.append(
                (result.query_operations, result.update_operations)
            )
        assert counts[0] == counts[1]

    def test_bad_parent_xpath_rejected(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load(article_corpus(articles=2))
        with pytest.raises(ValueError):
            MixedWorkload(
                store, doc, ORDERED_QUERIES,
                insert_parent_xpath="//nothing",
            )
