"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main, open_store

BIB = (
    '<bib><book year="1994"><title>TCP/IP</title>'
    "<author>Stevens</author></book>"
    '<book year="2000"><title>Data on the Web</title>'
    "<author>Abiteboul</author></book></bib>"
)


@pytest.fixture
def bib_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(BIB)
    return str(path)


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "store.db")


def run(args) -> int:
    return main(args)


class TestLoadAndQuery:
    def test_load_reports_stats(self, bib_file, db, capsys):
        assert run(["load", bib_file, "--db", db]) == 0
        out = capsys.readouterr().out
        assert "loaded document 1" in out
        assert "dewey" in out

    def test_query_prints_rows(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        assert run(["query", "/bib/book/title", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "TCP/IP" in out and "Data on the Web" in out

    def test_query_show_sql(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        run(["query", "/bib/book[1]", "--db", db, "--show-sql"])
        out = capsys.readouterr().out
        assert "SELECT DISTINCT" in out
        assert "node_dewey" in out

    def test_query_xml_output(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        run(["query", "/bib/book[1]/title", "--db", db, "--xml"])
        out = capsys.readouterr().out
        assert "<title>TCP/IP</title>" in out

    def test_attribute_query(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        run(["query", "//book/@year", "--db", db, "--xml"])
        out = capsys.readouterr().out
        assert 'year="1994"' in out

    def test_encoding_choice(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db, "--encoding", "global"])
        out = capsys.readouterr().out
        assert "global" in out
        run(["query", "/bib/book[2]/author", "--db", db])
        assert "Abiteboul" in capsys.readouterr().out

    def test_encoding_mismatch_rejected(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db, "--encoding", "local"])
        capsys.readouterr()
        code = run(["load", bib_file, "--db", db, "--encoding", "dewey"])
        assert code == 1
        assert "cannot reopen" in capsys.readouterr().err

    def test_missing_file(self, db, capsys):
        assert run(["load", "/nonexistent.xml", "--db", db]) == 1
        assert "error" in capsys.readouterr().err


class TestUpdatesAndDump:
    def test_insert_and_dump(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        assert run([
            "insert", "<book><title>New</title></book>",
            "--db", db, "--parent", "/bib", "--index", "0",
        ]) == 0
        capsys.readouterr()
        run(["dump", "--db", db])
        out = capsys.readouterr().out
        assert out.index("<title>New</title>") < out.index("TCP/IP")

    def test_insert_appends_by_default(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        run(["insert", "<book><title>Z</title></book>",
             "--db", db, "--parent", "/bib"])
        capsys.readouterr()
        run(["query", "/bib/book[last()]/title", "--db", db])
        assert "Z" in capsys.readouterr().out

    def test_delete_single(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        assert run(["delete", "/bib/book[1]", "--db", db]) == 0
        capsys.readouterr()
        run(["query", "/bib/book/title", "--db", db])
        out = capsys.readouterr().out
        assert "TCP/IP" not in out
        assert "Data on the Web" in out

    def test_delete_multiple_needs_all_flag(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        capsys.readouterr()
        assert run(["delete", "//author", "--db", db]) == 1
        assert "--all" in capsys.readouterr().err
        assert run(["delete", "//author", "--db", db, "--all"]) == 0

    def test_bad_parent(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        code = run(["insert", "<x/>", "--db", db,
                    "--parent", "//nothing"])
        assert code == 1


class TestInfoAndSql:
    def test_info_lists_documents(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        run(["load", bib_file, "--db", db, "--name", "second"])
        capsys.readouterr()
        run(["info", "--db", db])
        out = capsys.readouterr().out
        assert "bib" in out and "second" in out

    def test_raw_sql(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        capsys.readouterr()
        run(["sql", "SELECT COUNT(*) FROM node_dewey", "--db", db])
        out = capsys.readouterr().out.strip()
        assert out == "11"  # the bib fixture shreds into 11 nodes

    def test_query_without_documents(self, db, capsys):
        code = run(["query", "/x", "--db", db])
        assert code == 1
        assert "no documents" in capsys.readouterr().err


class TestOpenStoreHelper:
    def test_persists_gap(self, bib_file, tmp_path):
        db = str(tmp_path / "gapped.db")
        run(["load", bib_file, "--db", db, "--encoding", "global",
             "--gap", "32"])
        store = open_store(db)
        assert store.encoding.name == "global"
        assert store.gap == 32

    def test_memory_store(self):
        store = open_store(":memory:", "dewey")
        assert store.encoding.name == "dewey"


class TestDrop:
    def test_drop_document(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        run(["load", bib_file, "--db", db, "--name", "again"])
        capsys.readouterr()
        assert run(["drop", "1", "--db", db]) == 0
        capsys.readouterr()
        run(["info", "--db", db])
        out = capsys.readouterr().out
        assert "again" in out
        assert out.count("bib") <= 1  # only the second doc remains

    def test_drop_unknown(self, db, capsys):
        assert run(["drop", "9", "--db", db]) == 1


class TestObservabilityCommands:
    def test_trace_prints_span_tree(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        assert run(["trace", "//book/title", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "query" in out
        assert "translate" in out
        assert "execute" in out
        assert "leaf spans cover" in out
        assert "query.executed" in out

    def test_trace_seeds_empty_store(self, db, capsys):
        assert run(["trace", "//item[2]/name", "--db", db]) == 0
        captured = capsys.readouterr()
        assert "seeded a 100-item demo document" in captured.err
        assert "1 result(s)" in captured.err

    def test_trace_json(self, bib_file, db, capsys):
        import json

        run(["load", bib_file, "--db", db])
        capsys.readouterr()
        assert run(["trace", "//author", "--db", db, "--json"]) == 0
        out = capsys.readouterr().out
        tree = json.loads(out)
        assert tree["spans"][0]["name"] == "query"

    def test_stats_prints_counters_and_slow_log(self, bib_file, db,
                                                capsys):
        run(["load", bib_file, "--db", db])
        assert run(["stats", "//book/title", "--db", db,
                    "--repeat", "2", "--slow-ms", "0"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "query.executed" in out
        assert "slow query" in out

    def test_stats_json(self, db, capsys):
        import json

        assert run(["stats", "--db", db, "--repeat", "1",
                    "--json"]) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out)
        assert snapshot["counters"]["query.executed"] == 2

    def test_observability_is_off_afterwards(self, db):
        from repro.obs import METRICS, slow_log

        run(["trace", "//item/name", "--db", db])
        run(["stats", "--db", db, "--repeat", "1"])
        assert not METRICS.enabled
        assert slow_log() is None


class TestExperimentsCommand:
    @pytest.mark.slow
    def test_fast_suite_prints_tables(self, capsys):
        assert run(["experiments", "--fast"]) == 0
        out = capsys.readouterr().out
        # Every experiment table renders with its id and title.
        for eid in ("E1:", "E3:", "E7:", "E11:", "E13:"):
            assert eid in out


# Each CLI invocation opens an independent store handle on the db file;
# handles opened *before* a migration keep their stale catalog cache (no
# cross-connection invalidation), so the blanket teardown audit would
# misread them.  The tests audit explicitly through `repro check`, which
# opens a fresh handle.
@pytest.mark.skip_audit
class TestMigrateCommand:
    def test_migrate_to_target(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db, "--encoding", "global"])
        assert run(["migrate", "--db", db, "--to", "dewey"]) == 0
        out = capsys.readouterr().out
        assert "migrated document 1: global -> dewey" in out
        # The catalog survives reopen and info shows the new encoding.
        assert run(["info", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "dewey" in out
        assert run(["query", "/bib/book/title", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "TCP/IP" in out
        assert run(["check", "--db", db]) == 0

    def test_migrate_noop(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db, "--encoding", "dewey"])
        assert run(["migrate", "--db", db, "--to", "dewey"]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_migrate_requires_a_mode(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        assert run(["migrate", "--db", db]) == 1
        assert "--to ENCODING" in capsys.readouterr().err

    def test_migrate_to_conflicts_with_advise(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db])
        assert run(["migrate", "--db", db, "--to", "global",
                    "--advise"]) == 1
        assert "conflicts" in capsys.readouterr().err

    def test_advise_from_counters_file(self, bib_file, db, tmp_path,
                                       capsys):
        import json

        run(["load", bib_file, "--db", db, "--encoding", "global"])
        counters = tmp_path / "counters.json"
        counters.write_text(json.dumps({
            "counters": {
                "query.executed": 40,
                "updates.renumber_ops": 60,
            }
        }))
        assert run(["migrate", "--db", db, "--advise",
                    "--counters", str(counters)]) == 0
        out = capsys.readouterr().out
        assert "migrate -> local" in out
        assert "E7 crossover" in out
        # --advise only prints; the document is unchanged.
        store = open_store(db)
        assert store.encoding_for(1).name == "global"
        store.close()

    def test_auto_migrates_on_recommendation(self, bib_file, db,
                                             tmp_path, capsys):
        import json

        run(["load", bib_file, "--db", db, "--encoding", "global"])
        counters = tmp_path / "counters.json"
        counters.write_text(json.dumps({
            "counters": {
                "query.executed": 40,
                "updates.renumber_ops": 60,
            }
        }))
        assert run(["migrate", "--db", db, "--auto",
                    "--counters", str(counters)]) == 0
        out = capsys.readouterr().out
        assert "migrated document 1: global -> local" in out
        store = open_store(db)
        assert store.encoding_for(1).name == "local"
        store.close()

    def test_auto_holds_below_min_samples(self, bib_file, db, capsys):
        run(["load", bib_file, "--db", db, "--encoding", "global"])
        assert run(["migrate", "--db", db, "--auto"]) == 0
        out = capsys.readouterr().out
        assert "hold" in out
        store = open_store(db)
        assert store.encoding_for(1).name == "global"
        store.close()

    def test_stats_surfaces_migrate_counters(self, db, capsys):
        assert run(["stats", "--db", db, "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        for name in ("migrate.started", "migrate.completed",
                     "migrate.aborted"):
            assert name in out


@pytest.mark.skip_audit  # the harnesses audit internally
class TestMigrationHarnessCommands:
    @pytest.mark.slow
    def test_crashtest_migrate_flag(self, capsys):
        assert run(["crashtest", "--migrate", "--seeds", "1",
                    "--encodings", "global,dewey",
                    "--backends", "sqlite",
                    "--crashes-per-op", "2"]) == 0
        out = capsys.readouterr().out
        assert "crashtest:" in out
        assert "OK" in out

    @pytest.mark.slow
    def test_fuzz_migrate_during_flag(self, capsys):
        assert run(["fuzz", "--migrate-during", "--seeds", "1",
                    "--ops", "10", "--encodings", "global",
                    "--check-every", "5"]) == 0
        out = capsys.readouterr().out
        assert "fuzz:" in out
        assert "OK" in out

    def test_fuzz_migrate_during_rejects_minidb(self, capsys):
        assert run(["fuzz", "--migrate-during", "--seeds", "1",
                    "--ops", "5", "--encodings", "global",
                    "--backends", "minidb"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "sqlite" in err
