"""Tests for minidb snapshot persistence (save/open round trips)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.minidb import MiniDb
from repro.minidb import persist
from repro.robust import (
    SAVE_CRASH_STAGES,
    garble_file,
    simulate_crash_during_save,
    truncate_file,
)
from repro.store import XmlStore


@pytest.fixture
def populated():
    db = MiniDb()
    db.execute(
        "CREATE TABLE t (a INTEGER, b REAL, c TEXT, d BLOB)"
    )
    db.execute("CREATE INDEX ix_t_a ON t (a, c)")
    db.execute("CREATE UNIQUE INDEX ux_t_c ON t (c)")
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?, ?)",
        [
            (1, 1.5, "one", b"\x01\x02"),
            (None, None, "two", None),
            (-7, 2.25, "three", b""),
        ],
    )
    return db


class TestRoundTrip:
    def test_rows_survive(self, populated, tmp_path):
        path = tmp_path / "db.mdb"
        populated.save(path)
        loaded = MiniDb.open(path)
        rows = loaded.execute("SELECT a, b, c, d FROM t ORDER BY c").rows
        assert rows == populated.execute(
            "SELECT a, b, c, d FROM t ORDER BY c"
        ).rows

    def test_indexes_rebuilt_and_used(self, populated, tmp_path):
        path = tmp_path / "db.mdb"
        populated.save(path)
        loaded = MiniDb.open(path)
        lines = loaded.explain("SELECT c FROM t WHERE a = 1")
        assert "INDEX ix_t_a" in lines[0]

    def test_unique_constraint_survives(self, populated, tmp_path):
        path = tmp_path / "db.mdb"
        populated.save(path)
        loaded = MiniDb.open(path)
        with pytest.raises(ExecutionError):
            loaded.execute(
                "INSERT INTO t VALUES (9, 0.0, 'one', NULL)"
            )

    def test_deleted_rows_not_persisted(self, populated, tmp_path):
        populated.execute("DELETE FROM t WHERE c = 'two'")
        path = tmp_path / "db.mdb"
        populated.save(path)
        loaded = MiniDb.open(path)
        assert loaded.row_count("t") == 2

    def test_empty_database(self, tmp_path):
        db = MiniDb()
        path = tmp_path / "empty.mdb"
        db.save(path)
        loaded = MiniDb.open(path)
        assert loaded.table_names() == []

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.mdb"
        path.write_bytes(b"NOPE whatever")
        with pytest.raises(ExecutionError):
            MiniDb.open(path)

    def test_truncated_file_rejected(self, populated, tmp_path):
        path = tmp_path / "db.mdb"
        populated.save(path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(ExecutionError):
            MiniDb.open(path)

    def test_oversized_integer_rejected(self, tmp_path):
        db = MiniDb()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (?)", (1 << 70,))
        with pytest.raises(ExecutionError):
            db.save(tmp_path / "big.mdb")

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-(2**63), 2**63 - 1)),
                st.one_of(st.none(), st.text(max_size=8)),
                st.one_of(st.none(), st.binary(max_size=8)),
            ),
            max_size=20,
        )
    )
    def test_random_contents_roundtrip(self, rows):
        import tempfile
        from pathlib import Path

        db = MiniDb()
        db.execute("CREATE TABLE r (a INTEGER, b TEXT, c BLOB)")
        db.executemany("INSERT INTO r VALUES (?, ?, ?)", rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "rand.mdb"
            db.save(path)
            loaded = MiniDb.open(path)
        original = sorted(
            db.execute("SELECT a, b, c FROM r").rows,
            key=repr,
        )
        restored = sorted(
            loaded.execute("SELECT a, b, c FROM r").rows,
            key=repr,
        )
        assert restored == original


class TestCrashSafeSnapshots:
    """Atomicity of the temp-write + rotate save protocol."""

    def _db_with_value(self, value):
        db = MiniDb()
        db.execute("CREATE TABLE g (v TEXT)")
        db.execute("INSERT INTO g VALUES (?)", (value,))
        return db

    def _value(self, db):
        return db.execute("SELECT v FROM g").rows[0][0]

    def test_save_leaves_no_temp_file(self, populated, tmp_path):
        path = tmp_path / "db.mdb"
        populated.save(path)
        assert not persist.temp_path(path).exists()

    def test_second_save_keeps_previous_generation(self, tmp_path):
        path = tmp_path / "db.mdb"
        self._db_with_value("gen1").save(path)
        assert not persist.previous_path(path).exists()
        self._db_with_value("gen2").save(path)
        assert self._value(MiniDb.open(path)) == "gen2"
        prev = MiniDb.open(persist.previous_path(path))
        assert self._value(prev) == "gen1"

    def test_garbled_primary_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "db.mdb"
        self._db_with_value("gen1").save(path)
        self._db_with_value("gen2").save(path)
        garble_file(path, random.Random(0))
        assert self._value(MiniDb.open(path)) == "gen1"

    def test_truncated_primary_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "db.mdb"
        self._db_with_value("gen1").save(path)
        self._db_with_value("gen2").save(path)
        truncate_file(path, keep_fraction=0.5)
        assert self._value(MiniDb.open(path)) == "gen1"

    def test_garbled_primary_without_previous_raises(self, tmp_path):
        path = tmp_path / "db.mdb"
        self._db_with_value("gen1").save(path)
        garble_file(path, random.Random(1))
        with pytest.raises(ExecutionError):
            MiniDb.open(path)

    def test_verify_snapshot_detects_corruption(self, populated, tmp_path):
        path = tmp_path / "db.mdb"
        populated.save(path)
        persist.verify_snapshot(path)  # clean file passes
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # body bit-flip: CRC must catch it
        path.write_bytes(bytes(raw))
        with pytest.raises(ExecutionError):
            persist.verify_snapshot(path)

    @pytest.mark.parametrize("stage", SAVE_CRASH_STAGES)
    def test_kill_mid_save_never_loses_good_generation(
        self, stage, tmp_path
    ):
        # Whatever instant the process dies at during save, reopening
        # must yield the last good generation — here always gen1, since
        # gen2 never completed its rename into place.
        path = tmp_path / "db.mdb"
        self._db_with_value("gen1").save(path)
        simulate_crash_during_save(
            self._db_with_value("gen2"), path, stage, random.Random(2)
        )
        assert self._value(MiniDb.open(path)) == "gen1"
        # ... and the next completed save proceeds normally.
        self._db_with_value("gen3").save(path)
        assert self._value(MiniDb.open(path)) == "gen3"

    @pytest.mark.parametrize("stage", SAVE_CRASH_STAGES)
    def test_kill_mid_save_with_two_generations(self, stage, tmp_path):
        # With a .prev already in place the crash may clobber it during
        # rotation, but some good generation (gen1 or gen2) survives.
        path = tmp_path / "db.mdb"
        self._db_with_value("gen1").save(path)
        self._db_with_value("gen2").save(path)
        simulate_crash_during_save(
            self._db_with_value("gen3"), path, stage, random.Random(3)
        )
        assert self._value(MiniDb.open(path)) in ("gen1", "gen2")


class TestStoreLevelPersistence:
    def test_whole_xml_store_survives(self, tmp_path):
        from repro.backends import MiniDbBackend

        backend = MiniDbBackend()
        store = XmlStore(backend=backend, encoding="dewey")
        doc = store.load(
            "<bib><book year='2000'><title>T</title></book></bib>"
        )
        path = tmp_path / "store.mdb"
        backend.db.save(path)

        reloaded_backend = MiniDbBackend()
        reloaded_backend.db = MiniDb.open(path)
        reloaded = XmlStore(backend=reloaded_backend, encoding="dewey")
        assert reloaded.query_values("//title/text()", doc) == ["T"]
        assert reloaded.reconstruct(doc).structurally_equal(
            store.reconstruct(doc)
        )
