"""Tests for the B+-tree index structure."""

import random

from hypothesis import given, settings, strategies as st

from repro.minidb.btree import BPlusTree


class TestBasics:
    def test_insert_and_get(self):
        tree = BPlusTree()
        tree.insert((1,), 10)
        tree.insert((2,), 20)
        assert tree.get((1,)) == [10]
        assert tree.get((3,)) == []

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree()
        tree.insert((1,), 10)
        tree.insert((1,), 11)
        assert sorted(tree.get((1,))) == [10, 11]
        assert len(tree) == 2

    def test_delete(self):
        tree = BPlusTree()
        tree.insert((1,), 10)
        tree.insert((1,), 11)
        assert tree.delete((1,), 10)
        assert tree.get((1,)) == [11]
        assert not tree.delete((1,), 99)
        assert not tree.delete((9,), 1)

    def test_items_in_key_order(self):
        tree = BPlusTree()
        for value in [5, 3, 8, 1, 9, 2]:
            tree.insert((value,), value)
        assert [k[0] for k, _v in tree.items()] == [1, 2, 3, 5, 8, 9]


class TestRangeScan:
    def _tree(self, n=100):
        tree = BPlusTree()
        order = list(range(n))
        random.Random(1).shuffle(order)
        for value in order:
            tree.insert((value,), value)
        return tree

    def test_closed_range(self):
        tree = self._tree()
        got = [v for _k, v in tree.scan((10,), (15,))]
        assert got == [10, 11, 12, 13, 14, 15]

    def test_open_bounds(self):
        tree = self._tree()
        got = [v for _k, v in tree.scan((10,), (15,), False, False)]
        assert got == [11, 12, 13, 14]

    def test_unbounded_low(self):
        tree = self._tree()
        got = [v for _k, v in tree.scan(None, (3,))]
        assert got == [0, 1, 2, 3]

    def test_unbounded_high(self):
        tree = self._tree()
        got = [v for _k, v in tree.scan((97,), None)]
        assert got == [97, 98, 99]

    def test_empty_range(self):
        tree = self._tree()
        assert list(tree.scan((50,), (40,))) == []

    def test_scan_after_heavy_deletes(self):
        tree = self._tree(200)
        for value in range(0, 200, 2):
            assert tree.delete((value,), value)
        got = [v for _k, v in tree.scan((0,), (20,))]
        assert got == [1, 3, 5, 7, 9, 11, 13, 15, 17, 19]


class TestSplitsAtScale:
    def test_many_sequential_inserts(self):
        tree = BPlusTree()
        for value in range(5000):
            tree.insert((value,), value)
        assert len(tree) == 5000
        assert [v for _k, v in tree.scan((4990,), None)] == \
            list(range(4990, 5000))

    def test_many_reverse_inserts(self):
        tree = BPlusTree()
        for value in reversed(range(3000)):
            tree.insert((value,), value)
        assert [v for _k, v in tree.scan(None, (5,))] == [0, 1, 2, 3, 4, 5]


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(0, 50),
        ),
        max_size=200,
    ),
    low=st.integers(0, 50),
    high=st.integers(0, 50),
)
def test_matches_reference_model(operations, low, high):
    """The tree behaves like a sorted multiset of (key, rowid) pairs."""
    tree = BPlusTree()
    reference: list[tuple[int, int]] = []
    counter = 0
    for op, key in operations:
        if op == "insert":
            tree.insert((key,), counter)
            reference.append((key, counter))
            counter += 1
        else:
            matching = [r for k, r in reference if k == key]
            if matching:
                rowid = matching[0]
                assert tree.delete((key,), rowid)
                reference.remove((key, rowid))
            else:
                assert not tree.delete((key,), 999_999)
    lo, hi = min(low, high), max(low, high)
    got = sorted(tree.scan((lo,), (hi,)))
    want = sorted(
        ((k,), r) for k, r in reference if lo <= k <= hi
    )
    assert got == want
    assert len(tree) == len(reference)
