"""Integration stress: a realistic document through the whole stack.

One moderately sized corpus (≈2k nodes), every encoding, sqlite:
load -> full ordered/unordered query suite vs the oracle -> a batch of
updates -> queries again -> reconstruction.  Slower than the unit suites
(a few seconds total) but exercises every subsystem together.
"""

import pytest

from repro.store import XmlStore
from repro.workload import (
    ORDERED_QUERIES,
    UNORDERED_QUERIES,
    UpdateWorkload,
    article_corpus,
    document_stats,
)
from repro.xpath import Evaluator
from tests.conftest import ALL_ENCODINGS, oracle_identities, \
    store_identities

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def corpus():
    document = article_corpus(articles=50)
    assert document_stats(document)["nodes"] > 1500
    return document


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_full_lifecycle(encoding, corpus):
    store = XmlStore(backend="sqlite", encoding=encoding)
    doc = store.load(corpus)

    # 1. The whole query suite agrees with the oracle on the fresh doc.
    for query in ORDERED_QUERIES + UNORDERED_QUERIES:
        got = store_identities(store, doc, query.xpath)
        want = oracle_identities(corpus, query.xpath)
        assert got == want, (encoding, query.id)

    # 2. A burst of mixed updates at several depths.
    workload = UpdateWorkload(store, doc, seed=13)
    root = store.query("/journal", doc)[0].node_id
    sections = workload.container_ids("/journal/article/section")
    for index, parent in enumerate([root, *sections[:8]]):
        workload.insert_at(
            parent, ("first", "middle", "last")[index % 3],
            payload_nodes=4,
        )
    for _ in range(4):
        workload.delete_random("/journal/article/section/para")
    deleted_article = workload.delete_random("/journal/article")
    assert deleted_article is not None

    # 3. Catalogue bookkeeping stayed exact.
    assert store.document_info(doc).node_count == store.node_count(doc)

    # 4. Post-update queries (text/attribute results) agree with the
    # oracle evaluated over the reconstructed document.
    from repro.xpath import string_value

    rebuilt = store.reconstruct(doc)
    evaluator = Evaluator(rebuilt)
    for xpath in (
        "/journal/article[2]/section[1]/para[1]/text()",
        "//article[1]/following-sibling::article[1]/title/text()",
        "//section/title/text()",
        "//article/@id",
    ):
        got = [item.value for item in store.query(xpath, doc)]
        want = [
            string_value(node) for node in evaluator.evaluate(xpath)
        ]
        assert got == want, (encoding, xpath)

    # 5. Round trip to a second store preserves everything.
    second = XmlStore(backend="sqlite", encoding=encoding)
    doc2 = second.load(rebuilt)
    assert second.reconstruct(doc2).structurally_equal(rebuilt)
