"""Golden-SQL snapshots and the pre-refactor stats baseline.

Three guards around the dialect-compiled translation path:

* the exact SQL text the sqlite dialect emits for a fixed corpus, per
  encoding, against a checked-in golden file (``tests/data/golden_sql.json``);
* structural parity between the two dialects: the statement the minidb
  dialect builds directly must equal what the minidb SQL parser produces
  from the sqlite dialect's text;
* the :class:`TranslationStats` that :func:`compute_stats` derives from
  the expression AST, against the counts the pre-AST translators
  reported for the same corpus (captured before the refactor).

Regenerate the golden file after an intentional SQL-shape change with::

    PYTHONPATH=src python tests/test_golden_sql.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.core.translator import make_translator
from repro.core.translator.shape import extract_shape
from repro.index import IndexContext
from repro.xpath import parse_xpath

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_sql.json"

ENCODINGS = ("global", "local", "dewey", "ordpath")
MAX_DEPTH = 6

#: Fixed corpus for the SQL-text snapshots: one query per structural
#: family (join chain, descendant, deep attribute, positional, value
#: predicate, last(), document order, union, count, boolean-not).
SNAPSHOT_QUERIES = (
    "/bib/book/title",
    "/bib//title",
    "//@id",
    "/bib/book[2]",
    "/bib/book[author = 'Smith']/title",
    "/bib/book[last()]",
    "/bib/book[1]/following::title",
    "//title | //author",
    "/bib/book[count(author) > 1]/title",
    "/bib/book[not(@id)]",
)

#: Per-query relational-operation counts reported by the pre-refactor
#: string-assembling translators at max_depth=6, captured immediately
#: before the AST rewrite: [joins, exists, count, or_expansions].
#: global/dewey/ordpath agree everywhere; local differs only where an
#: override is listed.
STATS_BASELINE = {
    "/bib/book/title": [2, 0, 0, 0],
    "/bib//title": [1, 0, 0, 0],
    "//book": [0, 0, 0, 0],
    "//@id": [1, 0, 0, 0],
    "/bib/book[2]": [1, 0, 1, 0],
    "/bib/book[position() <= 3]/title": [2, 0, 1, 0],
    "/bib/book[last()]": [1, 1, 0, 0],
    "/bib/book[author = 'Smith']/title": [2, 1, 0, 0],
    "/bib/book[price < 10]": [1, 1, 0, 0],
    "/bib/book[contains(title, 'Web')]": [1, 1, 0, 0],
    "/bib/book[starts-with(title, 'T')]": [1, 1, 0, 0],
    "/bib/book[author][@year]": [1, 2, 0, 0],
    "/bib/book/author[1]/following-sibling::author": [3, 0, 1, 0],
    "/bib/book[1]/following::title": [2, 0, 1, 0],
    "/bib/book/title/parent::book": [3, 0, 0, 0],
    "/bib/book/ancestor::bib": [2, 0, 0, 0],
    "//book/ancestor-or-self::*": [1, 0, 0, 0],
    "/bib/book[count(author) > 1]/title": [2, 0, 1, 0],
    "/bib/book[not(@id)]": [1, 1, 0, 0],
    "//title | //author": [0, 0, 0, 0],
    "/bib/book/@id | //@year": [3, 0, 0, 0],
    "/bib/book[@id = 'b1' or @id = 'b2']": [1, 2, 0, 0],
    "/bib/book/descendant::text()": [2, 0, 0, 0],
    "/bib/book[3]/preceding-sibling::book": [2, 0, 1, 0],
}

#: The local encoding pays depth-expansion arms (and sometimes an extra
#: EXISTS) on vertical-recursion and document-order axes.
LOCAL_OVERRIDES = {
    "/bib//title": [1, 0, 0, 4],
    "/bib/book[1]/following::title": [2, 1, 1, 8],
    "/bib/book/ancestor::bib": [2, 0, 0, 4],
    "//book/ancestor-or-self::*": [1, 0, 0, 4],
    "/bib/book/descendant::text()": [2, 0, 0, 4],
}


#: Synthetic catalog statistics large enough that every indexable query
#: in the corpus lands on the index side of the cost crossover — the
#: snapshots pin the *plan shape*, the crossover itself is pinned by
#: the cost-model unit tests.
INDEX_STATS = IndexContext(
    doc=1, stats_version=3, node_count=100_000, element_count=60_000,
    max_depth=6, path_count=40, updates_since=0,
    tag_counts={"bib": 1, "book": 2_000, "title": 2_000,
                "author": 3_000, "price": 2_000},
    distinct_counts={"book": 1, "title": 1_800, "author": 900,
                     "price": 400},
)

#: Indexable corpus: structural paths (path index), value predicates
#: (value index), and one positional query that must stay a scan even
#: with indexes available.
INDEX_SNAPSHOT_QUERIES = (
    "/bib/book/title",
    "/bib//title",
    "//price",
    "/bib/book[author = 'Smith']/title",
    "/bib/book[price < 10]",
    "/bib/book[2]",
)


def snapshot_sql(encoding: str) -> dict:
    translator = make_translator(encoding, MAX_DEPTH)
    return {
        xpath: translator.translate(xpath, doc=1).sql
        for xpath in SNAPSHOT_QUERIES
    }


def snapshot_index_plans(encoding: str) -> dict:
    """Access-path choice, index names, and SQL under INDEX_STATS."""
    translator = make_translator(encoding, MAX_DEPTH)
    out = {}
    for xpath in INDEX_SNAPSHOT_QUERIES:
        shaped, _literals = extract_shape(parse_xpath(xpath))
        plan = translator.compile(
            shaped, dialect="sqlite", index=INDEX_STATS
        )
        out[xpath] = {
            "access_path": plan.access_path,
            "index_names": list(plan.index_names),
            "sql": plan.sql,
        }
    return out


class TestGoldenSql:
    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        assert GOLDEN_PATH.exists(), (
            "golden file missing; regenerate with "
            "PYTHONPATH=src python tests/test_golden_sql.py --regen"
        )
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_text_sql_matches_golden(self, golden, encoding):
        got = snapshot_sql(encoding)
        want = golden[encoding]
        assert set(got) == set(want)
        for xpath in SNAPSHOT_QUERIES:
            assert got[xpath] == want[xpath], (
                f"{encoding}: SQL drifted for {xpath!r}; if intentional, "
                "regenerate tests/data/golden_sql.json"
            )

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_no_literals_embedded_in_snapshots(self, golden, encoding):
        # Predicate literals must never leak into the plan text.
        for xpath, sql in golden[encoding].items():
            for literal in ("Smith", "'1'", "'3'"):
                assert literal not in sql, (xpath, literal)


class TestGoldenIndexPlans:
    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        payload = json.loads(GOLDEN_PATH.read_text())
        assert "index_plans" in payload, (
            "index-plan snapshots missing; regenerate with "
            "PYTHONPATH=src python tests/test_golden_sql.py --regen"
        )
        return payload["index_plans"]

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_index_plans_match_golden(self, golden, encoding):
        got = snapshot_index_plans(encoding)
        want = golden[encoding]
        assert set(got) == set(want)
        for xpath in INDEX_SNAPSHOT_QUERIES:
            assert got[xpath] == want[xpath], (
                f"{encoding}: index plan drifted for {xpath!r}; if "
                "intentional, regenerate tests/data/golden_sql.json"
            )

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_expected_access_paths(self, golden, encoding):
        """Under INDEX_STATS the corpus splits exactly as designed:
        structural paths use the path index, value predicates the
        value index, and the positional query stays a scan."""
        plans = golden[encoding]
        assert plans["/bib/book/title"]["access_path"] == "path-index"
        assert plans["/bib//title"]["access_path"] == "path-index"
        assert plans["//price"]["access_path"] == "path-index"
        assert plans["/bib/book[author = 'Smith']/title"][
            "access_path"] == "value-index"
        assert plans["/bib/book[price < 10]"][
            "access_path"] == "value-index"
        assert plans["/bib/book[2]"]["access_path"] == "scan"
        for xpath, plan in plans.items():
            if plan["access_path"] == "scan":
                assert plan["index_names"] == [], xpath
            else:
                assert plan["index_names"], xpath

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_no_literals_in_index_plans(self, golden, encoding):
        # Neither predicate literals nor the path-match pattern may be
        # embedded in the SQL text: both arrive as bound parameters, so
        # the plan cache can share one plan across literal values.
        for xpath, plan in golden[encoding].items():
            sql = plan["sql"]
            for literal in ("Smith", "'10'", "'/bib", "'//"):
                assert literal not in sql, (xpath, literal)


class TestDialectParity:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_minidb_statement_equals_parsed_text(self, encoding):
        """The structured statement handed to minidb is exactly what
        the minidb parser would build from the sqlite dialect's text:
        the two compilers cannot drift apart silently."""
        from repro.minidb.sql_parser import parse_sql

        translator = make_translator(encoding, MAX_DEPTH)
        for xpath in SNAPSHOT_QUERIES:
            shaped, _literals = extract_shape(parse_xpath(xpath))
            plan = translator.compile(shaped, dialect="minidb")
            assert plan.statement is not None, xpath
            assert plan.statement == parse_sql(plan.sql), xpath

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_minidb_index_plans_equal_parsed_text(self, encoding):
        """Dialect parity holds for index-rewritten plans too, and both
        dialects make the same access-path choice from the same
        statistics — the cost decision lives in the translator, not
        the engine."""
        from repro.minidb.sql_parser import parse_sql

        translator = make_translator(encoding, MAX_DEPTH)
        for xpath in INDEX_SNAPSHOT_QUERIES:
            shaped, _literals = extract_shape(parse_xpath(xpath))
            sqlite_plan = translator.compile(
                shaped, dialect="sqlite", index=INDEX_STATS
            )
            minidb_plan = translator.compile(
                shaped, dialect="minidb", index=INDEX_STATS
            )
            assert minidb_plan.access_path == sqlite_plan.access_path
            assert minidb_plan.index_names == sqlite_plan.index_names
            assert minidb_plan.statement is not None, xpath
            assert minidb_plan.statement == parse_sql(
                minidb_plan.sql
            ), xpath


class TestStatsBaseline:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_ast_stats_match_pre_refactor_counts(self, encoding):
        """compute_stats over the expression AST reproduces the counts
        the pre-refactor translators accumulated while gluing strings —
        E9's cost model is unchanged by the rewrite."""
        translator = make_translator(encoding, MAX_DEPTH)
        for xpath, base in STATS_BASELINE.items():
            if encoding == "local":
                base = LOCAL_OVERRIDES.get(xpath, base)
            stats = translator.translate(xpath, doc=1).stats
            got = [
                stats.joins,
                stats.exists_subqueries,
                stats.count_subqueries,
                stats.or_expansions,
            ]
            assert got == base, (encoding, xpath)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        payload = {enc: snapshot_sql(enc) for enc in ENCODINGS}
        payload["index_plans"] = {
            enc: snapshot_index_plans(enc) for enc in ENCODINGS
        }
        GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        print("usage: PYTHONPATH=src python tests/test_golden_sql.py --regen")
