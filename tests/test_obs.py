"""Tests for the observability layer (repro.obs)."""

from __future__ import annotations

import threading

import pytest

from repro.backends import make_backend
from repro.errors import TransientStorageError
from repro.obs import (
    METRICS,
    current_tracer,
    disable_slow_log,
    enable_slow_log,
    span,
    tracing,
)
from repro.obs.tracer import _NULL_SPAN
from repro.robust import (
    FaultInjectingBackend,
    FaultPlan,
    RetryPolicy,
    TransientInjectedError,
)
from repro.store import XmlStore


@pytest.fixture
def metrics():
    """The process registry, enabled and zeroed for one test."""
    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    yield METRICS
    METRICS.enabled = was_enabled
    METRICS.reset()


@pytest.fixture(autouse=True)
def _no_leaked_slow_log():
    yield
    disable_slow_log()


class TestSpans:
    def test_disabled_path_returns_shared_noop(self):
        assert current_tracer() is None
        assert not METRICS.enabled
        assert span("anything") is _NULL_SPAN
        assert span("other", attr=1) is _NULL_SPAN
        with span("still-noop"):
            pass

    def test_nesting_builds_a_tree(self):
        with tracing() as tracer:
            with span("root", xpath="//a"):
                with span("child-1"):
                    with span("grandchild"):
                        pass
                with span("child-2"):
                    pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "root"
        assert root.attrs == {"xpath": "//a"}
        assert [c.name for c in root.children] == ["child-1", "child-2"]
        assert root.children[0].children[0].name == "grandchild"
        assert all(s.closed for s in tracer.iter_spans())
        assert all(s.status == "ok" for s in tracer.iter_spans())
        assert tracer.open_span_count() == 0
        # Children nest inside the parent's timing.
        assert root.duration_seconds >= max(
            c.duration_seconds for c in root.children
        )

    def test_exception_closes_and_marks_spans(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with span("outer"):
                    with span("inner"):
                        raise ValueError("boom")
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.closed and inner.closed
        assert outer.status == "error"
        assert inner.status == "error"
        assert "boom" in inner.error
        assert tracer.open_span_count() == 0
        # A later span starts a fresh root, not a child of the dead one.
        with tracing(tracer):
            with span("after"):
                pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]

    def test_span_metrics_and_collect(self, metrics):
        phases: dict[str, float] = {}
        with span("phase-a", collect=phases):
            pass
        with span("phase-a", collect=phases):
            pass
        snapshot = metrics.snapshot()
        assert snapshot["histograms"]["span.phase-a"]["count"] == 2
        assert list(phases) == ["phase-a"]
        assert phases["phase-a"] >= 0.0

    def test_tracer_json_and_aggregate(self):
        with tracing() as tracer:
            with span("q"):
                with span("translate"):
                    pass
                with span("execute"):
                    pass
        tree = tracer.to_dict()["spans"][0]
        assert tree["name"] == "q"
        assert [c["name"] for c in tree["children"]] == [
            "translate", "execute",
        ]
        aggregate = tracer.aggregate()
        assert aggregate["q"]["count"] == 1
        assert aggregate["translate"]["count"] == 1
        assert "{" in tracer.to_json()


class TestMetricsRegistry:
    def test_disabled_increments_are_dropped(self):
        assert not METRICS.enabled
        METRICS.inc("nope")
        METRICS.observe("nope.hist", 1.0)
        assert METRICS.counter("nope") == 0

    def test_eight_threads_hammering_counters(self, metrics):
        threads = 8
        per_thread = 5000
        barrier = threading.Barrier(threads)

        def hammer(k: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                metrics.inc("hammer.total")
                metrics.inc(f"hammer.thread-{k}")
                metrics.observe("hammer.values", float(i))

        workers = [
            threading.Thread(target=hammer, args=(k,))
            for k in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["hammer.total"] == threads * per_thread
        for k in range(threads):
            assert counters[f"hammer.thread-{k}"] == per_thread
        hist = snapshot["histograms"]["hammer.values"]
        assert hist["count"] == threads * per_thread
        assert hist["min"] == 0.0
        assert hist["max"] == float(per_thread - 1)
        assert hist["total"] == pytest.approx(
            threads * per_thread * (per_thread - 1) / 2
        )

    def test_reset_zeroes_all_threads(self, metrics):
        metrics.inc("a", 3)
        worker = threading.Thread(target=lambda: metrics.inc("b", 2))
        worker.start()
        worker.join()
        assert metrics.counter("a") == 3
        assert metrics.counter("b") == 2
        metrics.reset()
        assert metrics.snapshot()["counters"] == {}


class TestInstrumentedStore:
    def test_query_counters_and_spans(self, metrics):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load("<a><b>1</b><b>2</b></a>")
        with tracing() as tracer:
            items = store.query("//b", doc)
        assert len(items) == 2
        counters = metrics.snapshot()["counters"]
        assert counters["query.executed"] == 1
        assert counters["query.rows"] == 2
        assert counters["translate.queries"] == 1
        assert counters["load.documents"] == 1
        assert counters["load.nodes"] == 5
        assert counters["backend.statements"] >= 1
        names = {s.name for s in tracer.iter_spans()}
        assert {"query", "translate", "execute"} <= names
        assert tracer.open_span_count() == 0

    def test_faulted_runs_leave_no_open_spans(self):
        """Property: spans balance even when the backend faults.

        Runs a query/update stream against a fault-injecting backend
        three ways — retried transients, unretried transients, and an
        exhausted retry budget — and asserts every span opened under
        the tracer was closed.
        """
        retry = RetryPolicy(attempts=6, base_delay=0.0,
                            max_delay=0.0, seed=5,
                            sleep=lambda _d: None)
        injected = FaultInjectingBackend(make_backend("sqlite"))
        store = XmlStore(backend=injected, encoding="dewey",
                         retry=retry)
        # Pin indexes off: eager index maintenance would multiply the
        # statements each faulted operation replays, and the three
        # fault scenarios are tuned to the unindexed statement counts.
        store.indexes.force_mode = "off"
        doc = store.load("<list><i>1</i><i>2</i><i>3</i></list>")

        with tracing() as tracer:
            injected.arm(FaultPlan(seed=13, transient_rate=0.05,
                                   max_consecutive_transients=2))
            for n in range(4):
                store.updates.insert(doc, 1, 0, f"<i>{n}</i>")
                store.query("//i", doc)
            injected.arm(None)
        assert tracer.open_span_count() == 0
        assert all(s.closed for s in tracer.iter_spans())

        # Without a retry policy the transient surfaces — spans still
        # balance on the error path.
        bare = XmlStore(backend=FaultInjectingBackend(
            make_backend("sqlite")), encoding="dewey")
        bare_doc = bare.load("<a/>")
        bare.backend.arm(FaultPlan(transient_rate=0.99,
                                   max_consecutive_transients=1))
        with tracing() as bare_tracer:
            with pytest.raises(TransientInjectedError):
                bare.query("/a", bare_doc)
        bare.backend.arm(None)
        assert bare_tracer.open_span_count() == 0
        assert all(s.closed for s in bare_tracer.iter_spans())

        # Exhausted budget: the typed error propagates through every
        # span layer; all of them must still close.
        tired = XmlStore(
            backend=FaultInjectingBackend(make_backend("sqlite")),
            encoding="dewey",
            retry=RetryPolicy(attempts=2, sleep=lambda _d: None),
        )
        tired_doc = tired.load("<a/>")
        tired.backend.arm(FaultPlan(transient_rate=0.99,
                                    max_consecutive_transients=99))
        with tracing() as tired_tracer:
            with pytest.raises(TransientStorageError):
                tired.query("/a", tired_doc)
        tired.backend.arm(None)
        assert tired_tracer.open_span_count() == 0
        assert all(s.closed for s in tired_tracer.iter_spans())


class TestSlowQueryLog:
    def test_threshold_and_breakdown(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load("<a><b>x</b></a>")
        log = enable_slow_log(threshold_ms=0.0, capacity=10)
        store.query("//b", doc)
        entries = log.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.xpath == "//b"
        assert "SELECT" in entry.sql
        assert entry.elapsed_ms > 0
        assert {"translate", "execute"} <= set(entry.breakdown_ms)
        assert sum(entry.breakdown_ms.values()) <= entry.elapsed_ms
        assert "slow query" in entry.render()

    def test_fast_queries_not_recorded(self):
        store = XmlStore(backend="sqlite", encoding="dewey")
        doc = store.load("<a/>")
        log = enable_slow_log(threshold_ms=10_000.0)
        store.query("/a", doc)
        assert log.entries() == []
        assert log.recorded == 0

    def test_ring_buffer_evicts_oldest(self):
        log = enable_slow_log(threshold_ms=0.0, capacity=2)
        for n in range(4):
            log.maybe_record(f"//q{n}", "SELECT 1", (), 5.0)
        assert [e.xpath for e in log.entries()] == ["//q2", "//q3"]
        assert log.recorded == 4

    def test_updates_counters_through_store(self, metrics):
        store = XmlStore(backend="sqlite", encoding="global")
        doc = store.load("<list><i>a</i><i>b</i></list>")
        store.updates.insert(doc, 1, 0, "<i>new</i>")
        store.updates.delete(doc, store.fetch_children(doc, 1)[0]["id"])
        counters = metrics.snapshot()["counters"]
        assert counters["updates.inserts"] == 1
        assert counters["updates.deletes"] == 1
        # A dense global-encoding head insert must relabel followers.
        assert counters["updates.renumber_ops"] >= 1
        assert counters["updates.relabeled"] >= 1
        assert counters["updates.rows_touched"] >= 2
