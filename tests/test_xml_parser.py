"""Tests for the XML tokenizer and parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmldom import (
    Comment,
    Element,
    ProcessingInstruction,
    Text,
    parse,
    parse_fragment,
)
from repro.xmldom.tokenizer import (
    CommentToken,
    EndTagToken,
    PIToken,
    StartTagToken,
    TextToken,
    Tokenizer,
)


def tokens(source):
    return list(Tokenizer(source).tokens())


class TestTokenizer:
    def test_simple_element(self):
        result = tokens("<a>x</a>")
        assert isinstance(result[0], StartTagToken)
        assert result[0].name == "a"
        assert isinstance(result[1], TextToken)
        assert result[1].content == "x"
        assert isinstance(result[2], EndTagToken)

    def test_self_closing(self):
        (tag,) = tokens("<br/>")
        assert tag.self_closing

    def test_attributes_both_quote_styles(self):
        (tag,) = tokens("<a x=\"1\" y='2'/>")
        assert tag.attributes == {"x": "1", "y": "2"}

    def test_attribute_entity_unescaped(self):
        (tag,) = tokens('<a t="a&amp;b"/>')
        assert tag.attributes["t"] == "a&b"

    def test_attribute_whitespace_around_equals(self):
        (tag,) = tokens('<a x = "1"/>')
        assert tag.attributes == {"x": "1"}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokens('<a x="1" x="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokens("<a x=1/>")

    def test_comment(self):
        result = tokens("<a><!-- hi --></a>")
        assert isinstance(result[1], CommentToken)
        assert result[1].content == " hi "

    def test_double_hyphen_in_comment_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokens("<a><!-- a -- b --></a>")

    def test_cdata_preserves_markup(self):
        result = tokens("<a><![CDATA[<b>&amp;</b>]]></a>")
        assert isinstance(result[1], TextToken)
        assert result[1].content == "<b>&amp;</b>"
        assert result[1].is_cdata

    def test_processing_instruction(self):
        result = tokens('<?style href="x"?><a/>')
        assert isinstance(result[0], PIToken)
        assert result[0].target == "style"
        assert result[0].data == 'href="x"'

    def test_xml_declaration_skipped(self):
        result = tokens('<?xml version="1.0"?><a/>')
        assert len(result) == 1
        assert isinstance(result[0], StartTagToken)

    def test_doctype_skipped(self):
        result = tokens("<!DOCTYPE html><a/>")
        assert len(result) == 1

    def test_doctype_with_internal_subset_skipped(self):
        source = '<!DOCTYPE r [<!ENTITY x "y">]><a/>'
        result = tokens(source)
        assert len(result) == 1

    def test_text_entities_unescaped(self):
        result = tokens("<a>1 &lt; 2</a>")
        assert result[1].content == "1 < 2"

    def test_position_tracking(self):
        result = tokens("<a>\n  <b/>\n</a>")
        b_token = result[2]
        assert (b_token.line, b_token.column) == (2, 3)

    def test_unterminated_tag(self):
        with pytest.raises(XmlSyntaxError):
            tokens("<a")

    def test_unterminated_comment(self):
        with pytest.raises(XmlSyntaxError):
            tokens("<a><!-- never closed")

    def test_lt_in_attribute_value_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokens('<a x="<"/>')


class TestParser:
    def test_single_element(self):
        doc = parse("<root/>")
        assert doc.root is not None
        assert doc.root.tag == "root"
        assert doc.root.children == []

    def test_nested_structure(self):
        doc = parse("<a><b><c/></b><d/></a>")
        a = doc.root
        assert [e.tag for e in a.element_children()] == ["b", "d"]
        assert a.children[0].children[0].tag == "c"

    def test_text_content(self):
        doc = parse("<a>hello</a>")
        (text,) = doc.root.children
        assert isinstance(text, Text)
        assert text.content == "hello"

    def test_mixed_content_order_preserved(self):
        doc = parse("<p>one<b>two</b>three</p>")
        kinds = [type(c).__name__ for c in doc.root.children]
        assert kinds == ["Text", "Element", "Text"]

    def test_adjacent_text_and_cdata_merged(self):
        doc = parse("<a>one<![CDATA[two]]>three</a>")
        (text,) = doc.root.children
        assert text.content == "onetwothree"

    def test_attributes(self):
        doc = parse('<a id="1" lang="en"/>')
        assert doc.root.attributes == {"id": "1", "lang": "en"}

    def test_comment_and_pi_in_tree(self):
        doc = parse("<a><!--c--><?p d?></a>")
        comment, pi = doc.root.children
        assert isinstance(comment, Comment)
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "p"

    def test_prolog_comment_attached_to_document(self):
        doc = parse("<!--before--><a/><!--after-->")
        assert isinstance(doc.children[0], Comment)
        assert isinstance(doc.children[2], Comment)
        assert doc.root.tag == "a"

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XmlSyntaxError) as excinfo:
            parse("<a><b></a></b>")
        assert "mismatched" in str(excinfo.value)

    def test_unclosed_element_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse("<a><b></b>")

    def test_extra_close_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse("<a/></a>")

    def test_two_roots_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse("<a/><b/>")

    def test_empty_document_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse("")
        with pytest.raises(XmlSyntaxError):
            parse("<!--only a comment-->")

    def test_text_outside_root_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse("<a/>stray")

    def test_blank_text_outside_root_allowed(self):
        doc = parse("  <a/>  \n")
        assert doc.root.tag == "a"

    def test_strip_whitespace_drops_blank_text(self):
        doc = parse("<a>\n  <b/>\n</a>", strip_whitespace=True)
        assert [type(c).__name__ for c in doc.root.children] == ["Element"]

    def test_strip_whitespace_keeps_mixed_text(self):
        doc = parse("<a> x <b/></a>", strip_whitespace=True)
        assert isinstance(doc.root.children[0], Text)

    def test_parse_fragment(self):
        element = parse_fragment("<x><y/></x>")
        assert isinstance(element, Element)
        assert element.tag == "x"

    def test_deeply_nested(self):
        depth = 200
        source = "".join(f"<n{i}>" for i in range(depth))
        source += "".join(f"</n{i}>" for i in reversed(range(depth)))
        doc = parse(source)
        assert doc.node_count() == depth

    def test_unicode_content(self):
        doc = parse("<a>héllo wörld — 中文</a>")
        assert doc.root.text_value() == "héllo wörld — 中文"
