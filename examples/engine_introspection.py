"""Looking inside the from-scratch engine: plans, counters, snapshots.

The minidb backend exposes what a commercial RDBMS hides: the access
plan each translated query gets, the exact number of rows it touches,
and a binary snapshot format for persistence.  This example shreds a
catalogue into minidb, explains a few translations, compares logical
I/O across encodings, and round-trips the database through a snapshot.

Run:  python examples/engine_introspection.py
"""

import tempfile
from pathlib import Path

from repro import XmlStore
from repro.backends import MiniDbBackend
from repro.minidb import MiniDb
from repro.workload import catalog_corpus


def main() -> None:
    document = catalog_corpus(products=40)

    print("== the plans behind three translations (dewey) ==")
    backend = MiniDbBackend()
    store = XmlStore(backend=backend, encoding="dewey")
    doc = store.load(document)
    for xpath in (
        "/catalog/product[5]/name",
        "//product[price < 50]/name",
        "//review[@rating >= 4]/comment",
    ):
        translated = store.translate(xpath, doc)
        print(f"\n{xpath}")
        for line in backend.db.explain(translated.sql):
            print("   ", line)

    print("\n== logical I/O per encoding (rows touched) ==")
    probe = "/catalog/product[10]/following-sibling::product[1]/name"
    for encoding in ("global", "local", "dewey"):
        eng_backend = MiniDbBackend()
        eng_store = XmlStore(backend=eng_backend, encoding=encoding)
        eng_doc = eng_store.load(document)
        eng_backend.db.reset_stats()
        eng_store.query(probe, eng_doc)
        stats = eng_backend.db.stats
        print(f"  {encoding:8} rows_read={stats.rows_read:6} "
              f"index_scans={stats.index_scans:4} "
              f"full_scans={stats.full_scans}")

    print("\n== snapshot persistence ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "catalog.mdb"
        backend.db.save(path)
        size = path.stat().st_size
        reloaded = MiniDb.open(path)
        count = reloaded.execute(
            "SELECT COUNT(*) FROM node_dewey"
        ).rows[0][0]
        print(f"  saved {size} bytes; reloaded {count} node rows; "
              f"indexes: {sorted(reloaded.catalog.indexes)[:3]} ...")

    restored_backend = MiniDbBackend()
    restored_backend.db = reloaded
    restored = XmlStore(backend=restored_backend, encoding="dewey")
    names = restored.query_values("/catalog/product[1]/name/text()", doc)
    print(f"  first product after reload: {names}")


if __name__ == "__main__":
    main()
