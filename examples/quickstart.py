"""Quickstart: store ordered XML in a relational backend and query it.

Run:  python examples/quickstart.py
"""

from repro import XmlStore, serialize

BIB = """
<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author>Stevens</author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author>Abiteboul</author><author>Buneman</author>
    <author>Suciu</author><price>39.95</price></book>
  <book year="1999"><title>Economics</title>
    <author>Smith</author><price>10</price></book>
</bib>
"""


def main() -> None:
    # A store = one relational backend + one order encoding.
    # Backends: "sqlite" (stdlib) or "minidb" (the bundled from-scratch
    # engine).  Encodings: "global", "local", or "dewey".
    store = XmlStore(backend="sqlite", encoding="dewey")
    doc = store.load(BIB, name="bib", strip_whitespace=True)

    print("== ordered XPath over SQL ==")
    for xpath in (
        "/bib/book[2]/author[1]",            # positional predicates
        "/bib/book[last()]/title",           # last()
        "//title/following-sibling::author", # sibling order
        "//book[@year < 2000]/title",        # value predicates
        "//book[count(author) > 1]/@year",   # aggregation
    ):
        values = [item.value for item in store.query(xpath, doc)]
        print(f"  {xpath:42} -> {values}")

    print("\n== the SQL the store actually runs ==")
    translated = store.translate("/bib/book[2]/author[1]", doc)
    print(" ", translated.sql)

    print("\n== ordered updates ==")
    root = store.query("/bib", doc)[0].node_id
    report = store.updates.insert(
        doc, root, 1,
        "<book year='2002'><title>Ordered XML</title>"
        "<author>Tatarinov</author><price>0</price></book>",
    )
    print(f"  inserted {report.inserted} rows, "
          f"relabeled {report.relabeled} existing rows")
    print("  titles now:",
          [i.value for i in store.query("/bib/book/title", doc)])

    print("\n== reconstruction ==")
    print(serialize(store.reconstruct(doc), pretty=True))


if __name__ == "__main__":
    main()
