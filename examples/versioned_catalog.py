"""Data-centric, update-heavy scenario: maintaining a product catalogue.

New products arrive in the middle of category listings, reviews are
appended, and stale products are deleted.  The example runs the same
maintenance script under all three encodings (dense and sparse) and
reports the renumbering bill each one pays — the paper's update-cost
story, live.

Run:  python examples/versioned_catalog.py
"""

from repro import XmlStore
from repro.workload import catalog_corpus


def maintenance_script(store: XmlStore, doc: int) -> dict[str, int]:
    """A day of catalogue churn; returns cost counters."""
    relabeled = 0
    inserted = 0
    deleted = 0
    catalog_id = store.query("/catalog", doc)[0].node_id

    # Ten new products arrive at the front of the catalogue (newest
    # first ordering — the painful case for position-based encodings).
    for step in range(10):
        report = store.updates.insert(
            doc, catalog_id, 0,
            f"<product sku='new{step:03d}' category='books'>"
            f"<name>New arrival {step}</name>"
            f"<price>19.99</price><stock>5</stock></product>",
        )
        relabeled += report.relabeled
        inserted += report.inserted

    # Reviews are appended to the first five products (cheap for all).
    for position in range(1, 6):
        product = store.query(
            f"/catalog/product[{position}]", doc
        )[0].node_id
        report = store.updates.append(
            doc, product,
            "<review rating='5'><comment>great</comment></review>",
        )
        relabeled += report.relabeled
        inserted += report.inserted

    # Out-of-stock products are dropped.
    for item in store.query("//product[stock = 0]", doc)[:5]:
        report = store.updates.delete(doc, item.node_id)
        deleted += report.deleted

    return {
        "inserted": inserted, "deleted": deleted, "relabeled": relabeled,
    }


def main() -> None:
    document = catalog_corpus(products=60)
    print("== catalogue maintenance cost per encoding ==")
    print(f"{'encoding':10} {'gap':>4} {'inserted':>9} {'deleted':>8} "
          f"{'relabeled':>10}")
    for encoding in ("global", "local", "dewey"):
        for gap in (1, 32):
            store = XmlStore(
                backend="sqlite", encoding=encoding, gap=gap
            )
            doc = store.load(document, name="catalog")
            costs = maintenance_script(store, doc)
            print(
                f"{encoding:10} {gap:>4} {costs['inserted']:>9} "
                f"{costs['deleted']:>8} {costs['relabeled']:>10}"
            )

    print("\nReading guide: dense Global relabels the catalogue tail on "
          "every front insertion;\nLocal shifts a handful of sibling "
          "slots; Dewey relabels the following products'\nsubtrees. "
          "With gap=32 (sparse numbering) the whole burst is absorbed "
          "without\nrelabeling anything — experiment E10's point.")

    # The data stays queryable and ordered throughout.
    store = XmlStore(backend="sqlite", encoding="dewey", gap=32)
    doc = store.load(document)
    maintenance_script(store, doc)
    newest = store.query_values("/catalog/product[1]/name/text()", doc)
    print("\nnewest product after maintenance:", newest)
    cheap = store.query_values(
        "//product[price < 20]/name/text()", doc
    )
    print(f"{len(cheap)} products under 20.00")


if __name__ == "__main__":
    main()
