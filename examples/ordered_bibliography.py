"""Document-centric scenario: an ordered journal archive.

Section and paragraph order carry meaning in document-centric XML — the
paper's motivating case.  This example loads the article corpus under all
three encodings, runs the ordered query suite on each, shows the SQL each
encoding generates for a document-order query, and prints a small timing
comparison (Local's depth-expansion queries are visibly slower on the
``following``/``preceding`` axes).

Run:  python examples/ordered_bibliography.py
"""

import time

from repro import XmlStore
from repro.workload import ORDERED_QUERIES, article_corpus


def main() -> None:
    document = article_corpus(articles=15)
    stores = {}
    for encoding in ("global", "local", "dewey"):
        store = XmlStore(backend="sqlite", encoding=encoding)
        doc = store.load(document, name="journal")
        stores[encoding] = (store, doc)

    print("== ordered query suite: milliseconds per encoding ==")
    header = f"{'query':6} {'feature':28}" + "".join(
        f"{name:>10}" for name in stores
    )
    print(header)
    for query in ORDERED_QUERIES:
        cells = []
        for store, doc in stores.values():
            started = time.perf_counter()
            result = store.query(query.xpath, doc)
            elapsed = (time.perf_counter() - started) * 1000
            cells.append(f"{elapsed:9.2f}")
        print(f"{query.id:6} {query.feature:28}" + " ".join(cells)
              + f"   ({len(result)} rows)")

    print("\n== how each encoding translates a document-order query ==")
    xpath = "/journal/article[3]/following::author"
    for encoding, (store, doc) in stores.items():
        translated = store.translate(xpath, doc)
        ops = translated.stats.total_relational_operations()
        print(f"\n[{encoding}] {ops} relational ops"
              f"{' + client-side ordering' if translated.needs_client_order else ''}:")
        sql = translated.sql
        print(" ", sql if len(sql) < 400 else sql[:400] + " ...")

    print("\n== navigating an article in order ==")
    store, doc = stores["dewey"]
    first_titles = store.query_values(
        "/journal/article[1]/section/title/text()", doc
    )
    print("  article 1 section titles, in order:", first_titles)
    second_para = store.query_values(
        "/journal/article[1]/section[1]/para[2]/text()", doc
    )
    print("  article 1, section 1, paragraph 2:", second_para)


if __name__ == "__main__":
    main()
