"""Choosing an encoding for *your* workload: the crossover study.

Runs the mixed query/update workload at increasing update fractions over
all three encodings and prints the winner at each point — a miniature of
the paper's headline experiment (E7), plus the storage numbers (E1) that
complete the trade-off picture.

Run:  python examples/encoding_tradeoffs.py [operations]
"""

import sys

from repro.bench.experiments import run_e1_storage, run_e7_mixed_workload


def main() -> None:
    operations = int(sys.argv[1]) if len(sys.argv) > 1 else 120

    print("Running the mixed-workload crossover "
          f"({operations} operations per cell; ~30s)...\n")
    table = run_e7_mixed_workload(
        articles=15,
        operations=operations,
        fractions=(0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
    )
    print(table.render())

    print("\nStorage cost of each encoding (label bytes per node):\n")
    print(run_e1_storage(sizes=(2000,)).render())

    print(
        "\nRule of thumb, as in the paper:\n"
        "  read-mostly + ordered queries  -> Global (or Dewey)\n"
        "  write-heavy                    -> Local\n"
        "  anything in between            -> Dewey, ideally with gaps\n"
    )


if __name__ == "__main__":
    main()
