"""Fault injection: seeded transient errors, simulated crashes, torn
snapshots.

The adversary for the recovery machinery in this package.  A
:class:`FaultInjectingBackend` wraps any :class:`~repro.backends.base.
Backend` and, driven by a seeded :class:`FaultPlan`, either

* raises a :class:`TransientInjectedError` *before* a statement runs
  (sqlite-BUSY-style: the statement had no effect and retrying it is
  safe), or
* hard-crashes the store at the Nth statement: the wrapped engine is
  discarded exactly as a process death would leave it (the sqlite
  connection is closed abruptly so its uncommitted transaction is
  lost; the minidb engine object is dropped) and a
  :class:`SimulatedCrash` sentinel propagates.

:class:`SimulatedCrash` derives from ``BaseException`` so ordinary
``except Exception`` recovery code — including the retry policy —
cannot accidentally absorb a "process death".

:func:`simulate_crash_during_save` produces the exact on-disk states an
interrupted :func:`repro.minidb.persist.save` can leave behind, for the
torn-snapshot recovery tests.
"""

from __future__ import annotations

import os
import random
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.backends.base import Backend, BackendResult
from repro.errors import DatabaseError
from repro.minidb import persist
from repro.minidb.engine import MiniDb


class SimulatedCrash(BaseException):
    """Sentinel: the process 'died' here.  Not an ``Exception`` on
    purpose — nothing short of the test harness may catch it."""


class TransientInjectedError(DatabaseError):
    """An injected sqlite-BUSY-style fault: the statement did not run
    and retrying it is safe."""


class FaultPlan:
    """A seeded schedule deciding the fate of each statement.

    Parameters
    ----------
    seed:
        Seeds the transient-fault coin flips (deterministic replay).
    transient_rate:
        Probability that a statement attempt first fails transiently.
    max_consecutive_transients:
        Cap on back-to-back transient failures of the same statement,
        so a bounded retry policy is guaranteed to make progress.
        Keep it below the retry policy's attempt budget.
    crash_at_statement:
        1-based index (counting successfully executed statements) at
        which the backend hard-crashes instead of executing.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        max_consecutive_transients: int = 2,
        crash_at_statement: Optional[int] = None,
    ) -> None:
        if not 0.0 <= transient_rate < 1.0:
            raise ValueError(
                f"transient_rate must be in [0, 1), got {transient_rate}"
            )
        self.seed = seed
        self.transient_rate = transient_rate
        self.max_consecutive_transients = max_consecutive_transients
        self.crash_at_statement = crash_at_statement
        self._rng = random.Random(seed)
        self._consecutive = 0

    def next_fault(self, executed_statements: int) -> str:
        """Fate of the statement about to run: ok | transient | crash."""
        if (
            self.crash_at_statement is not None
            and executed_statements + 1 == self.crash_at_statement
        ):
            return "crash"
        if (
            self.transient_rate > 0.0
            and self._consecutive < self.max_consecutive_transients
            and self._rng.random() < self.transient_rate
        ):
            self._consecutive += 1
            return "transient"
        self._consecutive = 0
        return "ok"


class FaultInjectingBackend(Backend):
    """A :class:`Backend` decorator that injects faults per statement.

    Only ``execute``/``executemany`` are gated (and counted — one
    ``executemany`` call is one statement); ``begin``/``commit``/
    ``rollback`` pass through so a plan's statement indexes stay
    deterministic across runs.  After a crash every operation raises
    :class:`SimulatedCrash` except ``rollback``/``close``, which become
    no-ops — a dead process runs no rollback.
    """

    def __init__(
        self, inner: Backend, plan: Optional[FaultPlan] = None
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.supports_if_not_exists = inner.supports_if_not_exists
        self.pooled = getattr(inner, "pooled", False)
        self.statements_executed = 0
        self.crashed = False

    def arm(self, plan: Optional[FaultPlan]) -> None:
        """Install *plan* and restart the statement counter (so schema
        bootstrap statements don't consume the plan's budget)."""
        self.plan = plan
        self.statements_executed = 0

    def _gate(self) -> None:
        if self.crashed:
            raise SimulatedCrash("backend already crashed")
        if self.plan is None:
            return
        fate = self.plan.next_fault(self.statements_executed)
        if fate == "crash":
            self._crash()
        if fate == "transient":
            raise TransientInjectedError(
                "injected transient fault (database is busy)"
            )

    def _crash(self) -> None:
        self.crashed = True
        # Discard the in-memory engine the way a process death would:
        # sqlite's connection closes abruptly (its open transaction is
        # lost; the journal/WAL recovers on reopen), a pooled backend
        # abandons every connection at once, and the minidb engine
        # object is dropped on the floor.
        abandon = getattr(self.inner, "abandon", None)
        if abandon is not None:
            try:
                abandon()
            except Exception:
                pass
        conn = getattr(self.inner, "_conn", None)
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass
        if hasattr(self.inner, "db"):
            self.inner.db = None
        raise SimulatedCrash(
            f"simulated crash at statement {self.statements_executed + 1}"
        )

    # -- gated statement execution ---------------------------------------

    def execute(self, sql: str, params: Sequence = ()) -> BackendResult:
        self._gate()
        result = self.inner.execute(sql, params)
        self.statements_executed += 1
        return result

    def executemany(
        self, sql: str, param_rows: Iterable[Sequence]
    ) -> BackendResult:
        self._gate()
        result = self.inner.executemany(sql, param_rows)
        self.statements_executed += 1
        return result

    # -- ungated passthrough ---------------------------------------------

    def rows_written(self) -> int:
        return self.inner.rows_written()

    def list_tables(self) -> list[str]:
        if self.crashed:
            raise SimulatedCrash("backend already crashed")
        return self.inner.list_tables()

    def analyze(self) -> None:
        if self.crashed:
            raise SimulatedCrash("backend already crashed")
        self.inner.analyze()

    def begin(self) -> None:
        if self.crashed:
            raise SimulatedCrash("backend already crashed")
        self.inner.begin()

    def commit_transaction(self) -> None:
        if self.crashed:
            raise SimulatedCrash("backend already crashed")
        self.inner.commit_transaction()

    def rollback(self) -> None:
        if self.crashed:
            return  # the "process" died; nobody is left to roll back
        self.inner.rollback()

    def close(self) -> None:
        if self.crashed:
            return
        self.inner.close()


# -- snapshot-file faults ------------------------------------------------

#: Stages at which a process death can interrupt an atomic snapshot save.
SAVE_CRASH_STAGES = ("mid-tmp-write", "after-tmp", "mid-rotate")


def simulate_crash_during_save(
    db: MiniDb,
    path: Union[str, Path],
    stage: str,
    rng: Optional[random.Random] = None,
) -> None:
    """Leave the filesystem exactly as an interrupted
    :func:`repro.minidb.persist.save` of *db* to *path* would.

    ``mid-tmp-write``
        died while writing the staging file: a truncated ``.tmp``,
        primary snapshot untouched.
    ``after-tmp``
        died between staging and rotation: a complete ``.tmp``,
        primary snapshot untouched.
    ``mid-rotate``
        died between rotating the old snapshot to ``.prev`` and
        renaming the staged file: no primary, good ``.prev``.
    """
    if stage not in SAVE_CRASH_STAGES:
        raise ValueError(
            f"unknown crash stage {stage!r}; expected one of "
            f"{SAVE_CRASH_STAGES}"
        )
    rng = rng or random.Random(0)
    path = Path(path)
    image = persist.snapshot_bytes(db)
    tmp = persist.temp_path(path)
    if stage == "mid-tmp-write":
        cut = rng.randrange(1, max(len(image), 2))
        tmp.write_bytes(image[:cut])
        return
    tmp.write_bytes(image)
    if stage == "mid-rotate" and path.exists():
        os.replace(path, persist.previous_path(path))


def garble_file(
    path: Union[str, Path],
    rng: Optional[random.Random] = None,
    flips: int = 8,
) -> None:
    """Flip *flips* random bytes of *path* in place (bit-rot / torn
    sector simulation); the CRC footer must catch it."""
    rng = rng or random.Random(0)
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    for _ in range(flips):
        index = rng.randrange(len(data))
        data[index] ^= 1 + rng.randrange(255)
    path.write_bytes(bytes(data))


def truncate_file(
    path: Union[str, Path], keep_fraction: float = 0.5
) -> None:
    """Truncate *path* to a fraction of its size (torn tail write)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(1, int(len(data) * keep_fraction))])
