"""Crash-recovery verification: seeded update streams under simulated
process death.

One crashtest *cell* is a ``(seed, gap, backend, encoding)`` tuple over
a *durable* medium — a file-backed sqlite database, or a minidb engine
checkpointed to an atomic snapshot after every committed operation.
For each operation of a seeded update stream (the same generator the
differential fuzzer uses), the harness:

1. plans the operation against the current durable state and records
   the pre-op state;
2. measures the operation on a scratch clone of the durable medium:
   how many statements it issues, and the post-op state;
3. for each sampled crash point ``c`` in ``[1, statements]``, re-runs
   the operation against the real durable medium with a
   :class:`~repro.robust.faults.FaultInjectingBackend` armed to crash
   at statement ``c`` — the engine is discarded mid-flight exactly as a
   process death would leave it;
4. reopens the store from the durable medium, runs the full invariant
   auditor, and asserts **atomicity**: the recovered state must equal
   either the pre-op or the post-op state, never anything in between;
5. finally applies the operation for real (optionally interrupting the
   minidb snapshot save at a random stage, which must never lose the
   previous good generation) and moves to the next operation.

A second phase (``transient_rate > 0``) replays each cell's full stream
through a store wired with a :class:`~repro.robust.retry.RetryPolicy`
while the backend injects transient BUSY-style faults: the stream must
complete with no caller-visible errors and a clean final audit.

:func:`run_writer_crashtest` extends the harness to the concurrent
write path: a pooled store with a single-writer group-commit queue
stages a whole batch of insert operations, the backend is armed to
crash at a sampled statement inside the batch transaction, and after
the simulated process death the file is reopened and must audit clean
at **exactly** the pre-batch state (the group transaction rolled back
wholly) — never a partially applied batch.

``repro crashtest`` exposes both harnesses on the command line;
failures carry a replaying command line just like fuzz failures.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.backends.minidb_backend import MiniDbBackend
from repro.backends.sqlite_backend import SqliteBackend
from repro.check.fuzz import (
    DEFAULT_ENCODINGS,
    apply_operation,
    plan_operation,
)
from repro.check.invariants import audit_document, audit_store
from repro.minidb import persist
from repro.minidb.engine import MiniDb
from repro.robust.faults import (
    SAVE_CRASH_STAGES,
    FaultInjectingBackend,
    FaultPlan,
    SimulatedCrash,
    simulate_crash_during_save,
)
from repro.robust.retry import RetryPolicy
from repro.store import XmlStore
from repro.workload.docgen import random_document
from repro.xmldom import serialize

DEFAULT_BACKENDS = ("sqlite", "minidb")


# -- configuration and results ------------------------------------------


@dataclass
class CrashTestConfig:
    """Parameters of one crashtest run."""

    #: Number of random documents (seeds ``base_seed .. base_seed+n-1``).
    seeds: int = 2
    #: Update operations applied per cell.
    ops: int = 6
    encodings: Sequence[str] = DEFAULT_ENCODINGS
    backends: Sequence[str] = DEFAULT_BACKENDS
    gaps: Sequence[int] = (1,)
    base_seed: int = 0
    #: Crash points sampled per operation; 0 sweeps every statement.
    crashes_per_op: int = 2
    #: When > 0, also replay each cell's stream with injected transient
    #: faults and a retry policy, asserting zero caller-visible errors.
    transient_rate: float = 0.0
    #: Interrupt the minidb snapshot save at a random stage for this
    #: fraction of checkpoints (tests the generation fallback).
    snapshot_fault_rate: float = 0.25
    #: Shape of the generated documents.
    max_depth: int = 3
    max_children: int = 3

    def cells(self) -> list[tuple[int, int, str, str]]:
        return [
            (self.base_seed + i, gap, backend, encoding)
            for i in range(self.seeds)
            for gap in self.gaps
            for backend in self.backends
            for encoding in self.encodings
        ]


@dataclass(frozen=True)
class CrashFailure:
    """One crashtest failure."""

    seed: int
    gap: int
    backend: str
    encoding: str
    #: 1-based index of the operation under test (0 = initial load).
    op_index: int
    #: Statement the crash was injected at (0 = no crash injected).
    crash_at: int
    #: Human-readable description of the operation.
    op: str
    #: invariant | atomicity | determinism | replay | transient | crash
    kind: str
    detail: str
    #: "ops" = per-operation harness, "writer" = writer-crash harness,
    #: "migrate" = migration sweep, "index" = index-lifecycle sweep.
    mode: str = "ops"

    def repro_command(self) -> str:
        """A CLI line that replays exactly this cell."""
        if self.mode == "writer":
            return (
                f"repro crashtest --seeds 1 --base-seed {self.seed} "
                f"--ops 0 --writer-batches {self.op_index or 1} "
                f"--encodings {self.encoding} --backends sqlite"
            )
        if self.mode == "migrate":
            encodings = self.encoding.replace("->", ",")
            return (
                f"repro crashtest --migrate --seeds 1 "
                f"--base-seed {self.seed} "
                f"--encodings {encodings} --backends {self.backend} "
                "--sweep"
            )
        if self.mode == "index":
            return (
                f"repro crashtest --index --seeds 1 "
                f"--base-seed {self.seed} --gaps {self.gap} "
                f"--encodings {self.encoding} --backends {self.backend} "
                "--sweep"
            )
        return (
            f"repro crashtest --seeds 1 --base-seed {self.seed} "
            f"--ops {self.op_index or 1} --gaps {self.gap} "
            f"--encodings {self.encoding} --backends {self.backend} "
            "--sweep"
        )

    def __str__(self) -> str:
        where = f"op #{self.op_index} [{self.op}]"
        if self.crash_at:
            where += f", crash at statement {self.crash_at}"
        return (
            f"{self.kind} failure in {self.encoding}/{self.backend} "
            f"(seed {self.seed}, gap {self.gap}) after {where}: "
            f"{self.detail}\n  reproduce: {self.repro_command()}"
        )


@dataclass
class CrashTestReport:
    """Aggregate result of a crashtest run."""

    cells: int = 0
    operations: int = 0
    crashes: int = 0
    recoveries: int = 0
    transient_streams: int = 0
    writer_batches: int = 0
    failures: list[CrashFailure] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "CrashTestReport") -> None:
        self.cells += other.cells
        self.operations += other.operations
        self.crashes += other.crashes
        self.recoveries += other.recoveries
        self.transient_streams += other.transient_streams
        self.writer_batches += other.writer_batches
        self.failures.extend(other.failures)

    def summary(self) -> str:
        status = "OK" if self.ok() else f"{len(self.failures)} FAILURE(S)"
        return (
            f"crashtest: {self.cells} cell(s), {self.operations} "
            f"operation(s), {self.crashes} injected crash(es), "
            f"{self.recoveries} recovery check(s), "
            f"{self.transient_streams} transient stream(s), "
            f"{self.writer_batches} writer batch(es): {status}"
        )


# -- durable media ------------------------------------------------------


class _SqliteMedium:
    """A file-backed sqlite store: every commit is already durable."""

    def __init__(self, workdir: Path, encoding: str, gap: int) -> None:
        self.path = workdir / "store.db"
        self.clone = workdir / "scratch.db"
        self.encoding = encoding
        self.gap = gap

    def _open(
        self, path: Path, retry: Optional[RetryPolicy] = None
    ) -> tuple[XmlStore, FaultInjectingBackend]:
        backend = FaultInjectingBackend(SqliteBackend(str(path)))
        store = XmlStore(
            backend=backend, encoding=self.encoding, gap=self.gap,
            retry=retry,
        )
        backend.arm(None)  # schema bootstrap must not consume the plan
        return store, backend

    def open(self, retry: Optional[RetryPolicy] = None):
        return self._open(self.path, retry)

    def open_clone(self):
        """A scratch copy of the durable state (discardable)."""
        for suffix in ("", "-wal", "-shm"):
            target = Path(str(self.clone) + suffix)
            target.unlink(missing_ok=True)
            source = Path(str(self.path) + suffix)
            if source.exists():
                shutil.copyfile(source, target)
        return self._open(self.clone)

    def checkpoint(self, store: XmlStore, rng: random.Random,
                   fault_rate: float) -> None:
        pass  # sqlite transactions are durable at commit

    def save_baseline(self) -> None:
        """Remember the current durable state for :meth:`restore`."""
        self._baseline = Path(str(self.path) + ".baseline")
        _clone_db(self.path, self._baseline)

    def restore_baseline(self) -> None:
        """Reset the durable state to the saved baseline.  The
        migration harness needs this between crash trials: a crash
        *after* the cutover commit legitimately leaves the durable
        file post-migration, which would turn every later trial into
        a no-op."""
        _clone_db(self._baseline, self.path)

    def close(self, store: XmlStore) -> None:
        store.backend.close()


class _MiniDbMedium:
    """An in-memory minidb engine checkpointed to atomic snapshots;
    durability is the last good snapshot generation."""

    def __init__(self, workdir: Path, encoding: str, gap: int) -> None:
        self.snapshot = workdir / "store.mdb"
        self.encoding = encoding
        self.gap = gap

    def _engine(self) -> MiniDb:
        try:
            return MiniDb.open(self.snapshot)
        except FileNotFoundError:
            return MiniDb()  # nothing durable yet: fresh engine

    def _open(self, retry: Optional[RetryPolicy] = None):
        inner = MiniDbBackend()
        inner.db = self._engine()
        backend = FaultInjectingBackend(inner)
        store = XmlStore(
            backend=backend, encoding=self.encoding, gap=self.gap,
            retry=retry,
        )
        backend.arm(None)
        return store, backend

    def open(self, retry: Optional[RetryPolicy] = None):
        return self._open(retry)

    def open_clone(self):
        return self._open()  # loading the snapshot *is* a clone

    def checkpoint(self, store: XmlStore, rng: random.Random,
                   fault_rate: float) -> None:
        """Persist the engine; sometimes die mid-save instead.

        An interrupted save must never lose the previous generation:
        the caller re-opens and reconciles, exactly like a process
        restarting after a crash during checkpointing.
        """
        db = store.backend.inner.db
        if fault_rate > 0.0 and rng.random() < fault_rate:
            stage = rng.choice(SAVE_CRASH_STAGES)
            simulate_crash_during_save(db, self.snapshot, stage, rng)
            raise SimulatedCrash(f"simulated crash during save ({stage})")
        persist.save(db, self.snapshot)

    def save_baseline(self) -> None:
        pass  # trials never checkpoint: the snapshot already is the baseline

    def restore_baseline(self) -> None:
        pass

    def close(self, store: XmlStore) -> None:
        store.backend.close()


def _medium(backend: str, workdir: Path, encoding: str, gap: int):
    if backend == "sqlite":
        return _SqliteMedium(workdir, encoding, gap)
    if backend == "minidb":
        return _MiniDbMedium(workdir, encoding, gap)
    raise ValueError(f"unknown backend {backend!r}")


# -- the driver ---------------------------------------------------------


def _state(store: XmlStore, doc: int) -> tuple:
    """Canonical durable state: serialized document + catalogue row."""
    info = store.document_info(doc)
    return (
        serialize(store.reconstruct(doc)),
        (info.node_count, info.max_depth, info.next_id),
    )


def _audit_detail(store: XmlStore, doc: int) -> Optional[str]:
    violations = audit_document(store, doc)
    if not violations:
        return None
    listing = "; ".join(str(v) for v in violations[:5])
    if len(violations) > 5:
        listing += f" (+{len(violations) - 5} more)"
    return listing


def _run_cell(
    config: CrashTestConfig,
    seed: int,
    gap: int,
    backend_name: str,
    encoding: str,
    workdir: Path,
    report: CrashTestReport,
) -> Optional[CrashFailure]:
    """Crash-test one cell; returns its first failure, if any."""

    def failure(op_index, crash_at, op, kind, detail) -> CrashFailure:
        return CrashFailure(
            seed=seed, gap=gap, backend=backend_name, encoding=encoding,
            op_index=op_index, crash_at=crash_at, op=op, kind=kind,
            detail=detail,
        )

    medium = _medium(backend_name, workdir, encoding, gap)
    document = random_document(
        seed, max_depth=config.max_depth,
        max_children=config.max_children,
    )

    store, _ = medium.open()
    doc = store.load(document)
    medium.checkpoint(store, random.Random(seed), 0.0)
    detail = _audit_detail(store, doc)
    medium.close(store)
    if detail is not None:
        return failure(0, 0, "initial load", "invariant", detail)

    rng = random.Random(seed * 7919 + gap)
    crash_rng = random.Random(seed * 104729 + gap)

    for op_index in range(1, config.ops + 1):
        # 1. Plan against the durable state; record the pre-op state.
        store, _ = medium.open()
        op = plan_operation(rng, store, doc)
        pre = _state(store, doc)
        medium.close(store)

        # 2. Measure on a scratch clone: statement count + post state.
        scratch, counter = medium.open_clone()
        apply_operation(scratch, doc, op)
        statements = counter.statements_executed
        post = _state(scratch, doc)
        medium.close(scratch)
        report.operations += 1

        # 3. Crash trials at sampled (or all) statement boundaries.
        if config.crashes_per_op <= 0 or config.crashes_per_op >= statements:
            points = list(range(1, statements + 1))
        else:
            points = sorted(
                crash_rng.sample(
                    range(1, statements + 1), config.crashes_per_op
                )
            )
        for crash_at in points:
            store, injector = medium.open()
            injector.arm(FaultPlan(crash_at_statement=crash_at))
            crashed = False
            try:
                apply_operation(store, doc, op)
            except SimulatedCrash:
                crashed = True
            report.crashes += 1
            if not crashed:
                return failure(
                    op_index, crash_at, op["describe"], "determinism",
                    f"crash point {crash_at} <= measured statement "
                    f"count {statements} but the operation completed",
                )

            # 4. Recover and verify atomicity + invariants.
            recovered, _ = medium.open()
            detail = _audit_detail(recovered, doc)
            if detail is not None:
                medium.close(recovered)
                return failure(
                    op_index, crash_at, op["describe"], "invariant",
                    detail,
                )
            state = _state(recovered, doc)
            medium.close(recovered)
            report.recoveries += 1
            if state != pre and state != post:
                return failure(
                    op_index, crash_at, op["describe"], "atomicity",
                    "recovered state equals neither the pre-op nor the "
                    "post-op document",
                )

        # 5. Apply for real; checkpoint (possibly dying mid-save).
        store, _ = medium.open()
        apply_operation(store, doc, op)
        try:
            medium.checkpoint(store, crash_rng, config.snapshot_fault_rate)
        except SimulatedCrash:
            medium.close(store)
            recovered, _ = medium.open()
            detail = _audit_detail(recovered, doc)
            if detail is not None:
                medium.close(recovered)
                return failure(
                    op_index, 0, op["describe"], "invariant",
                    f"after interrupted checkpoint: {detail}",
                )
            state = _state(recovered, doc)
            if state == pre:
                # The checkpoint never became durable: the previous
                # generation survived; redo the lost operation.
                apply_operation(recovered, doc, op)
                state = _state(recovered, doc)
            if state != post:
                medium.close(recovered)
                return failure(
                    op_index, 0, op["describe"], "atomicity",
                    "state after interrupted checkpoint equals neither "
                    "generation",
                )
            medium.checkpoint(recovered, crash_rng, 0.0)
            store = recovered
        else:
            if _state(store, doc) != post:
                medium.close(store)
                return failure(
                    op_index, 0, op["describe"], "replay",
                    "clean replay diverged from the measured post state",
                )
        medium.close(store)
    return None


def _run_transient_stream(
    config: CrashTestConfig,
    seed: int,
    gap: int,
    backend_name: str,
    encoding: str,
    report: CrashTestReport,
) -> Optional[CrashFailure]:
    """Replay a cell's stream with transient faults + retry enabled.

    The stream must complete with no caller-visible errors, a clean
    audit, and a final state identical to a fault-free twin store.
    """
    document = random_document(
        seed, max_depth=config.max_depth,
        max_children=config.max_children,
    )
    retry = RetryPolicy(
        attempts=6, base_delay=0.0005, max_delay=0.005,
        seed=seed, sleep=lambda _delay: None,
    )
    from repro.backends import make_backend

    injected = FaultInjectingBackend(make_backend(backend_name))
    faulty = XmlStore(
        backend=injected, encoding=encoding, gap=gap, retry=retry
    )
    injected.arm(FaultPlan(
        seed=seed, transient_rate=config.transient_rate,
        max_consecutive_transients=min(3, retry.attempts - 1),
    ))
    twin = XmlStore(backend=backend_name, encoding=encoding, gap=gap)

    rng = random.Random(seed * 7919 + gap)
    report.transient_streams += 1

    def failure(op_index, op, kind, detail) -> CrashFailure:
        return CrashFailure(
            seed=seed, gap=gap, backend=backend_name, encoding=encoding,
            op_index=op_index, crash_at=0, op=op, kind=kind,
            detail=detail,
        )

    try:
        doc = faulty.load(document)
    except Exception as exc:
        return failure(
            0, "initial load", "transient",
            f"{type(exc).__name__}: {exc}",
        )
    twin_doc = twin.load(document)

    for op_index in range(1, config.ops + 1):
        op = plan_operation(rng, twin, twin_doc)
        apply_operation(twin, twin_doc, op)
        try:
            apply_operation(faulty, doc, op)
        except Exception as exc:
            return failure(
                op_index, op["describe"], "transient",
                "retry policy leaked a caller-visible error: "
                f"{type(exc).__name__}: {exc}",
            )

    # The stream is over; the audit and the twin comparison are
    # measurements, not part of the faulted workload — they run
    # directly on the backend (no retry), so the plan must be disarmed
    # or a late fault would surface as a spurious audit error.
    injected.arm(None)
    detail = _audit_detail(faulty, doc)
    if detail is not None:
        return failure(config.ops, "end of stream", "invariant", detail)
    if _state(faulty, doc) != _state(twin, twin_doc):
        return failure(
            config.ops, "end of stream", "transient",
            "faulty-but-retried store diverged from the fault-free twin",
        )
    return None


def run_crashtest(
    config: CrashTestConfig,
    workdir: Optional[Union[str, Path]] = None,
) -> CrashTestReport:
    """Run the crash-recovery harness; returns an aggregate report."""
    report = CrashTestReport()
    for seed, gap, backend_name, encoding in config.cells():
        report.cells += 1
        with tempfile.TemporaryDirectory(
            dir=None if workdir is None else str(workdir),
            prefix="crashtest-",
        ) as cell_dir:
            cell_failure = _run_cell(
                config, seed, gap, backend_name, encoding,
                Path(cell_dir), report,
            )
        if cell_failure is not None:
            report.failures.append(cell_failure)
            continue
        if config.transient_rate > 0.0:
            stream_failure = _run_transient_stream(
                config, seed, gap, backend_name, encoding, report
            )
            if stream_failure is not None:
                report.failures.append(stream_failure)
    return report


# -- migration-crash harness (online re-encoding atomicity) --------------


def _migration_state(store: XmlStore, doc: int) -> tuple:
    """Durable state *including* the catalogued encoding — a migration
    crash must recover to exactly the pre- or post-migration encoding,
    never a hybrid."""
    info = store.document_info(doc, fresh=True)
    return (
        serialize(store.reconstruct(doc)),
        (info.node_count, info.max_depth, info.next_id),
        info.encoding or store.encoding.name,
    )


def _audit_store_detail(store: XmlStore) -> Optional[str]:
    """Full-store audit — includes the shadow-orphan and
    wrong-encoding-table checks a crashed migration could trip."""
    violations = audit_store(store)
    if not violations:
        return None
    listing = "; ".join(str(v) for v in violations[:5])
    if len(violations) > 5:
        listing += f" (+{len(violations) - 5} more)"
    return listing


def run_migration_crashtest(
    config: CrashTestConfig,
    workdir: Optional[Union[str, Path]] = None,
) -> CrashTestReport:
    """Crash a migration at sampled (or all) statement boundaries.

    One cell is ``(seed, backend, source -> target)`` over every
    ordered pair of the configured encodings.  Per cell the harness
    loads a seeded document under *source*, applies a couple of seeded
    updates, measures a full migration to *target* on a scratch clone
    (statement count + post state), then for each crash point kills
    the store mid-migration, reopens from the durable medium, and
    asserts a clean full-store audit (no orphaned shadow tables, no
    rows in a wrong-encoding table) plus **atomicity**: the recovered
    state — document bytes, catalogue row, *and* encoding — equals
    exactly the pre- or the post-migration state.
    """
    report = CrashTestReport()
    pairs = [
        (src, dst)
        for src in config.encodings
        for dst in config.encodings
        if src != dst
    ]
    for i in range(config.seeds):
        seed = config.base_seed + i
        for backend_name in config.backends:
            for source, target in pairs:
                report.cells += 1
                with tempfile.TemporaryDirectory(
                    dir=None if workdir is None else str(workdir),
                    prefix="migrate-crash-",
                ) as cell_dir:
                    cell_failure = _run_migration_cell(
                        config, seed, backend_name, source, target,
                        Path(cell_dir), report,
                    )
                if cell_failure is not None:
                    report.failures.append(cell_failure)
    return report


def _run_migration_cell(
    config: CrashTestConfig,
    seed: int,
    backend_name: str,
    source: str,
    target: str,
    workdir: Path,
    report: CrashTestReport,
) -> Optional[CrashFailure]:
    from repro.migrate import migrate_document

    def failure(crash_at, kind, detail) -> CrashFailure:
        return CrashFailure(
            seed=seed, gap=1, backend=backend_name,
            encoding=f"{source}->{target}", op_index=1,
            crash_at=crash_at, op=f"migrate {source} -> {target}",
            kind=kind, detail=detail, mode="migrate",
        )

    medium = _medium(backend_name, workdir, source, 1)
    document = random_document(
        seed, max_depth=config.max_depth,
        max_children=config.max_children,
    )

    # Durable baseline: the document plus two seeded updates, so the
    # migration moves non-trivial order values and attributes.
    rng = random.Random(seed * 6389 + 11)
    store, _ = medium.open()
    doc = store.load(document)
    for _ in range(2):
        op = plan_operation(rng, store, doc)
        apply_operation(store, doc, op)
    medium.checkpoint(store, rng, 0.0)
    pre = _migration_state(store, doc)
    detail = _audit_store_detail(store)
    medium.close(store)
    if detail is not None:
        return failure(0, "invariant", f"before migration: {detail}")
    medium.save_baseline()

    # Measure the migration on a scratch clone.
    scratch, counter = medium.open_clone()
    try:
        migrate_document(scratch, doc, target)
    except Exception as exc:
        medium.close(scratch)
        return failure(
            0, "replay", f"clean migration raised on the clone: {exc!r}"
        )
    statements = counter.statements_executed
    post = _migration_state(scratch, doc)
    detail = _audit_store_detail(scratch)
    medium.close(scratch)
    report.operations += 1
    if detail is not None:
        return failure(0, "invariant", f"after clean migration: {detail}")
    if post[2] != target:
        return failure(
            0, "replay",
            f"clean migration left encoding {post[2]!r}, not {target!r}",
        )

    # Crash trials at sampled (or all) statement boundaries.
    if config.crashes_per_op <= 0 or config.crashes_per_op >= statements:
        points = list(range(1, statements + 1))
    else:
        crash_rng = random.Random(seed * 104729 + 29)
        points = sorted(
            crash_rng.sample(
                range(1, statements + 1), config.crashes_per_op
            )
        )
    for crash_at in points:
        medium.restore_baseline()
        store, injector = medium.open()
        injector.arm(FaultPlan(crash_at_statement=crash_at))
        crashed = False
        try:
            migrate_document(store, doc, target)
        except SimulatedCrash:
            crashed = True
        report.crashes += 1
        if not crashed:
            return failure(
                crash_at, "determinism",
                f"crash point {crash_at} <= measured statement count "
                f"{statements} but the migration completed",
            )

        recovered, _ = medium.open()
        detail = _audit_store_detail(recovered)
        if detail is not None:
            medium.close(recovered)
            return failure(crash_at, "invariant", detail)
        state = _migration_state(recovered, doc)
        medium.close(recovered)
        report.recoveries += 1
        if state != pre and state != post:
            hybrid = (
                "hybrid encoding state"
                if state[2] not in (pre[2], post[2])
                or (state[0], state[1]) not in (
                    (pre[0], pre[1]), (post[0], post[1])
                )
                else "mixed pre/post state"
            )
            return failure(
                crash_at, "atomicity",
                f"recovered state equals neither the pre- nor the "
                f"post-migration store ({hybrid}; "
                f"encoding {state[2]!r})",
            )

    # Apply for real; the durable state must land exactly on post.
    medium.restore_baseline()
    store, _ = medium.open()
    try:
        migrate_document(store, doc, target)
    except Exception as exc:
        medium.close(store)
        return failure(0, "replay", f"final migration raised: {exc!r}")
    medium.checkpoint(store, rng, 0.0)
    state = _migration_state(store, doc)
    detail = _audit_store_detail(store)
    medium.close(store)
    if detail is not None:
        return failure(0, "invariant", f"after final migration: {detail}")
    if state != post:
        return failure(
            0, "replay",
            "final migration diverged from the measured post state",
        )
    return None


# -- index-lifecycle crash harness (create/drop atomicity) ----------------


def _index_signature(store: XmlStore, doc: int) -> Optional[tuple]:
    """The complete durable index state of *doc*, or ``None`` if absent.

    Sorted full contents of every ``idx_*`` table: a crashed create or
    drop must recover to exactly one of the two signatures — never a
    populated value index without its path dictionary, or statistics
    without rows.
    """
    if not store.indexes.exists(doc):
        return None
    return tuple(
        tuple(sorted(store.backend.execute(
            f"SELECT * FROM {table} WHERE doc = ?", (doc,)
        ).rows))
        for table in ("idx_sval", "idx_paths", "idx_pathmap", "idx_stats")
    )


def run_index_crashtest(
    config: CrashTestConfig,
    workdir: Optional[Union[str, Path]] = None,
) -> CrashTestReport:
    """Crash index creates and drops at sampled statement boundaries.

    Per ``(seed, gap, backend, encoding)`` cell the harness loads a
    seeded document (plus a couple of seeded updates, so the string
    values and path dictionary are non-trivial), measures a full
    ``indexes.create`` on a scratch clone, then kills the store at each
    crash point mid-create, reopens, and asserts the document audits
    clean, the node tables are untouched, and the recovered index is
    either **absent or byte-identical to the measured complete index**
    — never partial.  A second phase crashes a seeded **update** (with
    incremental maintenance pinned on) from the fully indexed baseline:
    recovery must land on exactly the pre-update or post-update
    node+index state.  A third phase does the same for ``drop``:
    recovery must land on exactly the complete or the empty index
    state.
    """
    report = CrashTestReport()
    for seed, gap, backend_name, encoding in config.cells():
        report.cells += 1
        with tempfile.TemporaryDirectory(
            dir=None if workdir is None else str(workdir),
            prefix="index-crash-",
        ) as cell_dir:
            cell_failure = _run_index_cell(
                config, seed, gap, backend_name, encoding,
                Path(cell_dir), report,
            )
        if cell_failure is not None:
            report.failures.append(cell_failure)
    return report


def _index_crash_points(
    config: CrashTestConfig, seed: int, salt: int, statements: int
) -> list[int]:
    if config.crashes_per_op <= 0 or config.crashes_per_op >= statements:
        return list(range(1, statements + 1))
    crash_rng = random.Random(seed * 104729 + salt)
    return sorted(
        crash_rng.sample(range(1, statements + 1), config.crashes_per_op)
    )


def _run_index_cell(
    config: CrashTestConfig,
    seed: int,
    gap: int,
    backend_name: str,
    encoding: str,
    workdir: Path,
    report: CrashTestReport,
) -> Optional[CrashFailure]:
    def failure(crash_at, op, kind, detail) -> CrashFailure:
        return CrashFailure(
            seed=seed, gap=gap, backend=backend_name, encoding=encoding,
            op_index=1, crash_at=crash_at, op=op, kind=kind,
            detail=detail, mode="index",
        )

    medium = _medium(backend_name, workdir, encoding, gap)
    document = random_document(
        seed, max_depth=config.max_depth,
        max_children=config.max_children,
    )

    # Durable baseline: document + two seeded updates, unindexed.
    # Mode is pinned to auto: under REPRO_INDEX=on the load itself
    # would build the index and the unindexed baseline would not be.
    rng = random.Random(seed * 6389 + 17)
    store, _ = medium.open()
    store.indexes.force_mode = "auto"
    doc = store.load(document)
    for _ in range(2):
        op = plan_operation(rng, store, doc)
        apply_operation(store, doc, op)
    medium.checkpoint(store, rng, 0.0)
    pre_doc = _state(store, doc)
    detail = _audit_detail(store, doc)
    medium.close(store)
    if detail is not None:
        return failure(0, "baseline", "invariant", detail)
    medium.save_baseline()

    # Measure a clean create on a scratch clone.
    scratch, counter = medium.open_clone()
    scratch.indexes.create(doc)
    statements = counter.statements_executed
    post_sig = _index_signature(scratch, doc)
    medium.close(scratch)
    report.operations += 1
    if post_sig is None:
        return failure(0, "create index", "replay",
                       "clean create left no index behind")

    for crash_at in _index_crash_points(config, seed, 37, statements):
        medium.restore_baseline()
        store, injector = medium.open()
        injector.arm(FaultPlan(crash_at_statement=crash_at))
        crashed = False
        try:
            store.indexes.create(doc)
        except SimulatedCrash:
            crashed = True
        report.crashes += 1
        if not crashed:
            return failure(
                crash_at, "create index", "determinism",
                f"crash point {crash_at} <= measured statement count "
                f"{statements} but the create completed",
            )
        recovered, _ = medium.open()
        detail = _audit_detail(recovered, doc)
        if detail is not None:
            medium.close(recovered)
            return failure(crash_at, "create index", "invariant", detail)
        state = _state(recovered, doc)
        sig = _index_signature(recovered, doc)
        medium.close(recovered)
        report.recoveries += 1
        if state != pre_doc:
            return failure(
                crash_at, "create index", "atomicity",
                "a crashed index create changed the node tables",
            )
        if sig is not None and sig != post_sig:
            return failure(
                crash_at, "create index", "atomicity",
                "recovered index is neither absent nor identical to "
                "the complete index",
            )

    # Build the index for real: the durable state must land on post.
    medium.restore_baseline()
    store, _ = medium.open()
    store.indexes.create(doc)
    medium.checkpoint(store, rng, 0.0)
    pre_sig = _index_signature(store, doc)
    medium.close(store)
    if pre_sig != post_sig:
        return failure(0, "create index", "replay",
                       "real create diverged from the measured clone")
    medium.save_baseline()

    # Phase 2: crash an update from the fully indexed baseline.
    # Incremental maintenance rides the update's own transaction, so
    # recovery must land on exactly the pre-update or the post-update
    # (node tables + index) state — never a torn mix of the two.
    op_rng = random.Random(seed * 9791 + 7)
    store, _ = medium.open()
    store.indexes.force_incremental = True
    update_op = plan_operation(op_rng, store, doc)
    medium.close(store)

    scratch, counter = medium.open_clone()
    scratch.indexes.force_incremental = True
    apply_operation(scratch, doc, update_op)
    statements = counter.statements_executed
    post_upd_doc = _state(scratch, doc)
    post_upd_sig = _index_signature(scratch, doc)
    medium.close(scratch)
    report.operations += 1
    if post_upd_sig is None:
        return failure(0, "indexed update", "replay",
                       "an indexed update dropped the index")

    for crash_at in _index_crash_points(config, seed, 71, statements):
        medium.restore_baseline()
        store, injector = medium.open()
        store.indexes.force_incremental = True
        injector.arm(FaultPlan(crash_at_statement=crash_at))
        crashed = False
        try:
            apply_operation(store, doc, update_op)
        except SimulatedCrash:
            crashed = True
        report.crashes += 1
        if not crashed:
            return failure(
                crash_at, "indexed update", "determinism",
                f"crash point {crash_at} <= measured statement count "
                f"{statements} but the update completed",
            )
        recovered, _ = medium.open()
        detail = _audit_detail(recovered, doc)
        if detail is not None:
            medium.close(recovered)
            return failure(
                crash_at, "indexed update", "invariant", detail
            )
        state = _state(recovered, doc)
        sig = _index_signature(recovered, doc)
        medium.close(recovered)
        report.recoveries += 1
        if (state, sig) not in (
            (pre_doc, pre_sig), (post_upd_doc, post_upd_sig)
        ):
            return failure(
                crash_at, "indexed update", "atomicity",
                "recovery is neither exactly the pre-update nor the "
                "post-update node+index state",
            )

    # Back to the pristine indexed baseline for the drop phase.
    medium.restore_baseline()

    # Phase 3: crash drops from the fully indexed baseline.
    scratch, counter = medium.open_clone()
    scratch.indexes.drop(doc)
    statements = counter.statements_executed
    drop_sig = _index_signature(scratch, doc)
    medium.close(scratch)
    report.operations += 1
    if drop_sig is not None:
        return failure(0, "drop index", "replay",
                       "clean drop left index rows behind")

    for crash_at in _index_crash_points(config, seed, 53, statements):
        medium.restore_baseline()
        store, injector = medium.open()
        injector.arm(FaultPlan(crash_at_statement=crash_at))
        crashed = False
        try:
            store.indexes.drop(doc)
        except SimulatedCrash:
            crashed = True
        report.crashes += 1
        if not crashed:
            return failure(
                crash_at, "drop index", "determinism",
                f"crash point {crash_at} <= measured statement count "
                f"{statements} but the drop completed",
            )
        recovered, _ = medium.open()
        detail = _audit_detail(recovered, doc)
        if detail is not None:
            medium.close(recovered)
            return failure(crash_at, "drop index", "invariant", detail)
        state = _state(recovered, doc)
        sig = _index_signature(recovered, doc)
        medium.close(recovered)
        report.recoveries += 1
        if state != pre_doc:
            return failure(
                crash_at, "drop index", "atomicity",
                "a crashed index drop changed the node tables",
            )
        if sig is not None and sig != pre_sig:
            return failure(
                crash_at, "drop index", "atomicity",
                "recovered index is neither complete nor fully dropped",
            )

    # Drop for real; durably absent afterwards.
    medium.restore_baseline()
    store, _ = medium.open()
    store.indexes.drop(doc)
    medium.checkpoint(store, rng, 0.0)
    sig = _index_signature(store, doc)
    detail = _audit_detail(store, doc)
    medium.close(store)
    if detail is not None:
        return failure(0, "drop index", "invariant", detail)
    if sig is not None:
        return failure(0, "drop index", "replay",
                       "real drop left index rows behind")
    return None


# -- writer-crash harness (group-commit atomicity) -----------------------


def _open_pooled(
    path: Path, encoding: str
) -> tuple[XmlStore, FaultInjectingBackend]:
    """A pooled file store behind a fault injector (counter reset)."""
    from repro.backends.pooled_sqlite import PooledSqliteBackend

    backend = FaultInjectingBackend(PooledSqliteBackend(str(path)))
    store = XmlStore(backend=backend, encoding=encoding)
    backend.arm(None)  # schema bootstrap must not consume the plan
    return store, backend


def _clone_db(path: Path, clone: Path) -> None:
    for suffix in ("", "-wal", "-shm"):
        target = Path(str(clone) + suffix)
        target.unlink(missing_ok=True)
        source = Path(str(path) + suffix)
        if source.exists():
            shutil.copyfile(source, target)


def _run_writer_batch(
    store: XmlStore,
    backend: FaultInjectingBackend,
    doc: int,
    root_id: int,
    start_index: int,
    batch_size: int,
    plan: Optional[FaultPlan],
) -> tuple[list, int]:
    """Stage *batch_size* inserts, drain them as ONE group commit.

    ``autostart=False`` queues every operation before the writer thread
    exists, so the drain is guaranteed to group them into a single
    ``BEGIN ... COMMIT``.  Returns ``(exceptions, statements)`` — the
    exception each future raised (empty on success) and the statement
    count the batch executed.
    """
    from repro.workload.update_ops import make_fragment

    queue = store.enable_write_queue(
        max_batch=batch_size, autostart=False
    )
    futures = []
    for i in range(batch_size):

        def operation(i: int = i):
            fragment = make_fragment("wc", payload_nodes=2)
            return store.updates.insert(
                doc, root_id, start_index + i, fragment
            )

        futures.append(queue.submit(operation))
    backend.arm(plan)
    queue.start()
    errors = []
    for future in futures:
        try:
            future.result(timeout=60)
        except BaseException as exc:
            errors.append(exc)
    return errors, backend.statements_executed


def run_writer_crashtest(
    seeds: int = 1,
    batches: int = 2,
    batch_size: int = 4,
    encodings: Sequence[str] = ("global", "dewey"),
    crashes_per_batch: int = 3,
    base_seed: int = 0,
    max_depth: int = 3,
    max_children: int = 3,
    workdir: Optional[Union[str, Path]] = None,
) -> CrashTestReport:
    """Crash the single writer mid-group-commit; reopen; audit.

    Each cell is a pooled file-backed sqlite store with the write
    queue.  Per batch round: a whole batch of deterministic inserts is
    staged, its statement count measured on a scratch clone, then for
    sampled crash points the real store's writer is killed inside the
    batch transaction.  The reopened file must audit clean at exactly
    the pre-batch state — group commit makes the whole batch one unit
    of atomicity, so no partially applied batch may ever survive.
    """
    report = CrashTestReport()
    for cell_index in range(seeds):
        seed = base_seed + cell_index
        for encoding in encodings:
            report.cells += 1
            failure = None
            with tempfile.TemporaryDirectory(
                dir=None if workdir is None else str(workdir),
                prefix="writer-crash-",
            ) as cell_dir:
                failure = _run_writer_cell(
                    seed, encoding, batches, batch_size,
                    crashes_per_batch, max_depth, max_children,
                    Path(cell_dir), report,
                )
            if failure is not None:
                report.failures.append(failure)
    return report


def _run_writer_cell(
    seed: int,
    encoding: str,
    batches: int,
    batch_size: int,
    crashes_per_batch: int,
    max_depth: int,
    max_children: int,
    workdir: Path,
    report: CrashTestReport,
) -> Optional[CrashFailure]:
    path = workdir / "store.db"
    clone = workdir / "scratch.db"

    def failure(batch_index, crash_at, kind, detail) -> CrashFailure:
        return CrashFailure(
            seed=seed, gap=1, backend="sqlite", encoding=encoding,
            op_index=batch_index, crash_at=crash_at,
            op=f"writer batch of {batch_size} insert(s)", kind=kind,
            detail=detail, mode="writer",
        )

    document = random_document(
        seed, max_depth=max_depth, max_children=max_children
    )
    store, _ = _open_pooled(path, encoding)
    doc = store.load(document)
    root_rows = [
        row for row in store.fetch_children(doc, 0)
        if row["kind"] == "elem"
    ]
    root_id = root_rows[0]["id"]
    start_index = len(store.fetch_children(doc, root_id))
    store.close()

    crash_rng = random.Random(seed * 104729 + 17)

    for batch_index in range(1, batches + 1):
        report.writer_batches += 1
        report.operations += batch_size

        # Pre-batch state, from the durable file.
        store, _ = _open_pooled(path, encoding)
        pre = _state(store, doc)
        store.close()

        # Measure the batch on a scratch clone: statements + post state.
        _clone_db(path, clone)
        scratch, counter = _open_pooled(clone, encoding)
        errors, statements = _run_writer_batch(
            scratch, counter, doc, root_id, start_index,
            batch_size, plan=None,
        )
        if errors:
            scratch.close()
            return failure(
                batch_index, 0, "replay",
                f"clean batch raised on the clone: {errors[0]!r}",
            )
        post = _state(scratch, doc)
        scratch.close()

        # Crash trials inside the batch transaction.
        if crashes_per_batch <= 0 or crashes_per_batch >= statements:
            points = list(range(1, statements + 1))
        else:
            points = sorted(
                crash_rng.sample(
                    range(1, statements + 1), crashes_per_batch
                )
            )
        for crash_at in points:
            store, injector = _open_pooled(path, encoding)
            errors, _ = _run_writer_batch(
                store, injector, doc, root_id, start_index, batch_size,
                plan=FaultPlan(crash_at_statement=crash_at),
            )
            report.crashes += 1
            crashed = bool(errors) and all(
                isinstance(e, SimulatedCrash) for e in errors
            )
            store.close()
            if not crashed:
                return failure(
                    batch_index, crash_at, "determinism",
                    f"crash point {crash_at} <= measured statement "
                    f"count {statements} but the batch completed "
                    f"({len(errors)} error(s))",
                )
            if len(errors) != batch_size:
                return failure(
                    batch_index, crash_at, "crash",
                    f"only {len(errors)} of {batch_size} futures saw "
                    "the crash — some submitter would hang",
                )

            # Recover: reopen the file; the batch must have vanished
            # wholly (the group transaction never committed).
            recovered, _ = _open_pooled(path, encoding)
            detail = _audit_detail(recovered, doc)
            if detail is not None:
                recovered.close()
                return failure(
                    batch_index, crash_at, "invariant", detail
                )
            state = _state(recovered, doc)
            recovered.close()
            report.recoveries += 1
            if state != pre:
                detail = (
                    "recovered state matches the post-batch document "
                    "although the group transaction never committed"
                    if state == post
                    else "recovered state equals neither the "
                         "pre-batch nor the post-batch document"
                )
                return failure(
                    batch_index, crash_at, "atomicity", detail
                )

        # Apply the batch for real and verify the clean replay.
        store, backend = _open_pooled(path, encoding)
        errors, _ = _run_writer_batch(
            store, backend, doc, root_id, start_index, batch_size,
            plan=None,
        )
        if errors:
            store.close()
            return failure(
                batch_index, 0, "replay",
                f"clean batch raised: {errors[0]!r}",
            )
        queue = store.write_queue
        if queue is not None and queue.batches != 1:
            store.close()
            return failure(
                batch_index, 0, "determinism",
                "expected one group commit, writer used "
                f"{queue.batches} batch(es)",
            )
        state = _state(store, doc)
        store.close()
        if state != post:
            return failure(
                batch_index, 0, "replay",
                "clean replay diverged from the measured post state",
            )
        start_index += batch_size
    return None
