"""Bounded exponential-backoff retry for transient storage faults.

A transient fault — sqlite returning BUSY/LOCKED past its timeout, or
an injected :class:`~repro.robust.faults.TransientInjectedError` — means
the statement (or transaction) had no effect and re-running it is safe.
:class:`RetryPolicy` re-runs such operations with exponential backoff
and jitter, and surfaces a typed
:class:`~repro.errors.TransientStorageError` once the bounded budget is
exhausted.  Permanent errors (constraint violations, syntax errors,
:class:`~repro.robust.faults.SimulatedCrash` process deaths) propagate
immediately.

:class:`XmlStore <repro.store.XmlStore>` applies a policy at two
levels: individual read statements, and whole update transactions
(retried only from outside the outermost scope, after the rollback has
undone every partial effect).
"""

from __future__ import annotations

import random
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

from repro.errors import TransientStorageError
from repro.obs import METRICS
from repro.robust.faults import TransientInjectedError

T = TypeVar("T")

#: Substrings of sqlite OperationalError messages that mean "try again".
_SQLITE_TRANSIENT_MARKERS = ("busy", "locked")


def is_transient_error(exc: BaseException) -> bool:
    """Classify an exception: True when retrying is safe and useful."""
    if isinstance(exc, TransientInjectedError):
        return True
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return any(m in message for m in _SQLITE_TRANSIENT_MARKERS)
    return False


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``attempts`` counts every try including the first; delays grow as
    ``base_delay * multiplier**(attempt-1)`` capped at ``max_delay``,
    each scaled by a random factor in ``[1-jitter, 1]`` so contending
    workers decorrelate.  ``sleep`` is injectable for tests, and so is
    the jitter source: pass ``rng`` to share one RNG across policies,
    or ``seed`` for a private seeded one — either way the backoff
    schedule is reproducible, never drawn from module-level
    ``random``.
    """

    attempts: int = 5
    base_delay: float = 0.01
    max_delay: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None
    rng: Optional[random.Random] = None
    sleep: Callable[[float], None] = time.sleep
    classify: Callable[[BaseException], bool] = field(
        default=is_transient_error
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        self._rng = self.rng if self.rng is not None \
            else random.Random(self.seed)

    def backoff_delay(self, attempt: int) -> float:
        """The jittered delay after failed attempt number *attempt*."""
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        return delay * (1.0 - self.jitter * self._rng.random())

    def run(self, operation: Callable[[], T]) -> T:
        """Run *operation*, retrying transient failures.

        Raises :class:`TransientStorageError` (with the last fault
        chained) when every attempt failed transiently; non-transient
        exceptions propagate from the failing attempt untouched.

        Metrics (when :mod:`repro.obs` is enabled): every classified
        transient fault bumps ``retry.transient_faults``, every
        re-attempt bumps ``retry.retries``, a success on attempt > 1
        bumps ``retry.recoveries``, and a spent budget bumps
        ``retry.exhausted``.
        """
        last_error: Optional[Exception] = None
        for attempt in range(1, self.attempts + 1):
            try:
                result = operation()
            except Exception as exc:
                if not self.classify(exc):
                    raise
                METRICS.inc("retry.transient_faults")
                last_error = exc
                if attempt < self.attempts:
                    METRICS.inc("retry.retries")
                    self.sleep(self.backoff_delay(attempt))
            else:
                if attempt > 1:
                    METRICS.inc("retry.recoveries")
                return result
        METRICS.inc("retry.exhausted")
        raise TransientStorageError(
            "transient storage fault persisted across "
            f"{self.attempts} attempt(s): {last_error}",
            attempts=self.attempts,
            last_error=last_error,
        ) from last_error
