"""Robustness: fault injection, retry/backoff, crash-recovery testing.

The paper's hard case is *updates*: an insertion can renumber O(document)
rows, and a crash mid-renumber leaves the order encoding silently
corrupt.  This package supplies both the adversary and the survival
machinery:

* :mod:`repro.robust.faults` — a :class:`FaultInjectingBackend` wrapper
  that, driven by a seeded :class:`FaultPlan`, raises transient
  BUSY-style errors, hard-crashes the engine at the Nth statement
  (:class:`SimulatedCrash`), or leaves torn snapshot files behind;
* :mod:`repro.robust.retry` — a bounded exponential-backoff
  :class:`RetryPolicy` (jittered, transient-vs-permanent classification)
  that :class:`repro.store.XmlStore` applies around read statements and
  whole update transactions, surfacing
  :class:`repro.errors.TransientStorageError` after exhaustion;
* :mod:`repro.robust.crashtest` — the verification loop
  (``repro crashtest``): replay seeded update streams, crash at sampled
  statement boundaries, reopen, audit invariants, and assert the store
  equals either the pre-op or post-op state.

Together with the atomic generation-rotating snapshots in
:mod:`repro.minidb.persist` and sqlite's WAL + busy-timeout, this is the
robustness layer later scaling work (pooling, sharding) builds on.

:mod:`repro.robust.crashtest` is imported lazily (it depends on
:mod:`repro.store`); import it explicitly where needed.
"""

from repro.robust.faults import (
    SAVE_CRASH_STAGES,
    FaultInjectingBackend,
    FaultPlan,
    SimulatedCrash,
    TransientInjectedError,
    garble_file,
    simulate_crash_during_save,
    truncate_file,
)
from repro.robust.retry import RetryPolicy, is_transient_error

__all__ = [
    "FaultInjectingBackend",
    "FaultPlan",
    "RetryPolicy",
    "SAVE_CRASH_STAGES",
    "SimulatedCrash",
    "TransientInjectedError",
    "garble_file",
    "is_transient_error",
    "simulate_crash_during_save",
    "truncate_file",
]
