"""The public facade: :class:`XmlStore`.

An ``XmlStore`` owns one relational backend (sqlite3 or minidb) and one
order encoding (global, local, or dewey), and exposes the operations the
paper evaluates:

* :meth:`load` — shred and bulk-load an XML document;
* :meth:`query` — translate an XPath query to SQL, execute it, and return
  matching items in document order (running the client-side
  order-resolution pass that Local order requires);
* :meth:`reconstruct` / :meth:`reconstruct_subtree` — rebuild documents
  from rows (see :mod:`repro.core.reconstruct`);
* :attr:`updates` — ordered insertions and deletions with per-encoding
  renumbering (see :mod:`repro.core.updates`).

Example
-------
>>> from repro import XmlStore
>>> store = XmlStore(backend="sqlite", encoding="dewey")
>>> doc_id = store.load("<bib><book><title>T</title></book></bib>")
>>> [item.value for item in store.query("/bib/book/title/text()", doc_id)]
['T']
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from functools import lru_cache
from time import perf_counter
from typing import (
    TYPE_CHECKING, Callable, Iterable, Optional, Sequence, TypeVar, Union,
)

from repro.backends import Backend, make_backend
from repro.cache import StoreCache, cache_enabled_from_env
from repro.core.dewey import DeweyKey
from repro.obs import METRICS, slow_log, span
from repro.core.encodings import OrderEncoding, get_encoding
from repro.core.schema import SHADOW_PREFIX, documents_table, index_tables
from repro.core.shredder import ShreddedDocument, shred
from repro.core.translator import (
    TranslatedQuery,
    extract_shape,
    make_translator,
)
from repro.errors import StorageError
from repro.xmldom import Document, parse
from repro.xpath.parser import parse_xpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.concurrent.writequeue import WriteQueue
    from repro.robust.retry import RetryPolicy

#: How many ids one ``IN (...)`` batch may carry during order resolution.
_ID_BATCH = 400

_T = TypeVar("_T")


@lru_cache(maxsize=512)
def _parse_and_extract(xpath: str):
    """Parse *xpath* and abstract its safe literals into slots.

    Returns ``(shaped_path, shape_key, literals)``.  Pure function of
    the text, so it is cached process-wide across stores and epochs —
    parsing never repeats for a hot query, and the shape key string is
    computed once.  The shaped path is an immutable AST, safe to share.
    """
    path = parse_xpath(xpath)
    shaped, literals = extract_shape(path)
    return shaped, str(shaped), literals


def _is_already_exists(exc: Exception) -> bool:
    """True when a CREATE failed only because the object already exists."""
    return "already exists" in str(exc)


@dataclass(frozen=True)
class ResultItem:
    """One query result: a node row or an attribute.

    ``kind`` is ``elem``/``text``/``comment``/``pi`` for node results and
    ``attribute`` for attribute results.  ``node_id`` is the surrogate id
    of the node (for attributes: of the owner element).  ``label`` is the
    element tag, PI target, or attribute name.  ``value`` is the stored
    value (direct text value for elements; may be ``None``).
    """

    kind: str
    node_id: int
    label: Optional[str]
    value: Optional[str]

    def identity(self) -> tuple:
        """Hashable identity used when comparing against the oracle."""
        if self.kind == "attribute":
            return ("attribute", self.node_id, self.label)
        return ("node", self.node_id)


@dataclass
class DocumentInfo:
    """Catalogue entry of one stored document.

    ``encoding`` names the order encoding holding this document's rows
    (documents can migrate individually between encodings); ``None``
    means the store's default encoding.
    """

    doc: int
    name: str
    node_count: int
    max_depth: int
    next_id: int
    encoding: Optional[str] = None


class XmlStore:
    """Ordered XML stored in a relational backend.

    ``encoding`` is the store's *default* encoding (new loads use it);
    individual documents may live under a different encoding after a
    ``repro migrate`` — the catalogue's ``encoding`` column is
    authoritative, resolved per document by :meth:`encoding_for`.
    """

    #: True on the shadow facade an in-flight migration writes through
    #: (see :mod:`repro.migrate`); shadow stores skip metrics and the
    #: migration journal.
    is_shadow = False

    def __init__(
        self,
        backend: Union[str, Backend] = "sqlite",
        encoding: Union[str, OrderEncoding] = "dewey",
        gap: int = 1,
        retry: Optional["RetryPolicy"] = None,
        cache: Optional[bool] = None,
        index_incremental: Optional[bool] = None,
    ) -> None:
        """Create a store.

        Parameters
        ----------
        backend:
            A backend name (``"sqlite"`` / ``"minidb"``) or instance.
        encoding:
            An encoding name (``"global"`` / ``"local"`` / ``"dewey"``)
            or instance.
        gap:
            Sparse-numbering gap factor.  1 means dense numbering (the
            paper's base case); larger values space order values out so
            bursts of insertions avoid renumbering (experiment E10).
        retry:
            Optional :class:`repro.robust.retry.RetryPolicy`.  When
            set, transient backend faults (sqlite BUSY/LOCKED, injected
            transients) are retried with bounded backoff — per
            statement for reads, per whole transaction for updates —
            surfacing :class:`repro.errors.TransientStorageError` only
            after the budget is exhausted.
        cache:
            Plan/catalog/result caching (see :mod:`repro.cache`).
            ``None`` (the default) follows the ``REPRO_CACHE``
            environment variable (on unless set to ``off``); ``True``
            / ``False`` override it explicitly.
        index_incremental:
            Secondary-index maintenance strategy.  ``None`` (the
            default) follows the ``REPRO_INDEX_INCR`` environment
            variable (incremental unless set to ``off``); ``True`` /
            ``False`` pin this store to incremental / eager rebuild
            explicitly (the equivalence tests twin one of each).
        """
        if gap < 1:
            raise StorageError(f"gap must be >= 1, got {gap}")
        self.retry = retry
        #: Optional single-writer queue; see :meth:`enable_write_queue`.
        self.write_queue: Optional["WriteQueue"] = None
        self.backend = (
            make_backend(backend) if isinstance(backend, str) else backend
        )
        self.encoding = (
            get_encoding(encoding) if isinstance(encoding, str) else encoding
        )
        self.gap = gap
        #: Epoch-invalidated plan/catalog/result caches.  Every
        #: committed write bumps the epoch (see :meth:`transactionally`
        #: and the write queue), which drops all three layers at once.
        self.cache = StoreCache(
            enabled=cache_enabled_from_env() if cache is None else bool(cache)
        )
        self._docs_table = documents_table()
        #: In-flight encoding migration (``repro.migrate.MigrationState``)
        #: or ``None``.  While set, committed update transactions are
        #: journalled for replay into the migration's shadow tables.
        self._migration = None
        #: Bumped after every migration cutover; queries that observe a
        #: bump mid-flight re-run against the new encoding's tables.
        self._migration_epoch = 0
        self._create_schema()
        from repro.core.updates import UpdateManager
        from repro.index import IndexManager

        #: Ordered update operations (insert/delete with renumbering).
        self.updates = UpdateManager(self)
        #: Per-document secondary indexes and catalog statistics
        #: (see :mod:`repro.index`); ``REPRO_INDEX`` gates their use.
        self.indexes = IndexManager(self)
        self.indexes.force_incremental = index_incremental

    # -- schema ----------------------------------------------------------

    def _create_schema(self) -> None:
        if_not_exists = self.backend.supports_if_not_exists
        for statement in (
            *self.encoding.create_statements(if_not_exists),
            *self._docs_table.create_statements(if_not_exists),
            *(
                stmt
                for table in index_tables()
                for stmt in table.create_statements(if_not_exists)
            ),
        ):
            try:
                self.backend.execute(statement)
            except Exception as exc:
                # Reusing a backend that already has the schema is fine
                # (engines without IF NOT EXISTS report it as an error);
                # every other DDL failure is real and must surface.
                if _is_already_exists(exc):
                    continue
                raise StorageError(
                    f"schema bootstrap failed: {statement!r}: {exc}"
                ) from exc
        self._recover_shadow_state()

    def _recover_shadow_state(self) -> None:
        """Drop shadow tables a crashed migration left behind.

        Migration state outside the catalogue is transient by design: a
        crash before cutover loses only shadow rows (source untouched),
        a crash after the cutover commit loses only the shadow *copy*
        of rows already published.  Either way dropping every
        ``mig_*`` table restores a clean pre- or post-migration store.
        """
        try:
            tables = self.backend.list_tables()
        except NotImplementedError:  # pragma: no cover - custom backends
            return
        for table in tables:
            if not table.startswith(SHADOW_PREFIX):
                continue
            try:
                self.backend.execute(f"DROP TABLE {table}")
                METRICS.inc("migrate.recovered_shadow_tables")
            except Exception as exc:
                raise StorageError(
                    f"migration recovery failed dropping {table!r}: {exc}"
                ) from exc

    # -- fault-tolerant execution -----------------------------------------

    def _execute(self, sql: str, params: Sequence = ()):
        """One statement, retried per the store's policy (if any)."""
        if self.retry is None:
            return self.backend.execute(sql, params)
        return self.retry.run(lambda: self.backend.execute(sql, params))

    def _execute_plan(self, translated: TranslatedQuery):
        """Execute a translated query through the backend's plan path.

        minidb receives the structured statement (no SQL re-parsing);
        sqlite executes the parameterized text (prepared-statement
        cache keyed on it).
        """
        if self.retry is None:
            return self.backend.execute_plan(
                translated.sql, translated.params,
                statement=translated.statement,
            )
        return self.retry.run(
            lambda: self.backend.execute_plan(
                translated.sql, translated.params,
                statement=translated.statement,
            )
        )

    def _executemany(self, sql: str, param_rows):
        if self.retry is None:
            return self.backend.executemany(sql, param_rows)
        # Materialise once: a retry must not replay a spent generator.
        rows = [tuple(p) for p in param_rows]
        return self.retry.run(lambda: self.backend.executemany(sql, rows))

    def transactionally(self, operation: Callable[[], _T]) -> _T:
        """Run *operation* inside a transaction scope.

        With a retry policy configured, a transient failure retries the
        *whole* transaction — but only from outside the outermost
        scope, where the rollback has already undone every partial
        effect.  Nested calls just join the enclosing transaction.

        With a :meth:`write queue <enable_write_queue>` attached, the
        operation is shipped to the single writer thread instead (the
        caller blocks for the result), where adjacent operations group
        into one commit; calls already on the writer thread, or nested
        inside this thread's own transaction, run locally and join it.

        Every successful top-level call bumps the cache epoch: all
        writers (loads, deletes, update operations) funnel through
        here, so a commit can never leave a stale plan, catalogue row,
        or cached result behind.  Nested calls leave the bump to the
        outermost scope, whose commit actually publishes the change.
        """
        backend = self.backend

        queue = self.write_queue
        if (
            queue is not None
            and queue.accepting()
            and not queue.on_writer_thread()
            and not self._in_own_transaction()
        ):
            # The writer thread bumps right after each group commit
            # (other submitters' operations publish there too); this
            # caller-side bump is belt and braces for its own op.
            result = queue.call(operation)
            self.cache.bump()
            return result

        def attempt() -> _T:
            # An in-flight migration journals every committed update
            # for replay into its shadow tables.  Entries staged by the
            # operation are promoted *inside* the transaction scope
            # (after the last statement, before COMMIT) so a cutover —
            # serialized behind this transaction — always sees the
            # committed entry; discard-on-entry keeps a retried attempt
            # from staging twice.  ``self._migration`` must be read
            # *after* BEGIN: a migration installs itself under the same
            # backend lock this BEGIN blocks on, so a pre-BEGIN read
            # could see None while the operation (running after the
            # install committed) stages entries — which would then
            # never promote and be silently discarded, losing the
            # update from the shadow replay.
            mig = None
            promoted = False
            try:
                with backend.transaction():
                    mig = self._migration
                    if mig is None:
                        return operation()
                    journal = mig.journal
                    journal.discard()
                    result = operation()
                    journal.promote()
                    promoted = True
                    return result
            except BaseException:
                if mig is not None:
                    if promoted:
                        # Promoted but the COMMIT failed: the journal
                        # now holds an entry the live store never
                        # published.  Poisoning makes the migration
                        # abort instead of replaying it into the
                        # shadow.
                        mig.journal.poison()
                    mig.journal.discard()
                raise

        if self._in_own_transaction():
            with backend.transaction():
                return operation()
        result = attempt() if self.retry is None else self.retry.run(attempt)
        self.cache.bump()
        return result

    def _in_own_transaction(self) -> bool:
        return (
            self.backend._tx_depth > 0
            and self.backend._tx_owner == threading.get_ident()
        )

    # -- concurrent serving ------------------------------------------------

    def enable_write_queue(
        self, max_batch: int = 16, autostart: bool = True
    ) -> "WriteQueue":
        """Funnel this store's update transactions through one writer.

        Afterwards every top-level :meth:`transactionally` call —
        loads, inserts, deletes, value updates — is executed on a
        dedicated writer thread, with adjacent operations group-
        committed in one ``BEGIN ... COMMIT``.  Reads are unaffected:
        on a pooled backend they keep running concurrently on the
        calling threads.  Returns the queue (idempotent).
        """
        if self.write_queue is None:
            from repro.concurrent.writequeue import WriteQueue

            self.write_queue = WriteQueue(
                self, max_batch=max_batch, autostart=autostart
            )
        return self.write_queue

    def close(self) -> None:
        """Drain the write queue (if any) and close the backend."""
        if self.write_queue is not None:
            self.write_queue.close()
        self.backend.close()

    def __enter__(self) -> "XmlStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def node_table(self) -> str:
        return self.encoding.node_table.name

    @property
    def attr_table(self) -> str:
        return self.encoding.attr_table.name

    # -- per-document encoding resolution ---------------------------------

    def encoding_for(self, doc: int) -> OrderEncoding:
        """The encoding holding *doc*'s rows (catalogue-authoritative).

        Documents migrate individually (``repro migrate``), so every
        doc-scoped read and update resolves its encoding here instead
        of assuming the store default.  Served from the catalogue
        cache; inside a transaction it reads the backend directly, so
        an update running concurrently with a cutover sees the swapped
        encoding the moment the catalogue row changes.
        """
        name = self.document_info(doc).encoding
        return self.encoding if name is None else get_encoding(name)

    def node_table_for(self, doc: int) -> str:
        return self.encoding_for(doc).node_table.name

    def attr_table_for(self, doc: int) -> str:
        return self.encoding_for(doc).attr_table.name

    # -- loading ------------------------------------------------------------

    def load(
        self,
        document: Union[str, Document],
        name: str = "doc",
        strip_whitespace: bool = False,
    ) -> int:
        """Shred *document* and bulk-load it; returns the new doc id."""
        with span("load"):
            if isinstance(document, str):
                with span("parse"):
                    document = parse(
                        document, strip_whitespace=strip_whitespace
                    )
            with span("shred"):
                shredded = shred(document)

            def load_in_transaction() -> int:
                doc_id = self._next_doc_id()
                self._bulk_insert(doc_id, shredded)
                self.backend.execute(
                    "INSERT INTO documents VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        doc_id,
                        name,
                        shredded.node_count(),
                        shredded.max_depth,
                        shredded.node_count() + 1,
                        self.encoding.name,
                    ),
                )
                return doc_id

            with span("bulk_insert"):
                doc_id = self.transactionally(load_in_transaction)
            if self.indexes.auto_create():
                with span("index"):
                    self.indexes.create(doc_id)
            with span("analyze"):
                self.backend.analyze()
            METRICS.inc("load.documents")
            METRICS.inc("load.nodes", shredded.node_count())
        return doc_id

    def _next_doc_id(self) -> int:
        result = self._execute(
            "SELECT COALESCE(MAX(doc), 0) FROM documents"
        )
        return int(result.rows[0][0]) + 1

    def _bulk_insert(self, doc_id: int, shredded: ShreddedDocument) -> None:
        columns = self.encoding.node_columns()
        placeholders = ", ".join("?" for _ in columns)
        self.backend.executemany(
            f"INSERT INTO {self.node_table} VALUES ({placeholders})",
            (
                self.encoding.node_row(doc_id, node, self.gap)
                for node in shredded.nodes
            ),
        )
        self.backend.executemany(
            f"INSERT INTO {self.attr_table} VALUES (?, ?, ?, ?)",
            (
                (doc_id, attr.owner, attr.name, attr.value)
                for attr in shredded.attributes
            ),
        )

    # -- catalogue ---------------------------------------------------------------

    def document_info(self, doc: int, fresh: bool = False) -> DocumentInfo:
        """The catalogue entry of *doc* (cached; ``fresh=True`` forces
        a read from the backend — auditors and any caller that shares
        the database file with other writers should use it)."""
        cache = self.cache
        if fresh or not cache.enabled or self._in_own_transaction():
            # Inside a transaction the catalogue may hold uncommitted
            # state (updates read-modify-write it); always go direct.
            return self._document_info_uncached(doc)
        epoch = cache.current_epoch()
        cached = cache.get_catalog(doc)
        if cached is not None:
            return replace(cached)  # callers may mutate their copy
        info = self._document_info_uncached(doc)
        cache.put_catalog(doc, replace(info), epoch)
        return info

    def _document_info_uncached(self, doc: int) -> DocumentInfo:
        result = self._execute(
            "SELECT doc, name, node_count, max_depth, next_id, encoding "
            "FROM documents WHERE doc = ?",
            (doc,),
        )
        if not result.rows:
            raise StorageError(f"no document {doc}")
        row = result.rows[0]
        return DocumentInfo(*row)

    def update_document_info(self, info: DocumentInfo) -> None:
        self._execute(
            "UPDATE documents SET node_count = ?, max_depth = ?, "
            "next_id = ? WHERE doc = ?",
            (info.node_count, info.max_depth, info.next_id, info.doc),
        )

    def delete_document(self, doc: int) -> int:
        """Drop a whole document; returns the number of rows removed."""
        self.document_info(doc)  # raises StorageError if unknown

        def drop_in_transaction() -> int:
            # Resolve the tables inside the transaction: a concurrent
            # migration cutover may have just moved the rows.
            encoding = self.encoding_for(doc)
            nodes = self.backend.execute(
                f"DELETE FROM {encoding.node_table.name} WHERE doc = ?",
                (doc,),
            )
            attrs = self.backend.execute(
                f"DELETE FROM {encoding.attr_table.name} WHERE doc = ?",
                (doc,),
            )
            self.backend.execute(
                "DELETE FROM documents WHERE doc = ?", (doc,)
            )
            self.indexes.purge_in_transaction(doc)
            return max(nodes.rowcount, 0) + max(attrs.rowcount, 0)

        return self.transactionally(drop_in_transaction)

    def documents(self) -> list[DocumentInfo]:
        result = self._execute(
            "SELECT doc, name, node_count, max_depth, next_id, encoding "
            "FROM documents ORDER BY doc"
        )
        return [DocumentInfo(*row) for row in result.rows]

    # -- querying ------------------------------------------------------------------

    def translate(
        self, xpath: str, doc: int, context_id: Optional[int] = None
    ) -> TranslatedQuery:
        """Translate *xpath* for this store's encoding (no execution).

        Relative paths navigate from *context_id* (a node's surrogate
        id); absolute paths start at the document.

        Compiled plans are cached per
        ``(dialect, encoding, shape, depth)`` where *shape* is the
        query with its safe predicate literals abstracted away — one
        plan serves every document and every literal value
        (``//item[@id='a']`` and ``//item[@id='b']`` share a plan; the
        values bind as parameters).  The context kind is part of the
        shape string (absolute vs relative), and the depth bound is
        part of the key (not just the epoch): Local's
        ``//``/``following::`` expansion is exactly as deep as
        ``max_depth``, so a plan compiled before a deepening insert
        would silently drop the new nodes if it were ever reused.
        """
        shaped, shape_key, literals = _parse_and_extract(xpath)
        cache = self.cache
        if not cache.enabled or self._in_own_transaction():
            ictx = self.indexes.context(doc)
            plan = self._compile_uncached(shaped, doc, ictx)
            self._note_access_path(plan, xpath, ictx is not None)
            return plan.bind(doc, context_id, literals)
        ictx = self.indexes.context(doc)
        fingerprint = None if ictx is None else ictx.fingerprint
        epoch = cache.current_epoch()
        info = self.document_info(doc)
        encoding_name = info.encoding or self.encoding.name
        depth = max(info.max_depth, 2)
        dialect = self.backend.dialect
        key = (dialect, encoding_name, shape_key, depth, fingerprint)
        plan = cache.get_plan(key)
        if plan is None:
            translator = make_translator(encoding_name, max_depth=depth)
            plan = translator.compile(shaped, dialect=dialect, index=ictx)
            cache.put_plan(key, plan, epoch)
        else:
            METRICS.inc("translate.plan_shared")
        self._note_access_path(plan, xpath, ictx is not None)
        return plan.bind(doc, context_id, literals)

    def _note_access_path(
        self, plan, xpath: str, indexed: bool
    ) -> None:
        """Record the chosen access path (and missed opportunities).

        ``index.miss`` feeds the advisor: an indexable-looking query
        compiled for a document without an index (mode permitting).
        """
        METRICS.inc(f"translate.access.{plan.access_path}")
        if not indexed and self.indexes.mode() != "off":
            from repro.index import is_indexable_xpath

            if is_indexable_xpath(xpath):
                METRICS.inc("index.miss")

    def _translate_uncached(
        self, xpath: str, doc: int, context_id: Optional[int] = None
    ) -> TranslatedQuery:
        shaped, _shape_key, literals = _parse_and_extract(xpath)
        plan = self._compile_uncached(
            shaped, doc, self.indexes.context(doc)
        )
        return plan.bind(doc, context_id, literals)

    def _compile_uncached(self, shaped, doc: int, index=None):
        info = self.document_info(doc)
        translator = make_translator(
            info.encoding or self.encoding.name,
            max_depth=max(info.max_depth, 2),
        )
        return translator.compile(
            shaped, dialect=self.backend.dialect, index=index
        )

    def query(
        self, xpath: str, doc: int, context_id: Optional[int] = None
    ) -> list[ResultItem]:
        """Run *xpath* via SQL; results arrive in document order.

        Torn-read guard: a migration cutover can swap a document's
        encoding between this query's translate and execute steps.
        Every cutover bumps ``_migration_epoch``, so a query that
        observes a bump mid-flight simply re-runs — the second pass
        reads the post-cutover catalogue and the new tables.
        """
        for _ in range(4):
            epoch = self._migration_epoch
            items = self._query_once(xpath, doc, context_id)
            if self._migration_epoch == epoch:
                return items
            METRICS.inc("query.migration_retries")
        return items

    def _query_once(
        self, xpath: str, doc: int, context_id: Optional[int] = None
    ) -> list[ResultItem]:
        cache = self.cache
        use_cache = cache.enabled and not self._in_own_transaction()
        if use_cache:
            result_key = (doc, xpath, context_id)
            epoch = cache.current_epoch()
            cached = cache.get_result(result_key)
            if cached is not None:
                return list(cached)
        log = slow_log()
        if log is None:
            with span("query", xpath=xpath):
                _translated, items = self._run_query(
                    xpath, doc, context_id, None
                )
        else:
            started = perf_counter()
            phases: dict[str, float] = {}
            with span("query", xpath=xpath):
                translated, items = self._run_query(
                    xpath, doc, context_id, phases
                )
            elapsed_ms = (perf_counter() - started) * 1000.0
            # Short-circuit below the threshold: dropped records pay
            # neither the per-phase dict conversion nor the log call.
            if elapsed_ms >= log.threshold_ms:
                log.maybe_record(
                    xpath=xpath,
                    sql=translated.sql,
                    params=translated.params,
                    elapsed_ms=elapsed_ms,
                    breakdown_ms={
                        name: seconds * 1000.0
                        for name, seconds in phases.items()
                    },
                )
        if use_cache:
            # Stored as a tuple of frozen ResultItems; every hit hands
            # out a fresh list, so callers may mutate what they get.
            cache.put_result(result_key, tuple(items), epoch)
        return items

    def _run_query(
        self,
        xpath: str,
        doc: int,
        context_id: Optional[int],
        collect: Optional[dict],
    ) -> tuple[TranslatedQuery, list[ResultItem]]:
        with span("translate", collect):
            translated = self.translate(xpath, doc, context_id=context_id)
        METRICS.inc("query.executed")
        with span("execute", collect):
            result = self._execute_plan(translated)
        rows = result.rows
        METRICS.inc("query.rows", len(rows))
        if translated.access_path != "scan":
            # Estimated-vs-actual feedback for the cost model: the two
            # counters drift apart exactly when statistics go stale.
            METRICS.inc("index.plan_queries")
            if translated.est_rows is not None:
                METRICS.inc("index.est_rows", int(translated.est_rows))
                METRICS.inc("index.actual_rows", len(rows))
        if translated.result_kind == "attribute":
            with span("materialize", collect):
                items, owner_ids = self._attribute_items(rows)
            if translated.needs_client_order:
                METRICS.inc("query.client_order_sorts")
                with span("client_order", collect):
                    items = self._client_sort_attributes(
                        doc, items, owner_ids
                    )
            return translated, items
        if translated.needs_client_order:
            METRICS.inc("query.client_order_sorts")
            with span("client_order", collect):
                rows = self._client_sort_nodes(doc, rows)
        with span("materialize", collect):
            items = [
                ResultItem(
                    kind=row[2], node_id=row[0], label=row[3],
                    value=row[4],
                )
                for row in rows
            ]
        return translated, items

    def query_values(self, xpath: str, doc: int) -> list[Optional[str]]:
        """Shorthand: the stored value of each result item."""
        return [item.value for item in self.query(xpath, doc)]

    def _attribute_items(
        self, rows: list[tuple]
    ) -> tuple[list[ResultItem], list[int]]:
        items = []
        owners = []
        for row in rows:
            owner, name, value = row[0], row[1], row[2]
            items.append(ResultItem("attribute", owner, name, value))
            owners.append(owner)
        return items, owners

    # -- client-side order resolution (Local encoding) ---------------------------------

    def _fetch_structure(
        self, doc: int, ids: Iterable[int]
    ) -> dict[int, tuple[int, int]]:
        """Fetch ``id -> (parent, sibling order value)`` for the ids."""
        encoding = self.encoding_for(doc)
        order_column = encoding.sibling_order_column
        out: dict[int, tuple[int, int]] = {}
        pending = [i for i in set(ids) if i != 0]
        while pending:
            batch = pending[:_ID_BATCH]
            pending = pending[_ID_BATCH:]
            placeholders = ", ".join("?" for _ in batch)
            result = self._execute(
                f"SELECT id, parent, {order_column} "
                f"FROM {encoding.node_table.name} "
                f"WHERE doc = ? AND id IN ({placeholders})",
                (doc, *batch),
            )
            for node_id, parent, order_value in result.rows:
                out[node_id] = (parent, order_value)
        return out

    def _order_keys(
        self, doc: int, ids: list[int]
    ) -> dict[int, tuple[int, ...]]:
        """Root-to-node sibling-order paths for each id (client sort
        keys; document order for any encoding)."""
        structure: dict[int, tuple[int, int]] = {}
        frontier = set(ids)
        while frontier:
            fetched = self._fetch_structure(
                doc, frontier - structure.keys()
            )
            structure.update(fetched)
            frontier = {
                parent
                for parent, _lpos in fetched.values()
                if parent != 0 and parent not in structure
            }
        keys: dict[int, tuple[int, ...]] = {}
        for node_id in ids:
            path: list[int] = []
            current = node_id
            while current != 0:
                parent, lpos = structure[current]
                path.append(lpos)
                current = parent
            keys[node_id] = tuple(reversed(path))
        return keys

    def _client_sort_nodes(
        self, doc: int, rows: list[tuple]
    ) -> list[tuple]:
        keys = self._order_keys(doc, [row[0] for row in rows])
        return sorted(rows, key=lambda row: keys[row[0]])

    def _client_sort_attributes(
        self, doc: int, items: list[ResultItem], owner_ids: list[int]
    ) -> list[ResultItem]:
        keys = self._order_keys(doc, owner_ids)
        return sorted(
            items, key=lambda item: (keys[item.node_id], item.label or "")
        )

    # -- reconstruction ------------------------------------------------------------------

    def reconstruct(self, doc: int) -> Document:
        """Rebuild the full document from its rows."""
        from repro.core.reconstruct import reconstruct_document

        return reconstruct_document(self, doc)

    def reconstruct_subtree(self, doc: int, node_id: int):
        """Rebuild the subtree rooted at *node_id* (returns a DOM node)."""
        from repro.core.reconstruct import reconstruct_subtree

        return reconstruct_subtree(self, doc, node_id)

    def string_value(self, doc: int, node_id: int) -> str:
        """The XPath *string-value* of a node: all descendant text.

        Unlike the stored ``value`` column (direct text only), this
        walks the whole subtree — one ordered range scan for Global/
        Dewey/ORDPATH, a reconstruction walk for Local.
        """
        row = self.fetch_node(doc, node_id)
        if row is None:
            raise StorageError(f"no node {node_id} in document {doc}")
        if row["kind"] != "elem":
            return row["value"] or ""
        encoding = self.encoding_for(doc)
        name = encoding.name
        node_table = encoding.node_table.name
        if name == "global":
            result = self._execute(
                f"SELECT value FROM {node_table} "
                "WHERE doc = ? AND pos >= ? AND pos <= ? "
                "AND kind = 'text' ORDER BY pos",
                (doc, row["pos"], row["endpos"]),
            )
        elif name == "dewey":
            key = DeweyKey.decode(row["dkey"])
            result = self._execute(
                f"SELECT value FROM {node_table} "
                f"WHERE doc = ? AND dkey > ? AND dkey < ? "
                f"AND kind = 'text' ORDER BY dkey",
                (doc, key.encode(), key.sibling_successor().encode()),
            )
        elif name == "ordpath":
            from repro.core.ordpath import OrdpathKey

            key = OrdpathKey.decode(row["okey"])
            result = self._execute(
                f"SELECT value FROM {node_table} "
                f"WHERE doc = ? AND okey > ? AND okey < ? "
                f"AND kind = 'text' ORDER BY okey",
                (doc, key.encode(), key.encode_successor()),
            )
        else:
            node = self.reconstruct_subtree(doc, node_id)
            return node.text_value()  # type: ignore[union-attr]
        return "".join(r[0] for r in result.rows if r[0] is not None)

    def query_string_values(self, xpath: str, doc: int) -> list[str]:
        """XPath string-values of every result, in document order."""
        out = []
        for item in self.query(xpath, doc):
            if item.kind == "attribute":
                out.append(item.value or "")
            else:
                out.append(self.string_value(doc, item.node_id))
        return out

    # -- row-level helpers shared with updates/reconstruct ------------------------------

    def fetch_node(self, doc: int, node_id: int) -> Optional[dict]:
        """Fetch one node row as a column->value dict."""
        encoding = self.encoding_for(doc)
        columns = encoding.node_columns()
        result = self._execute(
            f"SELECT {', '.join(columns)} FROM {encoding.node_table.name} "
            f"WHERE doc = ? AND id = ?",
            (doc, node_id),
        )
        if not result.rows:
            return None
        return dict(zip(columns, result.rows[0]))

    def fetch_children(self, doc: int, parent_id: int) -> list[dict]:
        """Fetch the child rows of *parent_id*, in document order."""
        encoding = self.encoding_for(doc)
        columns = encoding.node_columns()
        order = encoding.sibling_order_column
        result = self._execute(
            f"SELECT {', '.join(columns)} FROM {encoding.node_table.name} "
            f"WHERE doc = ? AND parent = ? ORDER BY {order}",
            (doc, parent_id),
        )
        return [dict(zip(columns, row)) for row in result.rows]

    def fetch_attributes(self, doc: int, owner_ids: Sequence[int]) -> list[tuple]:
        """Fetch (owner, name, value) for the given owners."""
        out: list[tuple] = []
        attr_table = self.attr_table_for(doc)
        owner_list = list(owner_ids)
        for start in range(0, len(owner_list), _ID_BATCH):
            batch = owner_list[start : start + _ID_BATCH]
            placeholders = ", ".join("?" for _ in batch)
            result = self._execute(
                f"SELECT owner, name, value FROM {attr_table} "
                f"WHERE doc = ? AND owner IN ({placeholders})",
                (doc, *batch),
            )
            out.extend(result.rows)
        return out

    def dewey_key_of(self, row: dict) -> DeweyKey:
        """Decode the Dewey key of a fetched row (Dewey encoding only)."""
        return DeweyKey.decode(row["dkey"])

    def node_count(self, doc: int) -> int:
        result = self._execute(
            f"SELECT COUNT(*) FROM {self.node_table_for(doc)} "
            f"WHERE doc = ?",
            (doc,),
        )
        return int(result.rows[0][0])
