"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can install a single ``except`` clause around any use of the public
API.  Sub-hierarchies mirror the subsystems: the XML substrate, the XPath
substrate, the relational engine, and the ordered-storage core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class XmlError(ReproError):
    """Base class for errors in the XML substrate (:mod:`repro.xmldom`)."""


class XmlSyntaxError(XmlError):
    """Malformed XML input.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XPathError(ReproError):
    """Base class for errors in the XPath substrate (:mod:`repro.xpath`)."""


class XPathSyntaxError(XPathError):
    """Malformed XPath expression."""

    def __init__(self, message: str, position: int = 0) -> None:
        self.position = position
        super().__init__(f"{message} (at offset {position})")


class UnsupportedXPathError(XPathError):
    """Syntactically valid XPath outside the supported fragment."""


class DatabaseError(ReproError):
    """Base class for errors raised by the relational substrate."""


class SqlSyntaxError(DatabaseError):
    """Malformed SQL text handed to the minidb engine."""

    def __init__(self, message: str, position: int = 0) -> None:
        self.position = position
        super().__init__(f"{message} (at offset {position})")


class CatalogError(DatabaseError):
    """Unknown or duplicate table/column/index names."""


class ExecutionError(DatabaseError):
    """Runtime failure while executing a statement (type errors etc.)."""


class StorageError(ReproError):
    """Base class for errors in the ordered-XML storage core."""


class TransientStorageError(StorageError):
    """A transient backend fault survived every retry attempt.

    Raised by :class:`repro.robust.RetryPolicy` after exhausting its
    bounded backoff schedule; the last underlying error is chained as
    ``__cause__`` and kept in :attr:`last_error`.

    Attributes
    ----------
    attempts:
        How many attempts were made before giving up.
    last_error:
        The final transient exception observed.
    """

    def __init__(
        self, message: str, attempts: int = 0,
        last_error: "Exception | None" = None,
    ) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(message)


class ConcurrencyError(StorageError):
    """Base class for errors in the concurrent-serving layer
    (:mod:`repro.concurrent`): pools, write queues, latches."""


class PoolExhaustedError(ConcurrencyError):
    """No pooled connection became available within the acquire
    timeout (every connection is checked out or pinned)."""


class WriteQueueClosedError(ConcurrencyError):
    """An update was submitted to a write queue that is closed, or
    whose writer thread died (e.g. the backend crashed mid-batch)."""


class EncodingError(StorageError):
    """Invalid order-encoding operation (e.g. exhausted key space)."""


class UpdateError(StorageError):
    """Invalid update request (e.g. inserting at a nonexistent position)."""


class TranslationError(StorageError):
    """XPath query that cannot be translated to SQL for an encoding."""


class MigrationError(StorageError):
    """Invalid encoding-migration request (unknown target, migration
    already running, shadow store misuse)."""


class MigrationAborted(MigrationError):
    """An online encoding migration aborted and rolled itself back.

    The live document is untouched and still served from its original
    encoding; shadow state has been discarded.  ``reason`` carries the
    trigger (journal overflow, poisoned journal, cutover sanity-check
    failure, replay error).
    """

    def __init__(self, message: str, reason: str = "") -> None:
        self.reason = reason or message
        super().__init__(message)
