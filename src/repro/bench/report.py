"""Bench reporting: shape verdicts and the machine-readable results file.

The experiment suite's value is the *shapes* — who wins, by roughly
what factor, where the crossovers fall — not the absolute numbers.
:func:`compute_verdicts` checks each experiment's headline claim
against its measured rows; :func:`results_payload` /
:func:`write_results_json` serialize the whole run (tables, notes,
verdicts, platform) as ``BENCH_results.json`` so CI and downstream
tooling can diff runs without scraping markdown.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.bench.harness import ExperimentTable

#: The comparative claim each experiment reproduces (rendered into
#: EXPERIMENTS.md next to the measured table).
EXPECTED_SHAPES = {
    "E1": "Global stores two 4-byte integers per node, Local one; Dewey "
          "keys are variable-length but stay near Local's size under the "
          "binary codec (dotted text would roughly double them).",
    "E2": "Loading is comparable across encodings; Dewey pays a little "
          "extra for key construction.",
    "E3": "Global and Dewey answer every ordered query in comparable "
          "time; Local is an order of magnitude slower on the "
          "document-order axes Q7/Q8 (depth-expansion joins plus the "
          "client-side order-resolution pass).",
    "E4": "All three encodings are comparable when order plays no role.",
    "E5": "Front/middle inserts: Global relabels the document tail, "
          "Local only the following siblings, Dewey the following "
          "siblings' subtrees.  Appending is cheap for everyone.  At "
          "nested insertion points Dewey's locality beats Global by "
          "orders of magnitude.",
    "E6": "Subtree inserts follow the E5 ordering; deletes never "
          "relabel under any encoding.",
    "E7": "The headline crossover: Global/Dewey win read-only "
          "workloads, Local wins write-only, Dewey is best or near-best "
          "across the middle.",
    "E8": "Full reconstruction is one ordered scan for everyone; "
          "Local's level-by-level subtree fetch is the slow outlier as "
          "subtree size grows.",
    "E9": "Static SQL complexity: identical for unordered paths; Local "
          "needs depth-expansion arms for transitive and document-order "
          "axes, growing with document depth.",
    "E9b": "(Extension beyond the paper.)  Shape-keyed compiled plans "
           "make warm translation parameter binding only: re-translating "
           "the query mix with the compile cache warm costs a fraction "
           "of cold parse-and-compile, on every encoding.",
    "E10": "Gaps absorb insertion bursts: relabeled rows collapse as "
           "the gap grows, at the cost of order-value space.",
    "E11": "(Extension beyond the paper.)  ORDPATH careting removes "
           "relabeling entirely — zero rows touched on any insert — "
           "paying with longer keys; query latency stays comparable to "
           "Dewey.",
    "E12": "(Extension beyond the paper.)  Query latency grows with "
           "document/result size for every encoding; Local's "
           "document-order queries degrade fastest.",
    "E14": "(Extension beyond the paper.)  With one writer active, "
           "pooled WAL connections keep readers running during write "
           "transactions; the serialized shared connection stalls them "
           "for each transaction's whole lock-hold window.",
    "E15": "(Extension beyond the paper.)  Epoch-invalidated plan/"
           "result caching answers the repeated ordered mix at least "
           "2x faster at steady state on every encoding, and an "
           "interleaved update/query workload produces zero result "
           "mismatches against a caching-off store.",
    "E16": "(Extension beyond the paper.)  On a workload that shifts "
           "from query-heavy to update-heavy, the advisor-triggered "
           "online migration lands within a whisker of (or beats) the "
           "best static encoding in total logical I/O — including the "
           "migration's own copy traffic — while every static choice "
           "overpays in one regime.",
    "E17": "(Extension beyond the paper.)  Under a mixed load with a "
           "paced writer, a 4-shard cluster sustains >= 1.5x the "
           "aggregate read throughput of the single-process daemon — "
           "on one core the win is cache-epoch isolation (a write "
           "invalidates result caches only on its own shard), not CPU "
           "parallelism.",
    "E18": "(Extension beyond the paper.)  Secondary path and value "
           "indexes answer selective deep // descents and value "
           "predicates at least 2x faster than the structural-join "
           "scans on every encoding and both backends, with "
           "byte-identical answers; the win is largest for Local "
           "(whose unindexed descents pay depth-expansion joins) and "
           "smallest for Global (whose pos/endpos range scan is "
           "already one predicate).  On the update-heavy burst, "
           "incremental maintenance from the touched set sustains at "
           "least 2x the eager rebuild-everything rate while leaving "
           "byte-identical index tables — repair cost tracks the "
           "touched rows, not the document.",
}


@dataclass(frozen=True)
class Verdict:
    """One checked shape claim."""

    experiment: str
    claim: str
    ok: bool

    def render(self) -> str:
        return f"{'PASS' if self.ok else 'FAIL'}  {self.experiment}: " \
               f"{self.claim}"


def compute_verdicts(
    tables: Sequence[ExperimentTable],
) -> list[Verdict]:
    """Check each experiment's headline shape claim against its rows.

    Experiments absent from *tables* (partial runs) are skipped rather
    than failed, so the checker works on any subset of the suite.
    """
    by_id = {t.id: t for t in tables}
    verdicts: list[Verdict] = []

    def record(eid: str, claim: str, ok: bool) -> None:
        verdicts.append(Verdict(eid, claim, ok))

    t = by_id.get("E1")
    if t is not None:
        dewey = [r for r in t.rows if r[1] == "dewey"]
        record("E1",
               "Dewey labels compact (4-8 bytes/node, binary codec)",
               all(4.0 < r[3] < 8.0 for r in dewey))

    t = by_id.get("E3")
    if t is not None:
        doc_order = [r for r in t.rows if r[0] in ("Q7", "Q8")]
        record(
            "E3", "Local slowest on document-order axes",
            all(r[4] > r[3] and r[4] > r[5] for r in doc_order),
        )

    t = by_id.get("E4")
    if t is not None:
        spreads = [
            max(r[3], r[4], r[5]) / max(min(r[3], r[4], r[5]), 1e-9)
            for r in t.rows
        ]
        # "Comparable" = same order of magnitude (sub-ms timings are
        # noisy; Local also pays its client-side ordering pass here),
        # in contrast to the 10-1000x separations on the ordered axes.
        record("E4",
               "Encodings within an order of magnitude (unordered)",
               all(s < 8 for s in spreads))

    t = by_id.get("E5")
    if t is not None:
        nested = [
            r for r in t.rows if r[1] == "nested" and r[2] != "last"
        ]
        by_enc: dict[str, float] = {}
        for r in nested:
            by_enc.setdefault(r[0], 0)
            by_enc[r[0]] += r[4]
        record("E5", "Nested inserts: Dewey locality beats Global",
               by_enc.get("dewey", 0) * 3 < by_enc.get("global", 1))

    t = by_id.get("E7")
    if t is not None:
        first, last = t.rows[0], t.rows[-1]
        record(
            "E7",
            "Crossover: Global/Dewey win read-only, Local write-only",
            first[-1] in ("global", "dewey") and last[-1] == "local",
        )

    t = by_id.get("E9b")
    if t is not None:
        record(
            "E9b",
            "Warm compile cache >= 2x cheaper than cold translation",
            all(r[4] >= 2.0 for r in t.rows),
        )

    t = by_id.get("E10")
    if t is not None:
        for encoding in ("global", "dewey"):
            rows = [r for r in t.rows if r[0] == encoding]
            record(
                "E10", f"gaps shrink {encoding} relabeling",
                rows[0][3] > rows[-1][3],
            )

    t = by_id.get("E11")
    if t is not None:
        ordpath = next(r for r in t.rows if r[0] == "ordpath")
        dewey_row = next(r for r in t.rows if r[0] == "dewey")
        record("E11", "ORDPATH never relabels; Dewey does",
               ordpath[2] == 0 and dewey_row[2] > 0)

    t = by_id.get("E13")
    if t is not None:
        q7 = next(r for r in t.rows if r[0] == "Q7")
        record("E13", "Local logical I/O blows up on following::",
               q7[3] > 3 * q7[2] and q7[3] > 3 * q7[4])

    t = by_id.get("E14")
    if t is not None:
        pooled = [r for r in t.rows if r[0] == "pooled"]
        top = max(pooled, key=lambda r: r[1])  # highest reader count
        record(
            "E14",
            "Pooled readers >= 2x serialized at max reader count, "
            "clean audits",
            top[4] >= 2.0 and all(r[5] == 0 for r in t.rows),
        )

    t = by_id.get("E15")
    if t is not None:
        record(
            "E15",
            "Caching >= 2x on the repeated ordered mix, zero mixed-"
            "workload mismatches",
            all(r[3] >= 2.0 and r[5] == 0 for r in t.rows),
        )

    t = by_id.get("E16")
    if t is not None:
        totals = {r[0]: r[4] for r in t.rows}
        adaptive = next(r for r in t.rows if r[0] == "adaptive")
        best_static = min(
            total
            for name, total in totals.items()
            if name != "adaptive"
        )
        record(
            "E16",
            "Adaptive migration <= best static encoding in logical "
            "I/O (5% tolerance), and it actually migrated",
            adaptive[4] <= best_static * 1.05 and adaptive[5] != "-",
        )

    t = by_id.get("E17")
    if t is not None:
        top = max(r for r in t.rows if r[0] != 1)  # most shards
        record(
            "E17",
            "Sharded serving >= 1.5x single-process read throughput "
            "at the highest shard count, p50/p99 reported, no read "
            "errors",
            top[2] >= 1.5
            and top[3] > 0
            and top[4] > 0
            and all(r[6] == 0 for r in t.rows),
        )

    t = by_id.get("E18")
    if t is not None:
        record(
            "E18",
            "Indexed >= 2x unindexed on the deep-descent and "
            "value-predicate mix for every encoding on both backends, "
            "both index kinds used, incremental maintenance >= 2x the "
            "eager rebuild on the update burst, zero mismatches",
            all(
                r[4] >= 2.0
                and r[5] == "path-index+value-index"
                and r[8] >= 2.0
                and r[9] == 0
                for r in t.rows
            )
            and {r[0] for r in t.rows} == {"sqlite", "minidb"},
        )

    return verdicts


def render_verdicts(verdicts: Sequence[Verdict]) -> list[str]:
    return [v.render() for v in verdicts]


def results_payload(
    tables: Sequence[ExperimentTable],
    verdicts: Optional[Sequence[Verdict]] = None,
    elapsed_seconds: Optional[float] = None,
) -> dict:
    """The JSON-serializable record of one bench run."""
    if verdicts is None:
        verdicts = compute_verdicts(tables)
    return {
        "schema": "repro-bench-results/1",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "elapsed_seconds": elapsed_seconds,
        "experiments": [
            {
                "id": table.id,
                "title": table.title,
                "expected_shape": EXPECTED_SHAPES.get(table.id),
                "columns": list(table.columns),
                "rows": [list(row) for row in table.rows],
                "notes": list(table.notes),
                "elapsed_seconds": getattr(
                    table, "elapsed_seconds", None
                ),
                "phase_ms": dict(getattr(table, "phase_ms", {})),
                "metrics": dict(getattr(table, "metrics", {})),
            }
            for table in tables
        ],
        "verdicts": [
            {
                "experiment": v.experiment,
                "claim": v.claim,
                "ok": v.ok,
            }
            for v in verdicts
        ],
        "all_shapes_hold": all(v.ok for v in verdicts),
    }


def write_results_json(
    path: Union[str, Path],
    tables: Sequence[ExperimentTable],
    verdicts: Optional[Sequence[Verdict]] = None,
    elapsed_seconds: Optional[float] = None,
) -> Path:
    """Write ``BENCH_results.json``; returns the path written."""
    path = Path(path)
    payload = results_payload(tables, verdicts, elapsed_seconds)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
