"""Benchmark harness utilities: timing, result tables, store builders."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.store import XmlStore
from repro.xmldom.dom import Document

ENCODING_NAMES = ("global", "local", "dewey")


def timed(fn: Callable[[], object], repeat: int = 3) -> float:
    """Median wall-clock seconds of *repeat* calls to *fn*."""
    samples = []
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


def build_store(
    document: Document,
    encoding: str,
    backend: str = "sqlite",
    gap: int = 1,
) -> tuple[XmlStore, int]:
    """Create a fresh store and load *document*; returns (store, doc).

    Caching is off regardless of ``REPRO_CACHE``: these stores measure
    raw per-encoding engine cost, and a result-cache hit would time the
    cache instead of the query.  Experiments that study caching itself
    (E9b, E15) construct their stores explicitly.
    """
    store = XmlStore(
        backend=backend, encoding=encoding, gap=gap, cache=False
    )
    doc = store.load(document)
    return store, doc


@dataclass
class ExperimentTable:
    """One experiment's result table (rendered into EXPERIMENTS.md)."""

    id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Filled by ``run_all``: wall-clock seconds for the experiment,
    #: per-phase span totals (ms), and the metrics snapshot taken while
    #: it ran.  Empty when the experiment function is called directly.
    elapsed_seconds: Optional[float] = None
    phase_ms: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Render as a fixed-width text table."""
        header = [str(c) for c in self.columns]
        body = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body))
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"{self.id}: {self.title}"]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                "  ".join(c.rjust(w) if _is_numeric(c) else c.ljust(w)
                          for c, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = [
            "| " + " | ".join(str(c) for c in self.columns) + " |",
            "| " + " | ".join("---" for _ in self.columns) + " |",
        ]
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format_cell(v) for v in row) + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def speedup(
    baseline: float, other: float, floor: float = 1e-9
) -> float:
    """How many times faster *baseline* is than *other*."""
    return other / max(baseline, floor)
