"""Benchmark harness and the reconstructed experiment suite E1-E14."""

from repro.bench.harness import (
    ENCODING_NAMES,
    ExperimentTable,
    build_store,
    speedup,
    timed,
)
from repro.bench.experiments import run_all
from repro.bench.report import (
    EXPECTED_SHAPES,
    Verdict,
    compute_verdicts,
    render_verdicts,
    results_payload,
    write_results_json,
)

__all__ = [
    "ENCODING_NAMES",
    "EXPECTED_SHAPES",
    "ExperimentTable",
    "Verdict",
    "build_store",
    "compute_verdicts",
    "render_verdicts",
    "results_payload",
    "run_all",
    "speedup",
    "timed",
    "write_results_json",
]
