"""Benchmark harness and the reconstructed experiment suite E1-E10."""

from repro.bench.harness import (
    ENCODING_NAMES,
    ExperimentTable,
    build_store,
    speedup,
    timed,
)
from repro.bench.experiments import run_all

__all__ = [
    "ENCODING_NAMES",
    "ExperimentTable",
    "build_store",
    "run_all",
    "speedup",
    "timed",
]
