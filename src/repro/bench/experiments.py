"""The reconstructed evaluation: experiments E1-E18.

Each ``run_eN_*`` function executes one experiment and returns an
:class:`~repro.bench.harness.ExperimentTable`.  ``run_all`` executes the
whole suite (used by ``benchmarks/run_experiments.py`` to regenerate
EXPERIMENTS.md); the ``benchmarks/bench_eN_*.py`` files wrap the same
building blocks in pytest-benchmark fixtures.

Defaults are sized to finish in seconds on a laptop while preserving the
paper's comparative shapes; every function takes size parameters for
larger runs.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.bench.harness import (
    ENCODING_NAMES,
    ExperimentTable,
    build_store,
    timed,
)
from repro.core.dewey import DeweyKey
from repro.core.shredder import shred
from repro.core.translator import make_translator
from repro.errors import TranslationError
from repro.store import XmlStore
from repro.workload import (
    MixedWorkload,
    ORDERED_QUERIES,
    UNORDERED_QUERIES,
    UpdateWorkload,
    article_corpus,
    document_stats,
    sized_article_corpus,
)

#: Abstract per-node order-label sizes (bytes), for E1: integers cost 4.
_INT_BYTES = 4


# ---------------------------------------------------------------------------
# E1: storage
# ---------------------------------------------------------------------------


def run_e1_storage(
    sizes: Sequence[int] = (1000, 5000, 20000),
) -> ExperimentTable:
    """Rows and order-label bytes per encoding across document sizes."""
    table = ExperimentTable(
        "E1",
        "Storage: order-label size per node",
        ("nodes", "encoding", "rows", "avg label bytes", "total label KB"),
    )
    for target in sizes:
        document = sized_article_corpus(target)
        shredded = shred(document)
        n = shredded.node_count()
        for name in ENCODING_NAMES:
            if name == "global":
                total = n * 2 * _INT_BYTES
            elif name == "local":
                total = n * _INT_BYTES
            else:
                total = sum(
                    len(DeweyKey(node.dewey).encode())
                    for node in shredded.nodes
                )
            table.add_row(
                n, name, n, round(total / n, 2), round(total / 1024, 1)
            )
    dewey_text = None
    document = sized_article_corpus(sizes[0])
    shredded = shred(document)
    dewey_text = sum(
        len(str(DeweyKey(node.dewey))) for node in shredded.nodes
    ) / shredded.node_count()
    table.add_note(
        f"dotted-text Dewey keys would average {dewey_text:.1f} bytes/node "
        "at the smallest size; the binary codec is the practical choice"
    )
    return table


# ---------------------------------------------------------------------------
# E2: loading
# ---------------------------------------------------------------------------


def run_e2_loading(
    sizes: Sequence[int] = (1000, 5000),
    backend: str = "sqlite",
    repeat: int = 3,
) -> ExperimentTable:
    """Shred + bulk-load time per encoding."""
    table = ExperimentTable(
        "E2",
        f"Loading time ({backend})",
        ("nodes", "encoding", "load ms"),
    )
    for target in sizes:
        document = sized_article_corpus(target)
        n = document_stats(document)["nodes"]
        for name in ENCODING_NAMES:
            seconds = timed(
                lambda: build_store(document, name, backend), repeat
            )
            table.add_row(n, name, round(seconds * 1000, 2))
    return table


# ---------------------------------------------------------------------------
# E3/E4: query performance
# ---------------------------------------------------------------------------


def _query_experiment(
    table_id: str,
    title: str,
    queries,
    articles: int,
    backend: str,
    repeat: int,
) -> ExperimentTable:
    document = article_corpus(articles=articles)
    table = ExperimentTable(
        table_id,
        title,
        ("query", "feature", "results",
         *(f"{n} ms" for n in ENCODING_NAMES)),
    )
    stores = {
        name: build_store(document, name, backend)
        for name in ENCODING_NAMES
    }
    for query in queries:
        cells = []
        count = None
        for name in ENCODING_NAMES:
            store, doc = stores[name]
            try:
                count = len(store.query(query.xpath, doc))
                seconds = timed(
                    lambda: store.query(query.xpath, doc), repeat
                )
                cells.append(round(seconds * 1000, 2))
            except TranslationError:
                cells.append("n/a")
        table.add_row(query.id, query.feature, count, *cells)
    return table


def run_e3_ordered_queries(
    articles: int = 20, backend: str = "sqlite", repeat: int = 3
) -> ExperimentTable:
    """Ordered query suite Q1-Q8 across encodings."""
    return _query_experiment(
        "E3",
        f"Ordered query performance ({backend})",
        ORDERED_QUERIES,
        articles,
        backend,
        repeat,
    )


def run_e4_unordered_queries(
    articles: int = 20, backend: str = "sqlite", repeat: int = 3
) -> ExperimentTable:
    """Unordered query suite U1-U4 across encodings."""
    return _query_experiment(
        "E4",
        f"Unordered query performance ({backend})",
        UNORDERED_QUERIES,
        articles,
        backend,
        repeat,
    )


# ---------------------------------------------------------------------------
# E5: insert position sweep
# ---------------------------------------------------------------------------


def run_e5_insert_position(
    articles: int = 30,
    inserts: int = 20,
    backend: str = "sqlite",
) -> ExperimentTable:
    """Single-fragment inserts at first/middle/last positions.

    Two insertion scopes are measured: *top-level* (a new article under
    the journal root — every encoding that renumbers must touch the
    document tail) and *nested* (a new paragraph inside one section in
    the middle of the document — here Dewey only relabels that section's
    few following siblings, while Global still shifts the whole tail:
    the paper's key separation between the two).
    """
    document = article_corpus(articles=articles)
    scopes = (
        ("top-level", "/journal"),
        ("nested", f"/journal/article[{max(1, articles // 2)}]/section[1]"),
    )
    table = ExperimentTable(
        "E5",
        "Insert cost vs. position (dense numbering)",
        ("encoding", "scope", "position", "inserts", "rows relabeled",
         "ms total"),
    )
    for name in ENCODING_NAMES:
        for scope_name, scope_xpath in scopes:
            for where in ("first", "middle", "last"):
                store, doc = build_store(document, name, backend)
                workload = UpdateWorkload(store, doc)
                parent_id = store.query(scope_xpath, doc)[0].node_id
                started = time.perf_counter()
                stream = workload.insert_stream(
                    parent_id, where, inserts, payload_nodes=2
                )
                elapsed = time.perf_counter() - started
                table.add_row(
                    name, scope_name, where, stream.operations,
                    stream.relabeled, round(elapsed * 1000, 2),
                )
    return table


# ---------------------------------------------------------------------------
# E6: subtree insert / delete
# ---------------------------------------------------------------------------


def run_e6_subtree_updates(
    articles: int = 30,
    operations: int = 10,
    backend: str = "sqlite",
) -> ExperimentTable:
    """Insert and delete multi-node subtrees in the document middle."""
    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E6",
        "Subtree insert / delete",
        ("encoding", "operation", "ops", "rows touched", "ms total"),
    )
    for name in ENCODING_NAMES:
        store, doc = build_store(document, name, backend)
        workload = UpdateWorkload(store, doc)
        root_id = store.query("/journal", doc)[0].node_id
        started = time.perf_counter()
        stream_relabeled = 0
        inserted = 0
        for _ in range(operations):
            report = workload.insert_at(
                root_id, "middle", payload_nodes=10, tag="article"
            )
            stream_relabeled += report.relabeled
            inserted += report.inserted
        insert_elapsed = time.perf_counter() - started
        table.add_row(
            name, "insert subtree", operations,
            stream_relabeled + inserted,
            round(insert_elapsed * 1000, 2),
        )

        started = time.perf_counter()
        deleted = 0
        for _ in range(operations):
            report = workload.delete_random("/journal/article")
            if report is not None:
                deleted += report.deleted
        delete_elapsed = time.perf_counter() - started
        table.add_row(
            name, "delete subtree", operations, deleted,
            round(delete_elapsed * 1000, 2),
        )
    return table


# ---------------------------------------------------------------------------
# E7: mixed workload crossover
# ---------------------------------------------------------------------------


def run_e7_mixed_workload(
    articles: int = 20,
    operations: int = 120,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    backend: str = "sqlite",
) -> ExperimentTable:
    """Total time vs. update fraction: the paper's headline trade-off."""
    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E7",
        "Mixed workload: total seconds vs. update fraction",
        ("update %", *(f"{n} s" for n in ENCODING_NAMES), "winner"),
    )
    for fraction in fractions:
        cells = {}
        for name in ENCODING_NAMES:
            store, doc = build_store(document, name, backend)
            mix = MixedWorkload(
                store, doc, ORDERED_QUERIES + UNORDERED_QUERIES,
                insert_parent_xpath="/journal/article/section[1]",
            )
            result = mix.run(operations, fraction)
            cells[name] = result.total_seconds
        winner = min(cells, key=cells.get)
        table.add_row(
            int(fraction * 100),
            *(round(cells[n], 3) for n in ENCODING_NAMES),
            winner,
        )
    return table


# ---------------------------------------------------------------------------
# E8: reconstruction
# ---------------------------------------------------------------------------


def run_e8_reconstruction(
    articles: int = 40, backend: str = "sqlite", repeat: int = 3
) -> ExperimentTable:
    """Full-document and subtree reconstruction time."""
    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E8",
        "Reconstruction time",
        ("encoding", "scope", "nodes", "ms"),
    )
    for name in ENCODING_NAMES:
        store, doc = build_store(document, name, backend)
        total = store.node_count(doc)
        seconds = timed(lambda: store.reconstruct(doc), repeat)
        table.add_row(name, "full document", total,
                      round(seconds * 1000, 2))
        target = store.query(
            f"/journal/article[{articles // 2}]", doc
        )[0].node_id
        subtree_nodes = 1 + len(
            store.query(
                f"/journal/article[{articles // 2}]/descendant-or-self::node()",
                doc,
            )
        )
        seconds = timed(
            lambda: store.reconstruct_subtree(doc, target), repeat
        )
        table.add_row(name, "one article subtree", subtree_nodes,
                      round(seconds * 1000, 2))
    return table


# ---------------------------------------------------------------------------
# E9: translation complexity (static)
# ---------------------------------------------------------------------------


def run_e9_translation(max_depth: int = 6) -> ExperimentTable:
    """Static SQL complexity per query class per encoding."""
    table = ExperimentTable(
        "E9",
        "Translation complexity (joins + subqueries + expansion arms)",
        ("query", "feature",
         *(f"{n} ops" for n in ENCODING_NAMES)),
    )
    for query in ORDERED_QUERIES + UNORDERED_QUERIES:
        cells = []
        for name in ENCODING_NAMES:
            translator = make_translator(name, max_depth=max_depth)
            try:
                translated = translator.translate(query.xpath, doc=1)
                cells.append(
                    translated.stats.total_relational_operations()
                )
            except TranslationError:
                cells.append("n/a")
        table.add_row(query.id, query.feature, *cells)
    table.add_note(
        f"Local expansion arms counted at max_depth={max_depth}; they "
        "grow linearly with document depth"
    )
    return table


def run_e9b_compile_cache(
    articles: int = 8,
    repeat: int = 20,
    backend: str = "sqlite",
) -> ExperimentTable:
    """Dynamic translation cost: cold compile vs warm shape-keyed plans.

    Cold runs pay parse + shape extraction + AST compilation for every
    query; warm runs hit the epoch-checked plan cache and only bind
    document/context/literal parameters into the compiled plan.
    """
    from repro.store import _parse_and_extract

    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E9b",
        "Translation cost: cold compile vs warm shape-keyed plan cache",
        ("encoding", "queries", "cold ms", "warm ms", "speedup"),
    )
    for name in ENCODING_NAMES:
        store = XmlStore(backend=backend, encoding=name, cache=True)
        doc = store.load(document)
        queries = []
        for query in ORDERED_QUERIES + UNORDERED_QUERIES:
            try:
                store.translate(query.xpath, doc)
            except TranslationError:
                continue
            queries.append(query.xpath)

        def run_batch() -> None:
            for xpath in queries:
                store.translate(xpath, doc)

        def run_cold() -> None:
            # Drop the process-wide shape cache and this store's plan
            # cache so every translation compiles from scratch.
            _parse_and_extract.cache_clear()
            store.cache.bump()
            run_batch()

        cold = timed(run_cold, repeat)
        run_batch()  # ensure the plan cache is warm
        warm = timed(run_batch, repeat)
        table.add_row(
            name, len(queries),
            round(cold * 1000, 3), round(warm * 1000, 3),
            round(cold / max(warm, 1e-9), 1),
        )
    table.add_note(
        "Plans are keyed on query shape (encoding, XPath shape, context "
        "kind, max depth) — never on document id or literal values — so "
        "warm translations skip parsing and compilation entirely"
    )
    return table


# ---------------------------------------------------------------------------
# E10: sparse vs dense numbering
# ---------------------------------------------------------------------------


def run_e10_sparse_numbering(
    articles: int = 20,
    inserts: int = 40,
    gaps: Sequence[int] = (1, 16, 256),
    backend: str = "sqlite",
) -> ExperimentTable:
    """Repeated middle insertions under different gap factors."""
    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E10",
        "Sparse numbering: relabeled rows over an insert burst",
        ("encoding", "gap", "inserts", "rows relabeled", "ms total"),
    )
    for name in ENCODING_NAMES:
        for gap in gaps:
            store, doc = build_store(document, name, backend, gap=gap)
            workload = UpdateWorkload(store, doc)
            root_id = store.query("/journal", doc)[0].node_id
            started = time.perf_counter()
            stream = workload.insert_stream(
                root_id, "middle", inserts, payload_nodes=2
            )
            elapsed = time.perf_counter() - started
            table.add_row(
                name, gap, inserts, stream.relabeled,
                round(elapsed * 1000, 2),
            )
    return table


# ---------------------------------------------------------------------------
# E11 (extension): Dewey vs. ORDPATH under adversarial insertion
# ---------------------------------------------------------------------------


def run_e11_ordpath(
    articles: int = 12,
    inserts: int = 30,
    backend: str = "sqlite",
) -> ExperimentTable:
    """The ORDPATH extension vs. Dewey: relabeling vs. key growth.

    Repeated insertion at one spot is Dewey's worst case (every insert
    relabels the following siblings' subtrees) and ORDPATH's design
    target (carets make new keys *between* existing ones, relabeling
    nothing — at the cost of longer keys).
    """
    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E11",
        "Extension: Dewey vs. ORDPATH under a same-spot insert burst",
        ("encoding", "inserts", "rows relabeled", "ms total",
         "avg key bytes", "max key bytes", "query Q5 ms"),
    )
    for name in ("dewey", "ordpath"):
        store, doc = build_store(document, name, backend)
        workload = UpdateWorkload(store, doc)
        root_id = store.query("/journal", doc)[0].node_id
        started = time.perf_counter()
        relabeled = 0
        for _ in range(inserts):
            relabeled += workload.insert_at(root_id, "middle").relabeled
        elapsed = time.perf_counter() - started
        column = store.encoding.sibling_order_column
        lengths = [
            len(row[0])
            for row in store.backend.execute(
                f"SELECT {column} FROM {store.node_table} "
                f"WHERE doc = ?",
                (doc,),
            ).rows
        ]
        query = ORDERED_QUERIES[4]  # Q5: following-sibling
        query_seconds = timed(
            lambda: store.query(query.xpath, doc), 3
        )
        table.add_row(
            name, inserts, relabeled, round(elapsed * 1000, 2),
            round(sum(lengths) / len(lengths), 2), max(lengths),
            round(query_seconds * 1000, 2),
        )
    table.add_note(
        "ORDPATH is this reproduction's extension (the paper's update "
        "analysis anticipates it; published as O'Neil et al., SIGMOD "
        "2004): zero relabeling, paid for with longer (fixed 4-byte-"
        "component) keys"
    )
    return table


# ---------------------------------------------------------------------------
# E12: document-size scaling
# ---------------------------------------------------------------------------


def run_e12_scaling(
    sizes: Sequence[int] = (500, 2000, 8000),
    backend: str = "sqlite",
    repeat: int = 3,
) -> ExperimentTable:
    """Query latency vs. document size for three representative queries.

    U2 (descendant scan) grows with result size for everyone; Q5
    (sibling axis) stays cheap; Q7 (document-order axis) separates the
    encodings — Local's depth-expansion joins grow fastest.
    """
    table = ExperimentTable(
        "E12",
        "Scaling: query ms vs. document size",
        ("nodes", "query", *(f"{n} ms" for n in ENCODING_NAMES)),
    )
    probes = {
        "U2 //para": "//para",
        "Q5 sibling": "/journal/article/section[1]"
                      "/following-sibling::section",
        "Q7 following": "/journal/article[3]/following::author",
    }
    for target in sizes:
        document = sized_article_corpus(target)
        stores = {
            name: build_store(document, name, backend)
            for name in ENCODING_NAMES
        }
        n = stores["global"][0].node_count(stores["global"][1])
        for label, xpath in probes.items():
            cells = []
            for name in ENCODING_NAMES:
                store, doc = stores[name]
                seconds = timed(lambda: store.query(xpath, doc), repeat)
                cells.append(round(seconds * 1000, 2))
            table.add_row(n, label, *cells)
    return table


# ---------------------------------------------------------------------------
# E13: logical I/O (engine-independent cost)
# ---------------------------------------------------------------------------


def run_e13_logical_io(articles: int = 10) -> ExperimentTable:
    """Rows read per query, per encoding, on the minidb engine.

    Wall-clock numbers depend on Python and the host; *rows touched* is
    the engine-independent unit the paper's analysis reasons in.  The
    minidb executor counts every row fetched from a table (via index or
    scan), giving the logical-I/O profile of each translation.
    """
    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E13",
        "Logical I/O: rows read per query (minidb counters)",
        ("query", "feature",
         *(f"{n} rows" for n in ENCODING_NAMES)),
    )
    stores = {
        name: build_store(document, name, "minidb")
        for name in ENCODING_NAMES
    }
    for query in ORDERED_QUERIES + UNORDERED_QUERIES:
        cells = []
        for name in ENCODING_NAMES:
            store, doc = stores[name]
            engine = store.backend.db  # type: ignore[attr-defined]
            engine.reset_stats()
            try:
                store.query(query.xpath, doc)
                cells.append(engine.stats.rows_read)
            except TranslationError:
                cells.append("n/a")
        table.add_row(query.id, query.feature, *cells)
    table.add_note(
        "counts include index-assisted fetches and the client-side "
        "order-resolution fetches Local needs"
    )
    return table


# ---------------------------------------------------------------------------
# E14: concurrent serving (pooled connections vs serialized sharing)
# ---------------------------------------------------------------------------


def run_e14_concurrency(
    articles: int = 60,
    reader_counts: Sequence[int] = (1, 2, 4, 8),
    seconds: float = 0.4,
    encoding: str = "global",
) -> ExperimentTable:
    """Reader throughput with one writer active: pooled vs serialized.

    Both modes run the byte-identical pre-translated statement stream
    against the same file-backed sqlite database.  *serialized* is the
    legacy shared connection, whose lock is held from BEGIN to COMMIT
    of every update transaction — readers stall whenever the writer is
    in one.  *pooled* gives each reader thread its own WAL connection
    and funnels the writer through the single-writer group-commit
    queue, so reads proceed during writes.

    The writer front-inserts under the Global encoding, the paper's
    relabeling worst case: every insert shifts the whole document tail
    in bulk UPDATE statements, so each write transaction holds the
    serialized lock for a long engine-side window.  That makes the
    separation lock-hold time, not core count — it shows up even on a
    single-CPU host.  Every run is followed by a full invariant audit.
    """
    import tempfile

    from repro.backends.pooled_sqlite import PooledSqliteBackend
    from repro.backends.sqlite_backend import SqliteBackend
    from repro.check import audit_store
    from repro.workload.mixer import ConcurrentWorkload

    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E14",
        "Concurrent serving: reader ops/s with one writer active",
        ("mode", "readers", "read ops/s", "write ops/s",
         "vs serialized", "violations"),
    )
    baseline: dict[int, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-e14-") as tmp:
        for mode in ("serialized", "pooled"):
            if mode == "pooled":
                backend: object = PooledSqliteBackend(
                    f"{tmp}/pooled.db",
                    capacity=max(reader_counts) + 2,
                )
            else:
                backend = SqliteBackend(f"{tmp}/serialized.db")
            store = XmlStore(backend=backend, encoding=encoding)
            try:
                doc = store.load(document)
                if mode == "pooled":
                    store.enable_write_queue()
                workload = ConcurrentWorkload(
                    store, doc,
                    ORDERED_QUERIES + UNORDERED_QUERIES,
                    insert_parent_xpath="/journal",
                    writer_position="front",
                )
                for readers in reader_counts:
                    result = workload.run(readers, seconds, writer=True)
                    if result.read_errors or result.write_error:
                        raise RuntimeError(
                            f"E14 {mode}/{readers} worker failure: "
                            f"{result.read_errors or result.write_error}"
                        )
                    violations = len(audit_store(store))
                    if mode == "serialized":
                        baseline[readers] = result.read_ops_per_second
                        ratio = 1.0
                    else:
                        ratio = result.read_ops_per_second / max(
                            baseline.get(readers, 0.0), 1e-9
                        )
                    table.add_row(
                        mode, readers,
                        round(result.read_ops_per_second, 1),
                        round(result.write_ops_per_second, 1),
                        round(ratio, 2),
                        violations,
                    )
            finally:
                store.close()
    table.add_note(
        "writer front-inserts fragments (Global's relabeling worst "
        "case) throughout; 'vs serialized' compares read throughput "
        "at equal reader count against the shared-connection baseline"
    )
    return table


# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# E15: plan/result caching (extension beyond the paper)
# ---------------------------------------------------------------------------


def run_e15_cache(
    articles: int = 12,
    repeat: int = 30,
    operations: int = 24,
    backend: str = "sqlite",
) -> ExperimentTable:
    """Repeated-query throughput cached vs. uncached, plus a mixed
    update/query correctness check against the uncached store.

    The throughput half re-runs the E3 ordered query mix ``repeat``
    times against a warm cache and against a caching-off store of the
    same corpus.  The correctness half replays a seeded E7-style
    interleaving of updates and the full query mix on both stores
    simultaneously and counts result mismatches (must be zero: every
    update bumps the epoch, so the caching store may never serve a
    pre-update plan or result).
    """
    import random

    from repro.check.fuzz import apply_operation, plan_operation

    document = article_corpus(articles=articles)
    table = ExperimentTable(
        "E15",
        "Plan/result caching: repeated E3 mix, cached vs uncached",
        ("encoding", "uncached q/s", "cached q/s", "speedup",
         "hit rate %", "mixed mismatches"),
    )

    def run_mix(store: XmlStore, doc: int) -> int:
        answered = 0
        for query in ORDERED_QUERIES:
            try:
                store.query(query.xpath, doc)
                answered += 1
            except TranslationError:
                pass
        return answered

    for name in (*ENCODING_NAMES, "ordpath"):
        cached = XmlStore(backend=backend, encoding=name, cache=True)
        uncached = XmlStore(backend=backend, encoding=name, cache=False)
        doc_c = cached.load(document)
        doc_u = uncached.load(document)

        run_mix(cached, doc_c)  # steady state: warm every cache layer
        rates = {}
        for store, doc in ((uncached, doc_u), (cached, doc_c)):
            answered = 0
            started = time.perf_counter()
            for _ in range(repeat):
                answered += run_mix(store, doc)
            elapsed = time.perf_counter() - started
            rates[store] = answered / elapsed if elapsed > 0 else 0.0

        mismatches = 0
        rng = random.Random(151_515)
        for _ in range(operations):
            op = plan_operation(rng, cached, doc_c)
            apply_operation(cached, doc_c, op)
            apply_operation(uncached, doc_u, op)
            for query in ORDERED_QUERIES:
                try:
                    got = [
                        (i.kind, i.node_id, i.label, i.value)
                        for i in cached.query(query.xpath, doc_c)
                    ]
                    want = [
                        (i.kind, i.node_id, i.label, i.value)
                        for i in uncached.query(query.xpath, doc_u)
                    ]
                except TranslationError:
                    continue
                if got != want:
                    mismatches += 1

        speedup = (
            rates[cached] / rates[uncached] if rates[uncached] else 0.0
        )
        table.add_row(
            name,
            round(rates[uncached], 1),
            round(rates[cached], 1),
            round(speedup, 2),
            round(100.0 * cached.cache.hit_rate(), 1),
            mismatches,
        )
        cached.close()
        uncached.close()
    table.add_note(
        f"{repeat} steady-state passes of the ordered mix; mixed check "
        f"interleaves {operations} seeded updates with the full mix on "
        f"both stores."
    )
    return table


# ---------------------------------------------------------------------------
# E16: adaptive encoding migration
# ---------------------------------------------------------------------------


def run_e16_adaptive_migration(
    articles: int = 4,
    query_ops: int = 240,
    update_ops: int = 96,
    probe_ops: int = 6,
    backend: str = "sqlite",
) -> ExperimentTable:
    """Advisor-triggered online migration vs. every static encoding.

    A two-regime workload — a query-heavy phase followed by an
    update-heavy one — runs against three static stores (one per
    encoding) and one *adaptive* store that starts on ``global`` and
    lets :class:`~repro.migrate.MigrationAdvisor` inspect the counter
    deltas of each slice, calling
    :func:`~repro.migrate.migrate_document` when the workload crosses
    the E7 crossover.  Cost is logical I/O (backend rows read plus
    written), so the migration's own copy traffic is charged to the
    adaptive strategy.
    """
    from repro.migrate import MigrationAdvisor, migrate_document
    from repro.obs import METRICS

    document = article_corpus(articles=articles)
    queries = [
        q
        for q in ORDERED_QUERIES + UNORDERED_QUERIES
        if q.local_translatable
    ]
    # The probe is carved out of the update-heavy phase: the advisor
    # needs one observed slice of the new regime before it can react,
    # and it pays for that slice at the old encoding's prices.
    slices = (
        ("query-heavy", query_ops, 0.0),
        ("probe", probe_ops, 0.9),
        ("update-heavy", update_ops - probe_ops, 0.9),
    )
    table = ExperimentTable(
        "E16",
        "Adaptive encoding migration vs. static choices (logical I/O)",
        (
            "strategy",
            "query-phase rows",
            "update-phase rows",
            "migration rows",
            "total rows",
            "migrations",
        ),
    )

    def counters() -> dict:
        return dict(METRICS.snapshot()["counters"])

    def rows_between(before: dict, after: dict) -> int:
        return sum(
            after.get(name, 0) - before.get(name, 0)
            for name in ("backend.rows_read", "backend.rows_written")
        )

    def run_strategy(label: str, adaptive: bool) -> tuple:
        encoding = "global" if adaptive else label
        store, doc = build_store(document, encoding, backend)
        advisor = MigrationAdvisor(min_samples=min(10, probe_ops))
        phase_rows = {"query-heavy": 0, "update": 0}
        migration_rows = 0
        migrations: list[str] = []
        for slice_name, ops, fraction in slices:
            if ops <= 0:
                continue
            # Inserting articles near the top of the journal is the
            # encoding-separating workload: Global renumbers everything
            # after the insert point, Dewey rewrites the dkey of every
            # following article's whole subtree, Local touches only the
            # sibling positions under the journal root.
            mix = MixedWorkload(
                store,
                doc,
                queries,
                insert_parent_xpath="/journal",
            )
            before = counters()
            mix.run(ops, fraction)
            after = counters()
            key = "query-heavy" if slice_name == "query-heavy" else "update"
            phase_rows[key] += rows_between(before, after)
            if not adaptive:
                continue
            window = {
                "counters": {
                    "query.executed": after.get("query.executed", 0)
                    - before.get("query.executed", 0),
                    "updates.renumber_ops": after.get(
                        "updates.renumber_ops", 0
                    )
                    - before.get("updates.renumber_ops", 0),
                }
            }
            current = store.encoding_for(doc).name
            recommendation = advisor.decide(window, current)
            if recommendation.migrate:
                mark = counters()
                migrate_document(store, doc, recommendation.target)
                migration_rows += rows_between(mark, counters())
                migrations.append(f"{current}->{recommendation.target}")
        store.close()
        total = (
            phase_rows["query-heavy"]
            + phase_rows["update"]
            + migration_rows
        )
        return (
            phase_rows["query-heavy"],
            phase_rows["update"],
            migration_rows,
            total,
            ",".join(migrations) or "-",
        )

    # Direct callers may have metrics off; the deltas need them on.
    # No reset: under ``_observed`` the registry is shared with the
    # suite-level snapshot this experiment will be reported with.
    was_enabled = METRICS.enabled
    METRICS.enabled = True
    try:
        totals = {}
        for name in ENCODING_NAMES:
            cells = run_strategy(name, adaptive=False)
            totals[name] = cells[3]
            table.add_row(name, *cells)
        cells = run_strategy("adaptive", adaptive=True)
        totals["adaptive"] = cells[3]
        table.add_row("adaptive", *cells)
    finally:
        METRICS.enabled = was_enabled
    best_static = min(ENCODING_NAMES, key=lambda n: totals[n])
    table.add_note(
        f"best static: {best_static} ({totals[best_static]} rows); "
        f"adaptive: {totals['adaptive']} rows incl. migration copy "
        f"traffic. Workload: {query_ops} read-only ops, then "
        f"{update_ops} ops at 90% top-of-document inserts; the "
        f"advisor reacts after a {probe_ops}-op probe slice of the "
        f"update regime."
    )
    return table


# ---------------------------------------------------------------------------
# E17: sharded serving
# ---------------------------------------------------------------------------


def run_e17_sharding(
    shard_counts: Sequence[int] = (1, 2, 4),
    documents: int = 8,
    clients: int = 3,
    duration: float = 4.0,
    write_rate_hz: float = 20.0,
) -> ExperimentTable:
    """Sharded serving vs. a single-process daemon under a mixed load.

    Each configuration stands up a real cluster (``repro serve``
    machinery: supervisor, shard worker processes, asyncio front door)
    and drives it with the closed-loop multi-process load generator:
    *clients* reader processes drawing random (query, document) pairs,
    plus one paced writer spreading ``write_rate_hz`` updates
    round-robin across the corpus.

    On a single-core host the separation is not CPU parallelism — it is
    cache-invalidation isolation.  Every commit bumps its store's cache
    epoch, invalidating all result caches in that store; with one shard
    each write at 20 Hz flushes the whole corpus's cached results, with
    four shards a write flushes only its own quarter, so reads on the
    other three shards keep hitting result caches (~100x cheaper than
    executing the SQL).  The 1-shard row *is* the single-process
    baseline: same wire protocol, same worker code, all documents in
    one store.
    """
    import tempfile

    from repro.serve.client import TcpClient
    from repro.serve.frontdoor import ServeConfig, ServeDaemon
    from repro.serve.loadgen import run_load
    from repro.workload.docgen import random_document
    from repro.xmldom import serialize

    queries = [
        "//a[b/c]//d",
        "//b[text() < 3]",
        "//*[b][c]//a",
        "//d[a/b]",
    ]
    corpus = [
        serialize(random_document(s, max_depth=10, max_children=6))
        for s in range(documents)
    ]

    table = ExperimentTable(
        "E17",
        "Sharded serving: aggregate read throughput under paced writes",
        (
            "shards",
            "read ops/s",
            "speedup vs 1 shard",
            "p50 ms",
            "p99 ms",
            "writes",
            "read errors",
        ),
    )

    baseline = None
    for shards in shard_counts:
        with tempfile.TemporaryDirectory(prefix="e17-") as tmp:
            daemon = ServeDaemon(ServeConfig(directory=tmp, shards=shards))
            try:
                port = daemon.start_in_background()
                setup = TcpClient("127.0.0.1", port)
                try:
                    docs = [setup.load(xml) for xml in corpus]
                finally:
                    setup.close()
                report = run_load(
                    "127.0.0.1",
                    port,
                    docs,
                    queries,
                    clients=clients,
                    duration=duration,
                    write_rate_hz=write_rate_hz,
                )
            finally:
                daemon.stop()
        if baseline is None:
            baseline = report.read_ops_s or 1.0
        table.add_row(
            shards,
            round(report.read_ops_s, 1),
            round(report.read_ops_s / baseline, 2),
            round(report.p50_ms, 3),
            round(report.p99_ms, 3),
            report.writes,
            report.read_errors,
        )
    table.add_note(
        f"{clients} closed-loop reader processes x {duration}s, paced "
        f"writer at {write_rate_hz:.0f} Hz round-robin over "
        f"{documents} documents; single core.  The win is per-shard "
        "cache-epoch isolation: a write invalidates result caches only "
        "on its own shard, so more shards keep more of the corpus's "
        "cached results live between writes."
    )
    return table


# ---------------------------------------------------------------------------
# E18: secondary indexes
# ---------------------------------------------------------------------------


def _e18_document(products: int, seed: int = 99):
    """A product catalogue with a rare deep element sprinkled in.

    Indexes pay off on *selective* queries: an unselective descent like
    ``//product//comment`` returns a constant fraction of the document,
    so result materialization dominates both access paths and nothing
    can win big.  We plant a ``warranty`` element inside a nested
    review under ~1% of products — the deep-descent queries then return
    a handful of rows out of thousands of nodes, which is the regime
    where a pathid probe beats per-step structural joins.
    """
    import random

    from repro.workload import catalog_corpus
    from repro.xmldom.dom import Element, Text

    document = catalog_corpus(products=products)
    rng = random.Random(seed)
    catalog = document.children[0]
    for product in catalog.children:
        if rng.random() < 0.01:
            review = Element("review", {"rating": "5"})
            warranty = Element("warranty")
            warranty.append(Text(str(rng.randint(1, 5))))
            review.append(warranty)
            product.append(review)
    return document


def run_e18_indexing(
    products: int = 480,
    repeat: int = 4,
    backends: Sequence[str] = ("sqlite", "minidb"),
) -> ExperimentTable:
    """Deep descent and value predicates, indexed vs. unindexed.

    Two stores per (backend, encoding) cell hold the same data-centric
    catalogue; one has the secondary indexes (path, value, statistics)
    forced on, the other forced off.  The query mix is exactly the
    workload the indexes target: selective deep ``//`` descents that
    the path index answers with a pathid probe instead of per-step
    structural joins, and value predicates that the value index
    answers with a typed-column probe instead of a string-value
    aggregation over every candidate.

    Both stores keep their plan/catalog caches (translation overhead
    would otherwise swamp execution for the fast encodings) but run
    with the result cache disabled, so every pass executes its plan —
    the comparison isolates the access path, not result caching (E15
    measures that).  Each cell also byte-compares the two stores'
    answers on the full mix: the index rewrite must be
    answer-preserving, so mismatches must be zero.

    An update-heavy phase then bursts structural updates (text
    rewrites plus subtree inserts) at two *indexed* twins of the same
    document — one maintaining incrementally from each op's touched
    set, one eagerly rebuilding every ``idx_*`` row — timing both and
    byte-comparing their index tables afterwards.  The maintenance
    speedup is the tentpole claim: repair cost tracks the touched
    rows, not the document, so incremental must beat eager by at
    least 2x on a large document (any table divergence counts into
    the mismatches column).
    """
    from repro.cache import StoreCache

    #: Selective deep ``//`` descents first, value predicates second;
    #: both shapes must clear the cost crossover at the default size.
    deep_queries = (
        "//product//warranty",
        "//review//warranty",
        "//catalog//warranty",
    )
    value_queries = (
        "//product[price < 20]/name",
        "//product[stock > 950]",
        "//product[stock = '500']",
    )
    queries = deep_queries + value_queries

    document = _e18_document(products)
    table = ExperimentTable(
        "E18",
        "Secondary indexes: deep // and value predicates, "
        "indexed vs unindexed",
        ("backend", "encoding", "unindexed q/s", "indexed q/s",
         "speedup", "access paths", "incr upd/s", "eager upd/s",
         "maint speedup", "mismatches"),
    )

    def run_mix(store: XmlStore, doc: int) -> int:
        answered = 0
        for xpath in queries:
            store.query(xpath, doc)
            answered += 1
        return answered

    #: Update burst of the maintenance phase: op k rewrites the text
    #: of a product's first child, every third op inserts a review
    #: subtree instead.  Expressed against surrogate ids, which both
    #: twins assign identically.
    burst_ops = 24

    def plan_burst(store: XmlStore, doc: int) -> list[tuple]:
        catalog = store.fetch_children(doc, 0)[0]
        product_ids = [
            child["id"]
            for child in store.fetch_children(doc, catalog["id"])
            if child["kind"] == "elem"
        ]
        ops: list[tuple] = []
        for k in range(burst_ops):
            product = product_ids[(k * 37) % len(product_ids)]
            if k % 3 == 0:
                ops.append((
                    "insert", product,
                    f'<review rating="{k}"><warranty>{k}</warranty>'
                    f"</review>",
                ))
            else:
                first = next(
                    child
                    for child in store.fetch_children(doc, product)
                    if child["kind"] == "elem"
                )
                ops.append(("set_text", first["id"], f"v{k}"))
        return ops

    def run_burst(store: XmlStore, doc: int, ops: list[tuple]) -> float:
        started = time.perf_counter()
        for op in ops:
            if op[0] == "insert":
                store.updates.insert(doc, op[1], 0, op[2])
            else:
                store.updates.set_text(doc, op[1], op[2])
        return time.perf_counter() - started

    def index_tables(store: XmlStore, doc: int) -> tuple:
        return tuple(
            tuple(sorted(store.backend.execute(
                f"SELECT * FROM {t} WHERE doc = ?", (doc,)
            ).rows))
            for t in ("idx_sval", "idx_paths", "idx_pathmap",
                      "idx_stats")
        )

    for backend in backends:
        for name in (*ENCODING_NAMES, "ordpath"):
            indexed = XmlStore(backend=backend, encoding=name)
            plain = XmlStore(backend=backend, encoding=name)
            for store in (indexed, plain):
                # Plan/catalog caches on, result cache off (capacity
                # 0: every insert immediately evicts).
                store.cache = StoreCache(
                    enabled=True, result_capacity=0
                )
            indexed.indexes.force_mode = "on"
            plain.indexes.force_mode = "off"
            doc_i = indexed.load(document)
            doc_p = plain.load(document)

            mismatches = 0
            for xpath in queries:
                got = [
                    (i.kind, i.node_id, i.label, i.value)
                    for i in indexed.query(xpath, doc_i)
                ]
                want = [
                    (i.kind, i.node_id, i.label, i.value)
                    for i in plain.query(xpath, doc_p)
                ]
                if got != want:
                    mismatches += 1

            rates = {}
            for store, doc in ((plain, doc_p), (indexed, doc_i)):
                answered = 0
                started = time.perf_counter()
                for _ in range(repeat):
                    answered += run_mix(store, doc)
                elapsed = time.perf_counter() - started
                rates[store] = answered / elapsed if elapsed else 0.0

            paths = sorted({
                indexed.translate(xpath, doc_i).access_path
                for xpath in queries
            })
            speedup = (
                rates[indexed] / rates[plain] if rates[plain] else 0.0
            )

            # Update-heavy phase: identical burst at an incremental
            # and an eager indexed twin, then byte-compare the tables.
            incr = XmlStore(
                backend=backend, encoding=name, index_incremental=True
            )
            eager = XmlStore(
                backend=backend, encoding=name, index_incremental=False
            )
            for store in (incr, eager):
                store.cache = StoreCache(enabled=True, result_capacity=0)
                store.indexes.force_mode = "on"
            doc_n = incr.load(document)
            doc_e = eager.load(document)
            ops = plan_burst(incr, doc_n)
            incr_elapsed = run_burst(incr, doc_n, ops)
            eager_elapsed = run_burst(eager, doc_e, ops)
            if index_tables(incr, doc_n) != index_tables(eager, doc_e):
                mismatches += 1
            incr_rate = (
                burst_ops / incr_elapsed if incr_elapsed else 0.0
            )
            eager_rate = (
                burst_ops / eager_elapsed if eager_elapsed else 0.0
            )
            maint_speedup = (
                incr_rate / eager_rate if eager_rate else 0.0
            )

            table.add_row(
                backend,
                name,
                round(rates[plain], 1),
                round(rates[indexed], 1),
                round(speedup, 2),
                "+".join(paths),
                round(incr_rate, 1),
                round(eager_rate, 1),
                round(maint_speedup, 2),
                mismatches,
            )
            indexed.close()
            plain.close()
            incr.close()
            eager.close()
    table.add_note(
        f"{products}-product catalogue, {repeat} passes of "
        f"{len(queries)} queries ({len(deep_queries)} deep descents, "
        f"{len(value_queries)} value predicates); result caching off "
        "on both stores so the comparison isolates the access path. "
        f"Maintenance phase: {burst_ops}-op structural burst at an "
        "incremental-maintenance twin vs an eager-rebuild twin, index "
        "tables byte-compared afterwards."
    )
    return table


def _observed(run) -> ExperimentTable:
    """Run one experiment with metrics enabled; attach the snapshot.

    Every experiment runs with the metrics registry on and freshly
    reset, so its table carries the wall-clock time, the per-phase span
    totals (``span.*`` histograms, in ms), and the full counter
    snapshot — the raw material for the per-phase breakdown in
    ``BENCH_results.json``.
    """
    from repro.obs import METRICS

    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    started = time.perf_counter()
    try:
        table = run()
    finally:
        METRICS.enabled = was_enabled
    table.elapsed_seconds = time.perf_counter() - started
    snapshot = METRICS.snapshot()
    METRICS.reset()
    table.metrics = snapshot
    table.phase_ms = {
        name[len("span."):]: round(hist["total"] * 1000.0, 3)
        for name, hist in snapshot["histograms"].items()
        if name.startswith("span.")
    }
    return table


def run_all(fast: bool = False) -> list[ExperimentTable]:
    """Run the full experiment suite (smaller sizes when *fast*)."""
    if fast:
        runs = [
            lambda: run_e1_storage(sizes=(500, 2000)),
            lambda: run_e2_loading(sizes=(500,), repeat=1),
            lambda: run_e3_ordered_queries(articles=8, repeat=1),
            lambda: run_e4_unordered_queries(articles=8, repeat=1),
            lambda: run_e5_insert_position(articles=10, inserts=5),
            lambda: run_e6_subtree_updates(articles=10, operations=4),
            lambda: run_e7_mixed_workload(
                articles=8, operations=30, fractions=(0.0, 0.5, 1.0)
            ),
            lambda: run_e8_reconstruction(articles=10, repeat=1),
            lambda: run_e9_translation(),
            lambda: run_e9b_compile_cache(articles=4, repeat=5),
            lambda: run_e10_sparse_numbering(articles=8, inserts=10),
            lambda: run_e11_ordpath(articles=6, inserts=10),
            lambda: run_e12_scaling(sizes=(300, 1000), repeat=1),
            lambda: run_e13_logical_io(articles=4),
            lambda: run_e14_concurrency(
                reader_counts=(1, 8), seconds=0.25
            ),
            lambda: run_e15_cache(articles=6, repeat=12, operations=8),
            lambda: run_e16_adaptive_migration(
                articles=3, query_ops=120, update_ops=48, probe_ops=4
            ),
            lambda: run_e17_sharding(
                shard_counts=(1, 4), duration=2.5
            ),
            lambda: run_e18_indexing(products=240, repeat=2),
        ]
    else:
        runs = [
            run_e1_storage,
            run_e2_loading,
            run_e3_ordered_queries,
            run_e4_unordered_queries,
            run_e5_insert_position,
            run_e6_subtree_updates,
            run_e7_mixed_workload,
            run_e8_reconstruction,
            run_e9_translation,
            run_e9b_compile_cache,
            run_e10_sparse_numbering,
            run_e11_ordpath,
            run_e12_scaling,
            run_e13_logical_io,
            run_e14_concurrency,
            run_e15_cache,
            run_e16_adaptive_migration,
            run_e17_sharding,
            run_e18_indexing,
        ]
    return [_observed(run) for run in runs]
