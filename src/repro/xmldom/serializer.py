"""Serialisation: DOM -> XML text.

Supports compact (verbatim) output and a pretty-printed mode used by the
examples.  Round-trip fidelity (`parse(serialize(doc))` structurally equal
to `doc`) is property-tested for the compact mode.
"""

from __future__ import annotations

from typing import Union

from repro.xmldom import chars
from repro.xmldom.dom import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)


def serialize(
    node: Union[Document, Node],
    pretty: bool = False,
    indent: str = "  ",
    xml_declaration: bool = False,
) -> str:
    """Serialise a document or a subtree rooted at *node* to XML text."""
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if not pretty:
            parts.append("\n")
    if isinstance(node, Document):
        for i, child in enumerate(node.children):
            _write(child, parts, pretty, indent, 0)
            if pretty and i < len(node.children) - 1:
                parts.append("\n")
    else:
        _write(node, parts, pretty, indent, 0)
    if pretty:
        parts.append("\n")
    return "".join(parts)


def _write(
    node: Node, parts: list[str], pretty: bool, indent: str, level: int
) -> None:
    pad = indent * level if pretty else ""
    if isinstance(node, Element):
        _write_element(node, parts, pretty, indent, level)
    elif isinstance(node, Text):
        parts.append(chars.escape_text(node.content))
    elif isinstance(node, Comment):
        parts.append(f"{pad}<!--{node.content}-->")
    elif isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        parts.append(f"{pad}<?{node.target}{data}?>")
    else:  # pragma: no cover - exhaustive over node kinds
        raise TypeError(f"cannot serialise {type(node).__name__}")


def _write_element(
    element: Element,
    parts: list[str],
    pretty: bool,
    indent: str,
    level: int,
) -> None:
    pad = indent * level if pretty else ""
    attrs = "".join(
        f' {name}="{chars.escape_attribute(value)}"'
        for name, value in element.attributes.items()
    )
    if not element.children:
        parts.append(f"{pad}<{element.tag}{attrs}/>")
        return
    parts.append(f"{pad}<{element.tag}{attrs}>")

    # Pretty mode only reformats element-only content; any text child means
    # mixed content, which must be reproduced verbatim to preserve meaning.
    mixed = any(isinstance(c, Text) for c in element.children)
    use_pretty = pretty and not mixed
    for child in element.children:
        if use_pretty:
            parts.append("\n")
        _write(child, parts, use_pretty, indent, level + 1)
    if use_pretty:
        parts.append("\n" + pad)
    parts.append(f"</{element.tag}>")
