"""Character-level utilities for the XML substrate.

Implements the XML 1.0 character classes needed by a non-validating parser:
name start/continue characters, whitespace, and text escaping/unescaping of
the five predefined entities plus numeric character references.
"""

from __future__ import annotations

from repro.errors import XmlSyntaxError

#: The five predefined XML entities, in unescape direction.
PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_ESCAPE_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPE_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}

#: XML whitespace characters (production S).
WHITESPACE = " \t\r\n"

# Ranges for NameStartChar per the XML 1.0 (5th ed) spec, minus the
# surrogate plane subtleties we do not need for BMP documents.
_NAME_START_RANGES = (
    (ord(":"), ord(":")),
    (ord("A"), ord("Z")),
    (ord("_"), ord("_")),
    (ord("a"), ord("z")),
    (0xC0, 0xD6),
    (0xD8, 0xF6),
    (0xF8, 0x2FF),
    (0x370, 0x37D),
    (0x37F, 0x1FFF),
    (0x200C, 0x200D),
    (0x2070, 0x218F),
    (0x2C00, 0x2FEF),
    (0x3001, 0xD7FF),
    (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD),
    (0x10000, 0xEFFFF),
)

_NAME_EXTRA_RANGES = (
    (ord("-"), ord("-")),
    (ord("."), ord(".")),
    (ord("0"), ord("9")),
    (0xB7, 0xB7),
    (0x300, 0x36F),
    (0x203F, 0x2040),
)


def _in_ranges(code: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    for lo, hi in ranges:
        if lo <= code <= hi:
            return True
    return False


def is_whitespace(ch: str) -> bool:
    """Return True if *ch* is an XML whitespace character."""
    return ch in WHITESPACE


def is_name_start_char(ch: str) -> bool:
    """Return True if *ch* may begin an XML Name."""
    return _in_ranges(ord(ch), _NAME_START_RANGES)


def is_name_char(ch: str) -> bool:
    """Return True if *ch* may appear inside an XML Name."""
    code = ord(ch)
    return _in_ranges(code, _NAME_START_RANGES) or _in_ranges(
        code, _NAME_EXTRA_RANGES
    )


def is_valid_name(name: str) -> bool:
    """Return True if *name* is a well-formed XML Name."""
    if not name:
        return False
    if not is_name_start_char(name[0]):
        return False
    return all(is_name_char(ch) for ch in name[1:])


def escape_text(text: str) -> str:
    """Escape character data for inclusion in element content."""
    if not any(ch in text for ch in "&<>"):
        return text
    return "".join(_ESCAPE_TEXT.get(ch, ch) for ch in text)


def escape_attribute(text: str) -> str:
    """Escape character data for inclusion in a double-quoted attribute."""
    if not any(ch in text for ch in '&<>"'):
        return text
    return "".join(_ESCAPE_ATTR.get(ch, ch) for ch in text)


def resolve_entity(name: str, line: int = 0, column: int = 0) -> str:
    """Resolve an entity reference body (without ``&``/``;``) to text.

    Handles the five predefined entities plus decimal (``#nnn``) and
    hexadecimal (``#xhh``) character references.
    """
    if name in PREDEFINED_ENTITIES:
        return PREDEFINED_ENTITIES[name]
    if name.startswith("#x") or name.startswith("#X"):
        body, base = name[2:], 16
    elif name.startswith("#"):
        body, base = name[1:], 10
    else:
        raise XmlSyntaxError(f"unknown entity &{name};", line, column)
    try:
        code = int(body, base)
        return chr(code)
    except (ValueError, OverflowError) as exc:
        raise XmlSyntaxError(
            f"bad character reference &{name};", line, column
        ) from exc


def unescape(text: str, line: int = 0, column: int = 0) -> str:
    """Replace entity and character references in *text* with characters."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XmlSyntaxError("unterminated entity reference", line, column)
        out.append(resolve_entity(text[i + 1 : end], line, column))
        i = end + 1
    return "".join(out)
