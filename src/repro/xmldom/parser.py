"""Tree construction: tokens -> :class:`~repro.xmldom.dom.Document`.

The parser enforces well-formedness at the tree level (matching tags, a
single root element, no character data outside the root) and applies a
configurable whitespace policy.  The paper's shredders discard whitespace
that appears between elements in data-centric documents ("ignorable"
whitespace); we make the same choice available, defaulting to *keep*, and
the shredding/reconstruction round-trip tests pin the behaviour down.
"""

from __future__ import annotations

from repro.errors import XmlSyntaxError
from repro.xmldom.dom import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)
from repro.xmldom.tokenizer import (
    CommentToken,
    EndTagToken,
    PIToken,
    StartTagToken,
    TextToken,
    Tokenizer,
)


def parse(source: str, strip_whitespace: bool = False) -> Document:
    """Parse *source* into a :class:`Document`.

    Parameters
    ----------
    source:
        The XML text.
    strip_whitespace:
        When true, text nodes that consist entirely of whitespace are
        dropped (the usual policy for data-centric shredding).  Whitespace
        inside mixed content (i.e. text with non-space characters) is
        always preserved verbatim.

    Raises
    ------
    XmlSyntaxError
        On any lexical or well-formedness violation.
    """
    doc = Document()
    stack: list[Element] = []
    saw_root = False

    for token in Tokenizer(source).tokens():
        if isinstance(token, StartTagToken):
            if not stack and saw_root:
                raise XmlSyntaxError(
                    "document has more than one root element",
                    token.line,
                    token.column,
                )
            element = Element(token.name, token.attributes)
            parent = stack[-1] if stack else doc
            parent.append(element)
            if not stack:
                saw_root = True
            if not token.self_closing:
                stack.append(element)
        elif isinstance(token, EndTagToken):
            if not stack:
                raise XmlSyntaxError(
                    f"unexpected closing tag </{token.name}>",
                    token.line,
                    token.column,
                )
            open_element = stack.pop()
            if open_element.tag != token.name:
                raise XmlSyntaxError(
                    f"mismatched closing tag </{token.name}>, "
                    f"expected </{open_element.tag}>",
                    token.line,
                    token.column,
                )
        elif isinstance(token, TextToken):
            _append_text(doc, stack, token, strip_whitespace)
        elif isinstance(token, CommentToken):
            parent = stack[-1] if stack else doc
            parent.append(Comment(token.content))
        elif isinstance(token, PIToken):
            parent = stack[-1] if stack else doc
            parent.append(ProcessingInstruction(token.target, token.data))

    if stack:
        raise XmlSyntaxError(f"unclosed element <{stack[-1].tag}>")
    if doc.root is None:
        raise XmlSyntaxError("document has no root element")
    return doc


def _append_text(
    doc: Document,
    stack: list[Element],
    token: TextToken,
    strip_whitespace: bool,
) -> None:
    content = token.content
    blank = content.strip() == ""
    if not stack:
        # Character data is only legal outside the root if it is blank.
        if blank:
            return
        raise XmlSyntaxError(
            "character data outside the root element",
            token.line,
            token.column,
        )
    if blank and strip_whitespace and not token.is_cdata:
        return
    if not content:
        return
    parent = stack[-1]
    # Merge adjacent text (e.g. text + CDATA) into one node, matching the
    # XPath data model where text nodes are maximal runs of character data.
    if parent.children and isinstance(parent.children[-1], Text):
        parent.children[-1].content += content
    else:
        parent.append(Text(content))


def parse_fragment(source: str, strip_whitespace: bool = False) -> Element:
    """Parse a single-rooted XML fragment and return its root element."""
    return parse(source, strip_whitespace=strip_whitespace).root  # type: ignore[return-value]
