"""Tree construction: tokens -> :class:`~repro.xmldom.dom.Document`.

The parser enforces well-formedness at the tree level (matching tags, a
single root element, no character data outside the root) and applies a
configurable whitespace policy.  The paper's shredders discard whitespace
that appears between elements in data-centric documents ("ignorable"
whitespace); we make the same choice available, defaulting to *keep*, and
the shredding/reconstruction round-trip tests pin the behaviour down.
"""

from __future__ import annotations

from repro.errors import XmlSyntaxError
from repro.xmldom.dom import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)
from repro.xmldom.tokenizer import (
    CommentToken,
    EndTagToken,
    PIToken,
    StartTagToken,
    TextToken,
    Tokenizer,
)


def parse(source: str, strip_whitespace: bool = False) -> Document:
    """Parse *source* into a :class:`Document`.

    Parameters
    ----------
    source:
        The XML text.
    strip_whitespace:
        When true, text nodes that consist entirely of whitespace are
        dropped (the usual policy for data-centric shredding).  Whitespace
        inside mixed content (i.e. text with non-space characters) is
        always preserved verbatim.

    Raises
    ------
    XmlSyntaxError
        On any lexical or well-formedness violation.
    """
    doc = _parse_tree(source, strip_whitespace, fragment=False)
    if doc.root is None:
        raise XmlSyntaxError("document has no root element")
    return doc


def _parse_tree(
    source: str, strip_whitespace: bool, fragment: bool
) -> Document:
    """Build the node tree; *fragment* mode relaxes document rules.

    A document allows exactly one top-level element and no top-level
    character data.  Fragment mode admits any number of top-level nodes,
    including bare text runs; :func:`parse_fragment` validates the count
    afterwards so it can report a fragment-specific message.
    """
    doc = Document()
    stack: list[Element] = []
    saw_root = False

    for token in Tokenizer(source).tokens():
        if isinstance(token, StartTagToken):
            if not stack and saw_root and not fragment:
                raise XmlSyntaxError(
                    "document has more than one root element",
                    token.line,
                    token.column,
                )
            element = Element(token.name, token.attributes)
            parent = stack[-1] if stack else doc
            parent.append(element)
            if not stack:
                saw_root = True
            if not token.self_closing:
                stack.append(element)
        elif isinstance(token, EndTagToken):
            if not stack:
                raise XmlSyntaxError(
                    f"unexpected closing tag </{token.name}>",
                    token.line,
                    token.column,
                )
            open_element = stack.pop()
            if open_element.tag != token.name:
                raise XmlSyntaxError(
                    f"mismatched closing tag </{token.name}>, "
                    f"expected </{open_element.tag}>",
                    token.line,
                    token.column,
                )
        elif isinstance(token, TextToken):
            _append_text(doc, stack, token, strip_whitespace, fragment)
        elif isinstance(token, CommentToken):
            parent = stack[-1] if stack else doc
            parent.append(Comment(token.content))
        elif isinstance(token, PIToken):
            parent = stack[-1] if stack else doc
            parent.append(ProcessingInstruction(token.target, token.data))

    if stack:
        raise XmlSyntaxError(f"unclosed element <{stack[-1].tag}>")
    return doc


def _append_text(
    doc: Document,
    stack: list[Element],
    token: TextToken,
    strip_whitespace: bool,
    fragment: bool = False,
) -> None:
    content = token.content
    blank = content.strip() == ""
    if not stack:
        # Character data outside an element is only legal when blank —
        # except in fragment mode, where a bare text run is a valid
        # fragment (it becomes a top-level Text node).
        if blank:
            return
        if not fragment:
            raise XmlSyntaxError(
                "character data outside the root element",
                token.line,
                token.column,
            )
    if blank and strip_whitespace and not token.is_cdata and stack:
        return
    if not content:
        return
    parent: Document | Element = stack[-1] if stack else doc
    # Merge adjacent text (e.g. text + CDATA) into one node, matching the
    # XPath data model where text nodes are maximal runs of character data.
    if parent.children and isinstance(parent.children[-1], Text):
        parent.children[-1].content += content
    else:
        parent.append(Text(content))


def _describe_node(node: object) -> str:
    if isinstance(node, Element):
        return f"element <{node.tag}>"
    if isinstance(node, Text):
        return "text"
    if isinstance(node, Comment):
        return "comment"
    if isinstance(node, ProcessingInstruction):
        return f"processing instruction <?{node.target}?>"
    return type(node).__name__  # pragma: no cover - defensive


def parse_fragment(source: str, strip_whitespace: bool = False):
    """Parse an XML fragment and return its single top-level node.

    A fragment is either one element (with any content), or a bare run
    of character data (returned as a :class:`Text` node), or a single
    comment / processing instruction.  Surrounding whitespace-only text
    is ignored, matching document parsing.

    Raises
    ------
    XmlSyntaxError
        On malformed XML, an empty fragment, or a fragment with more
        than one top-level node (e.g. ``"<a/><b/>"`` or ``"text <a/>"``
        — insert such pieces one node at a time).
    """
    doc = _parse_tree(source, strip_whitespace, fragment=True)
    tops = list(doc.children)
    if not tops:
        raise XmlSyntaxError(
            "empty fragment: expected one element, text run, comment, "
            "or processing instruction"
        )
    if len(tops) > 1:
        shapes = ", ".join(_describe_node(n) for n in tops)
        raise XmlSyntaxError(
            f"fragment has {len(tops)} top-level nodes ({shapes}); "
            "a fragment must have exactly one root — insert multiple "
            "nodes one at a time"
        )
    node = tops[0]
    node.detach()
    return node
