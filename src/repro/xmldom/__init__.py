"""XML substrate: character tables, tokenizer, parser, DOM, serializer.

This is a from-scratch, non-validating XML 1.0 processor sufficient for the
shredding experiments in the paper: elements, attributes, character data
(including CDATA), comments, processing instructions, the predefined and
numeric entities, and DOCTYPE skipping.
"""

from repro.xmldom.dom import (
    Comment,
    Document,
    Element,
    Node,
    ParentNode,
    ProcessingInstruction,
    Text,
    document_order,
    new_document,
)
from repro.xmldom.parser import parse, parse_fragment
from repro.xmldom.serializer import serialize

__all__ = [
    "Comment",
    "Document",
    "Element",
    "Node",
    "ParentNode",
    "ProcessingInstruction",
    "Text",
    "document_order",
    "new_document",
    "parse",
    "parse_fragment",
    "serialize",
]
