"""A small document object model for ordered XML.

The model is deliberately close to the one the paper assumes: a document is
an ordered tree of element, text, comment, and processing-instruction nodes;
attributes hang off elements and are *unordered* (per the XML data model).
Document order is the preorder traversal of the tree.

The classes here are plain mutable Python objects.  They are used by the
parser, by the native XPath evaluator (the correctness oracle), by the
shredder (DOM -> rows) and by the reconstructor (rows -> DOM).
"""

from __future__ import annotations

from typing import Iterator, Optional, Union


class Node:
    """Base class for all tree nodes.

    Attributes
    ----------
    parent:
        The owning :class:`Element` or :class:`Document`, or ``None`` for a
        detached node.
    """

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[ParentNode] = None

    # -- tree geometry -------------------------------------------------

    def sibling_index(self) -> int:
        """Return this node's 0-based position among its siblings."""
        if self.parent is None:
            return 0
        return self.parent.children.index(self)

    def ancestors(self) -> Iterator["ParentNode"]:
        """Yield ancestors from parent up to (and including) the document."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root_document(self) -> Optional["Document"]:
        """Return the owning :class:`Document`, if attached to one."""
        node: Optional[Union[Node, ParentNode]] = self
        while node is not None:
            if isinstance(node, Document):
                return node
            node = node.parent
        return None

    def depth(self) -> int:
        """Return the number of ancestors (document root children are 1)."""
        return sum(1 for _ in self.ancestors())

    # -- structural identity -------------------------------------------

    def structurally_equal(self, other: "Node") -> bool:
        """Deep structural comparison ignoring object identity."""
        raise NotImplementedError

    def detach(self) -> "Node":
        """Remove this node from its parent (no-op when detached)."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self


class ParentNode(Node):
    """A node that owns an ordered child list (Element or Document)."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    def append(self, child: Node) -> Node:
        """Append *child* as the last child and return it."""
        child.detach()
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: Node) -> Node:
        """Insert *child* at 0-based *index* among the children."""
        child.detach()
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: Node) -> Node:
        """Remove *child* (must be a direct child) and return it."""
        self.children.remove(child)
        child.parent = None
        return child

    def iter_preorder(self) -> Iterator[Node]:
        """Yield every descendant node in document (preorder) order.

        The starting node itself is *not* yielded; attributes are not
        nodes in this model and are not yielded.
        """
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ParentNode):
                stack.extend(reversed(node.children))

    def subtree_size(self) -> int:
        """Return the number of descendant nodes (excluding self)."""
        return sum(1 for _ in self.iter_preorder())

    def element_children(self) -> list["Element"]:
        """Return the child nodes that are elements, in order."""
        return [c for c in self.children if isinstance(c, Element)]


class Element(ParentNode):
    """An element node with a tag, unordered attributes, ordered children."""

    __slots__ = ("tag", "attributes")

    def __init__(self, tag: str, attributes: Optional[dict[str, str]] = None):
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the value of attribute *name*, or *default*."""
        return self.attributes.get(name, default)

    def set(self, name: str, value: str) -> None:
        """Set attribute *name* to *value*."""
        self.attributes[name] = value

    def text_value(self) -> str:
        """Return the concatenation of all descendant text, in order.

        This is the XPath string-value of an element node.
        """
        parts = [
            node.content
            for node in self.iter_preorder()
            if isinstance(node, Text)
        ]
        return "".join(parts)

    def find_children(self, tag: str) -> list["Element"]:
        """Return direct element children with the given tag, in order."""
        return [c for c in self.element_children() if c.tag == tag]

    def structurally_equal(self, other: Node) -> bool:
        if not isinstance(other, Element):
            return False
        if self.tag != other.tag or self.attributes != other.attributes:
            return False
        if len(self.children) != len(other.children):
            return False
        return all(
            a.structurally_equal(b)
            for a, b in zip(self.children, other.children)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag!r} children={len(self.children)}>"


class Text(Node):
    """A text node."""

    __slots__ = ("content",)

    def __init__(self, content: str) -> None:
        super().__init__()
        self.content = content

    def text_value(self) -> str:
        """Return the node's string-value (its content)."""
        return self.content

    def structurally_equal(self, other: Node) -> bool:
        return isinstance(other, Text) and self.content == other.content

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Text {self.content!r}>"


class Comment(Node):
    """A comment node (``<!-- ... -->``)."""

    __slots__ = ("content",)

    def __init__(self, content: str) -> None:
        super().__init__()
        self.content = content

    def structurally_equal(self, other: Node) -> bool:
        return isinstance(other, Comment) and self.content == other.content

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comment {self.content!r}>"


class ProcessingInstruction(Node):
    """A processing-instruction node (``<?target data?>``)."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = "") -> None:
        super().__init__()
        self.target = target
        self.data = data

    def structurally_equal(self, other: Node) -> bool:
        return (
            isinstance(other, ProcessingInstruction)
            and self.target == other.target
            and self.data == other.data
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PI {self.target!r}>"


class Document(ParentNode):
    """The document node: owns the root element plus prolog/epilog nodes."""

    __slots__ = ()

    @property
    def root(self) -> Optional[Element]:
        """Return the document (root) element, or ``None`` if empty."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    def structurally_equal(self, other: Node) -> bool:
        if not isinstance(other, Document):
            return False
        if len(self.children) != len(other.children):
            return False
        return all(
            a.structurally_equal(b)
            for a, b in zip(self.children, other.children)
        )

    def node_count(self) -> int:
        """Return the total number of tree nodes (excluding the document)."""
        return self.subtree_size()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        root = self.root
        tag = root.tag if root is not None else None
        return f"<Document root={tag!r} nodes={self.node_count()}>"


def document_order(doc: Document) -> dict[int, int]:
    """Map ``id(node) -> position`` for every node in *doc*, in preorder.

    Used by tests and by the native XPath evaluator to sort node sets into
    document order without mutating the nodes.
    """
    return {id(node): pos for pos, node in enumerate(doc.iter_preorder())}


def new_document(root_tag: str) -> tuple[Document, Element]:
    """Convenience constructor: a document with a single empty root."""
    doc = Document()
    root = Element(root_tag)
    doc.append(root)
    return doc, root
