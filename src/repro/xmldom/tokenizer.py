"""A streaming tokenizer for XML 1.0 documents.

Produces a flat sequence of :class:`Token` objects (start tags, end tags,
character data, comments, processing instructions).  DOCTYPE declarations
and the XML declaration are recognised and skipped; external entities and
DTD validation are out of scope, matching the non-validating parsers the
paper's systems used for shredding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import XmlSyntaxError
from repro.xmldom import chars


@dataclass
class Token:
    """Base token; carries the 1-based source position for diagnostics."""

    line: int
    column: int


@dataclass
class StartTagToken(Token):
    name: str = ""
    attributes: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass
class EndTagToken(Token):
    name: str = ""


@dataclass
class TextToken(Token):
    content: str = ""
    is_cdata: bool = False


@dataclass
class CommentToken(Token):
    content: str = ""


@dataclass
class PIToken(Token):
    target: str = ""
    data: str = ""


class Tokenizer:
    """Single-pass tokenizer over an XML source string."""

    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- low-level cursor ------------------------------------------------

    def _error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        pos = self._pos + offset
        return self._src[pos] if pos < len(self._src) else ""

    def _advance(self, count: int = 1) -> str:
        """Consume *count* characters, maintaining line/column."""
        taken = self._src[self._pos : self._pos + count]
        if len(taken) < count:
            raise self._error("unexpected end of input")
        for ch in taken:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return taken

    def _at_end(self) -> bool:
        return self._pos >= len(self._src)

    def _skip_whitespace(self) -> None:
        while not self._at_end() and chars.is_whitespace(self._peek()):
            self._advance()

    def _expect(self, literal: str) -> None:
        if not self._src.startswith(literal, self._pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _read_until(self, terminator: str, what: str) -> str:
        """Consume text up to *terminator*, consuming the terminator too."""
        end = self._src.find(terminator, self._pos)
        if end == -1:
            raise self._error(f"unterminated {what}")
        content = self._advance(end - self._pos)
        self._advance(len(terminator))
        return content

    def _read_name(self) -> str:
        start = self._pos
        if self._at_end() or not chars.is_name_start_char(self._peek()):
            raise self._error("expected an XML name")
        self._advance()
        while not self._at_end() and chars.is_name_char(self._peek()):
            self._advance()
        return self._src[start : self._pos]

    # -- token productions -------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, in order."""
        while not self._at_end():
            line, col = self._line, self._col
            if self._peek() == "<":
                yield from self._read_markup(line, col)
            else:
                yield self._read_text(line, col)

    def _read_markup(self, line: int, col: int) -> Iterator[Token]:
        nxt = self._peek(1)
        if nxt == "?":
            token = self._read_pi_or_decl(line, col)
            if token is not None:
                yield token
        elif nxt == "!":
            if self._src.startswith("<!--", self._pos):
                yield self._read_comment(line, col)
            elif self._src.startswith("<![CDATA[", self._pos):
                yield self._read_cdata(line, col)
            elif self._src.startswith("<!DOCTYPE", self._pos):
                self._skip_doctype()
            else:
                raise self._error("unrecognised markup declaration")
        elif nxt == "/":
            yield self._read_end_tag(line, col)
        else:
            yield self._read_start_tag(line, col)

    def _read_text(self, line: int, col: int) -> TextToken:
        end = self._src.find("<", self._pos)
        if end == -1:
            end = len(self._src)
        raw = self._advance(end - self._pos)
        return TextToken(line, col, chars.unescape(raw, line, col))

    def _read_comment(self, line: int, col: int) -> CommentToken:
        self._expect("<!--")
        content = self._read_until("-->", "comment")
        if "--" in content:
            raise XmlSyntaxError("'--' not allowed in comment", line, col)
        return CommentToken(line, col, content)

    def _read_cdata(self, line: int, col: int) -> TextToken:
        self._expect("<![CDATA[")
        content = self._read_until("]]>", "CDATA section")
        return TextToken(line, col, content, is_cdata=True)

    def _read_pi_or_decl(self, line: int, col: int) -> PIToken | None:
        self._expect("<?")
        target = self._read_name()
        body = self._read_until("?>", "processing instruction")
        if target.lower() == "xml":
            return None  # the XML declaration carries no tree content
        return PIToken(line, col, target, body.strip())

    def _skip_doctype(self) -> None:
        """Skip ``<!DOCTYPE ...>`` including a bracketed internal subset."""
        self._expect("<!DOCTYPE")
        depth = 1
        in_subset = False
        while depth > 0:
            if self._at_end():
                raise self._error("unterminated DOCTYPE")
            ch = self._advance()
            if ch == "[":
                in_subset = True
            elif ch == "]":
                in_subset = False
            elif ch == "<" and in_subset:
                depth += 1
            elif ch == ">":
                depth -= 1
                if in_subset:
                    depth = max(depth, 1)

    def _read_start_tag(self, line: int, col: int) -> StartTagToken:
        self._expect("<")
        name = self._read_name()
        attributes = self._read_attributes(name)
        self._skip_whitespace()
        self_closing = False
        if self._peek() == "/":
            self._advance()
            self_closing = True
        self._expect(">")
        return StartTagToken(line, col, name, attributes, self_closing)

    def _read_attributes(self, tag: str) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            saw_space = False
            while not self._at_end() and chars.is_whitespace(self._peek()):
                self._advance()
                saw_space = True
            nxt = self._peek()
            if nxt in ("", ">", "/"):
                return attributes
            if not saw_space:
                raise self._error("expected whitespace before attribute")
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error("attribute value must be quoted")
            self._advance()
            raw = self._read_until(quote, f"attribute {name!r}")
            if "<" in raw:
                raise self._error(f"'<' in value of attribute {name!r}")
            if name in attributes:
                raise self._error(
                    f"duplicate attribute {name!r} on element {tag!r}"
                )
            attributes[name] = chars.unescape(raw, self._line, self._col)

    def _read_end_tag(self, line: int, col: int) -> EndTagToken:
        self._expect("</")
        name = self._read_name()
        self._skip_whitespace()
        self._expect(">")
        return EndTagToken(line, col, name)
