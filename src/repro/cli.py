"""Command-line interface: ``python -m repro``.

Persists stores as SQLite files, so shredded documents survive between
invocations::

    python -m repro load bib.xml --db bib.db --encoding dewey
    python -m repro query '/bib/book[2]/author[1]' --db bib.db
    python -m repro query '//book[@year < 2000]/title' --db bib.db --show-sql
    python -m repro insert '<book><title>New</title></book>' \
        --db bib.db --parent '/bib' --index 0
    python -m repro delete '/bib/book[3]' --db bib.db
    python -m repro dump --db bib.db --pretty
    python -m repro info --db bib.db
    python -m repro sql 'SELECT COUNT(*) FROM node_dewey' --db bib.db
    python -m repro experiments --fast
    python -m repro bench --fast --output BENCH_results.json
    python -m repro serve-bench --db bib.db --readers 8 --duration 2

The store's encoding and gap are recorded in a ``repro_meta`` table on
first load, so later commands need no flags.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.backends.base import Backend
from repro.backends.sqlite_backend import SqliteBackend
from repro.core.encodings import ENCODINGS
from repro.errors import ReproError
from repro.store import XmlStore
from repro.xmldom import parse_fragment, serialize


def _open_backend(db: str, pooled: bool = False) -> Backend:
    if pooled:
        if db == ":memory:":
            raise ReproError(
                "pooled mode needs a file-backed --db (connections in "
                "a pool must share one database file)"
            )
        from repro.backends.pooled_sqlite import PooledSqliteBackend

        return PooledSqliteBackend(db)
    return SqliteBackend(db if db != ":memory:" else None)


def _read_meta(backend: Backend) -> Optional[dict[str, str]]:
    try:
        rows = backend.execute(
            "SELECT key, value FROM repro_meta"
        ).rows
    except Exception:
        return None
    return {key: value for key, value in rows}


def _write_meta(backend: Backend, encoding: str, gap: int) -> None:
    backend.execute(
        "CREATE TABLE IF NOT EXISTS repro_meta (key TEXT, value TEXT)"
    )
    backend.execute("DELETE FROM repro_meta")
    backend.executemany(
        "INSERT INTO repro_meta VALUES (?, ?)",
        [("encoding", encoding), ("gap", str(gap))],
    )
    backend.commit()


def open_store(
    db: str,
    encoding: Optional[str] = None,
    gap: Optional[int] = None,
    pooled: bool = False,
) -> XmlStore:
    """Open (or initialise) the store in SQLite file *db*.

    ``pooled`` opens it through a :class:`~repro.backends.
    pooled_sqlite.PooledSqliteBackend` (one WAL connection per worker
    thread) instead of the single shared connection.
    """
    backend = _open_backend(db, pooled)
    meta = _read_meta(backend)
    if meta is not None:
        if encoding is not None and encoding != meta.get("encoding"):
            raise ReproError(
                f"store {db!r} uses encoding {meta.get('encoding')!r}; "
                f"cannot reopen it as {encoding!r}"
            )
        encoding = meta.get("encoding", "dewey")
        gap = int(meta.get("gap", "1")) if gap is None else gap
    else:
        encoding = encoding or "dewey"
        gap = gap or 1
        try:
            _write_meta(backend, encoding, gap)
        except Exception as exc:
            raise ReproError(f"cannot initialise store {db!r}: {exc}")
    return XmlStore(backend=backend, encoding=encoding, gap=gap)


def _resolve_doc(store: XmlStore, doc: Optional[int]) -> int:
    if doc is not None:
        return doc
    documents = store.documents()
    if not documents:
        raise ReproError("the store holds no documents; run 'load' first")
    return documents[-1].doc


def _commit(store: XmlStore) -> None:
    backend = store.backend
    if isinstance(backend, SqliteBackend):
        backend.commit()
    # Pooled backends run autocommit (explicit BEGIN only); no-op.


# -- commands ---------------------------------------------------------------


def cmd_load(args: argparse.Namespace) -> int:
    store = open_store(args.db, args.encoding, args.gap)
    text = Path(args.file).read_text()
    doc = store.load(
        text,
        name=args.name or Path(args.file).stem,
        strip_whitespace=args.strip_whitespace,
    )
    _commit(store)
    info = store.document_info(doc)
    print(
        f"loaded document {doc} ({info.name!r}): {info.node_count} "
        f"nodes, depth {info.max_depth}, encoding "
        f"{store.encoding.name}, gap {store.gap}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    store = open_store(args.db)
    doc = _resolve_doc(store, args.doc)
    if args.show_sql:
        translated = store.translate(args.xpath, doc)
        print(f"-- {translated.encoding} translation "
              f"({translated.stats.total_relational_operations()} "
              "relational ops)")
        print(translated.sql)
        print(f"-- params: {translated.params}")
        print()
    items = store.query(args.xpath, doc)
    if args.xml:
        for item in items:
            if item.kind == "attribute":
                print(f'{item.label}="{item.value}"')
            else:
                node = store.reconstruct_subtree(doc, item.node_id)
                print(serialize(node))
    else:
        for item in items:
            label = item.label or item.kind
            print(f"{item.node_id}\t{item.kind}\t{label}\t"
                  f"{item.value if item.value is not None else ''}")
    print(f"-- {len(items)} result(s)", file=sys.stderr)
    return 0


def cmd_insert(args: argparse.Namespace) -> int:
    store = open_store(args.db)
    doc = _resolve_doc(store, args.doc)
    parents = store.query(args.parent, doc)
    if not parents:
        raise ReproError(f"no node matches parent path {args.parent!r}")
    fragment = parse_fragment(args.fragment)
    index = args.index
    if index is None:
        children = store.fetch_children(doc, parents[0].node_id)
        index = len(children)
    report = store.updates.insert(doc, parents[0].node_id, index, fragment)
    _commit(store)
    print(
        f"inserted {report.inserted} node(s) at index {index}; "
        f"relabeled {report.relabeled} existing row(s)"
    )
    return 0


def cmd_delete(args: argparse.Namespace) -> int:
    store = open_store(args.db)
    doc = _resolve_doc(store, args.doc)
    targets = store.query(args.xpath, doc)
    if not targets:
        raise ReproError(f"no node matches {args.xpath!r}")
    if len(targets) > 1 and not args.all:
        raise ReproError(
            f"{args.xpath!r} matches {len(targets)} nodes; pass --all "
            "to delete every match"
        )
    deleted = 0
    for item in targets if args.all else targets[:1]:
        report = store.updates.delete(doc, item.node_id)
        deleted += report.deleted
    _commit(store)
    print(f"deleted {deleted} node(s)")
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    store = open_store(args.db)
    doc = _resolve_doc(store, args.doc)
    document = store.reconstruct(doc)
    print(serialize(document, pretty=args.pretty), end="")
    if not args.pretty:
        print()
    return 0


def cmd_drop(args: argparse.Namespace) -> int:
    store = open_store(args.db)
    removed = store.delete_document(args.doc)
    _commit(store)
    print(f"dropped document {args.doc} ({removed} rows)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    store = open_store(args.db)
    print(f"encoding: {store.encoding.name}   gap: {store.gap}")
    print(f"{'doc':>4}  {'name':20} {'nodes':>8} {'depth':>6} "
          f"{'next id':>8} {'encoding':>8}")
    for info in store.documents():
        encoding = info.encoding or store.encoding.name
        print(f"{info.doc:>4}  {info.name:20} {info.node_count:>8} "
              f"{info.max_depth:>6} {info.next_id:>8} {encoding:>8}")
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    from repro.migrate import MigrationAdvisor, migrate_document

    if args.to is None and not (args.advise or args.auto):
        raise ReproError(
            "pass --to ENCODING, or --advise/--auto to consult the "
            "workload advisor"
        )
    if args.to is not None and (args.advise or args.auto):
        raise ReproError("--to conflicts with --advise/--auto")
    store = open_store(args.db)
    doc = _resolve_doc(store, args.doc)
    target = args.to
    if target is None:
        import json as json_module

        from repro.obs import METRICS

        if args.counters:
            counters = json_module.loads(Path(args.counters).read_text())
        else:
            counters = METRICS.snapshot()
        advisor = MigrationAdvisor()
        current = store.encoding_for(doc).name
        recommendation = advisor.decide(counters, current)
        arrow = (
            f" -> {recommendation.target}" if recommendation.target else ""
        )
        print(f"advisor: {recommendation.action}{arrow} "
              f"({recommendation.reason})")
        if not args.auto or not recommendation.migrate:
            return 0
        target = recommendation.target
    report = migrate_document(
        store, doc, target, batch_size=args.batch_size
    )
    _commit(store)
    if report.outcome == "noop":
        print(f"document {doc} already uses {report.target}; nothing "
              "to do")
    else:
        print(
            f"migrated document {doc}: {report.source} -> "
            f"{report.target}, {report.rows_copied} node row(s) + "
            f"{report.attrs_copied} attribute row(s) copied, "
            f"{report.journal_replayed} concurrent update(s) replayed "
            f"over {report.replay_rounds} round(s)"
        )
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.index import IndexAdvisor

    if sum((args.create, args.drop, args.advise or args.auto)) > 1:
        raise ReproError(
            "--create, --drop and --advise/--auto are mutually exclusive"
        )
    store = open_store(args.db)

    if args.create:
        doc = _resolve_doc(store, args.doc)
        report = store.indexes.create(doc)
        _commit(store)
        print(
            f"indexed document {doc}: {report['elements']} element "
            f"value(s), {report['paths']} distinct path(s), "
            f"statistics version {report['stats_version']}"
        )
        return 0

    if args.drop:
        doc = _resolve_doc(store, args.doc)
        present = store.indexes.drop(doc)
        _commit(store)
        if present:
            print(f"dropped the index of document {doc}")
        else:
            print(f"document {doc} had no index; nothing to do")
        return 0

    if args.advise or args.auto:
        from repro.obs import METRICS, slow_log

        if args.counters:
            counters = json_module.loads(Path(args.counters).read_text())
        else:
            counters = METRICS.snapshot()
        documents = store.documents()
        unindexed = [
            d.doc for d in documents if not store.indexes.exists(d.doc)
        ]
        stale = [
            d.doc
            for d in documents
            if d.doc not in unindexed and store.indexes.stats_stale(d.doc)
        ]
        log = slow_log()
        slow_xpaths = (
            [entry.xpath for entry in log.entries()] if log else []
        )
        recommendation = IndexAdvisor().decide(
            counters, unindexed, stale, slow_xpaths
        )
        targets = (
            " " + ",".join(str(d) for d in recommendation.documents)
            if recommendation.documents else ""
        )
        print(f"advisor: {recommendation.action}{targets} "
              f"({recommendation.reason})")
        if not args.auto or not recommendation.act:
            return 0
        for doc in recommendation.documents:
            if recommendation.action == "refresh":
                report = store.indexes.refresh_stats(doc)
                verb = "refreshed statistics of"
            else:
                report = store.indexes.create(doc)
                verb = "indexed"
            print(
                f"{verb} document {doc}: {report['elements']} element "
                f"value(s), {report['paths']} distinct path(s), "
                f"statistics version {report['stats_version']}"
            )
        _commit(store)
        return 0

    # Default (and --stats): describe the stored documents' indexes.
    documents = store.documents()
    if args.doc is not None:
        documents = [d for d in documents if d.doc == args.doc]
        if not documents:
            raise ReproError(f"no document {args.doc} in the store")
    summaries = [store.indexes.describe(d.doc) for d in documents]
    if args.json:
        print(json_module.dumps(summaries, indent=2))
        return 0
    if not summaries:
        print("the store holds no documents")
        return 0
    for summary in summaries:
        if not summary["present"]:
            print(f"document {summary['doc']}: no index")
            continue
        stale_marker = " [statistics stale]" if summary["stale"] else ""
        print(
            f"document {summary['doc']}: indexed, "
            f"{summary['element_count']} element value(s), "
            f"{summary['path_count']} distinct path(s), "
            f"statistics version {summary['stats_version']} "
            f"({summary['updates_since']} update(s) since refresh)"
            f"{stale_marker}"
        )
        if summary["tags"]:
            tags = ", ".join(
                f"{tag}={count}" for tag, count in summary["tags"].items()
            )
            print(f"  top tags: {tags}")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    store = open_store(args.db)
    result = store.backend.execute(args.statement)
    for row in result.rows:
        print("\t".join("" if v is None else str(v) for v in row))
    if result.rowcount >= 0:
        print(f"-- {result.rowcount} row(s) affected", file=sys.stderr)
    _commit(store)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check import audit_store

    store = open_store(args.db)
    violations = audit_store(store)
    docs = len(store.documents())
    if violations:
        for violation in violations:
            print(violation)
        print(
            f"-- {len(violations)} violation(s) across {docs} "
            f"document(s) [{store.encoding.name}/{store.backend.name}]",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {docs} document(s) audited, 0 violations "
        f"[{store.encoding.name}/{store.backend.name}, gap {store.gap}]"
    )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.check import FuzzConfig, run_fuzz

    encodings, backends, gaps = _parse_matrix(args)
    config = FuzzConfig(
        seeds=args.seeds,
        ops=args.ops,
        encodings=encodings,
        backends=backends,
        gaps=gaps,
        base_seed=args.base_seed,
        check_every=args.check_every,
        queries_per_check=args.queries_per_check,
        cache_twin=args.cache_twin,
        index_twin=args.index_twin,
        update_heavy=args.update_heavy,
        migrate_during=args.migrate_during,
    )
    try:
        report = run_fuzz(config)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    for failure in report.failures:
        print(failure)
        print()
    print(report.summary())
    return 0 if report.ok() else 1


def _parse_matrix(args) -> tuple[tuple[str, ...], tuple[str, ...],
                                 tuple[int, ...]]:
    """Validate the shared --encodings/--backends/--gaps flags."""
    encodings = tuple(args.encodings.split(","))
    backends = tuple(args.backends.split(","))
    for encoding in encodings:
        if encoding not in ENCODINGS:
            raise ReproError(
                f"unknown encoding {encoding!r}; expected one of "
                f"{sorted(ENCODINGS)}"
            )
    for backend in backends:
        if backend not in ("sqlite", "minidb"):
            raise ReproError(
                f"unknown backend {backend!r}; expected 'sqlite' or "
                "'minidb'"
            )
    try:
        gaps = tuple(int(g) for g in args.gaps.split(","))
    except ValueError:
        raise ReproError(
            f"--gaps expects comma-separated integers, got {args.gaps!r}"
        ) from None
    return encodings, backends, gaps


def cmd_crashtest(args: argparse.Namespace) -> int:
    from repro.robust.crashtest import (
        CrashTestConfig,
        CrashTestReport,
        run_crashtest,
        run_writer_crashtest,
    )

    encodings, backends, gaps = _parse_matrix(args)
    report = CrashTestReport()
    if args.shard_kill:
        from repro.serve.crashtest import run_shard_kill_crashtest

        report.merge(
            run_shard_kill_crashtest(
                seeds=args.seeds,
                rounds=args.shard_rounds,
                ops_per_round=max(args.ops, 2),
                base_seed=args.base_seed,
                encoding=encodings[0] if encodings else None,
                gap=gaps[0] if gaps else None,
            )
        )
        for failure in report.failures:
            print(failure)
            print()
        print(report.summary())
        return 0 if report.ok() else 1
    if args.index:
        from repro.robust.crashtest import run_index_crashtest

        config = CrashTestConfig(
            seeds=args.seeds,
            encodings=encodings,
            backends=backends,
            gaps=gaps,
            base_seed=args.base_seed,
            crashes_per_op=0 if args.sweep else args.crashes_per_op,
        )
        report.merge(run_index_crashtest(config))
        for failure in report.failures:
            print(failure)
            print()
        print(report.summary())
        return 0 if report.ok() else 1
    if args.migrate:
        from repro.robust.crashtest import run_migration_crashtest

        config = CrashTestConfig(
            seeds=args.seeds,
            ops=args.ops,
            encodings=encodings,
            backends=backends,
            gaps=gaps,
            base_seed=args.base_seed,
            crashes_per_op=0 if args.sweep else args.crashes_per_op,
        )
        report.merge(run_migration_crashtest(config))
        for failure in report.failures:
            print(failure)
            print()
        print(report.summary())
        return 0 if report.ok() else 1
    if args.ops > 0:
        config = CrashTestConfig(
            seeds=args.seeds,
            ops=args.ops,
            encodings=encodings,
            backends=backends,
            gaps=gaps,
            base_seed=args.base_seed,
            crashes_per_op=0 if args.sweep else args.crashes_per_op,
            transient_rate=args.transient_rate,
            snapshot_fault_rate=args.snapshot_fault_rate,
        )
        report.merge(run_crashtest(config))
    if args.writer_batches > 0 and "sqlite" in backends:
        report.merge(
            run_writer_crashtest(
                seeds=args.seeds,
                batches=args.writer_batches,
                encodings=encodings,
                crashes_per_batch=(
                    0 if args.sweep else args.crashes_per_op
                ),
                base_seed=args.base_seed,
            )
        )
    for failure in report.failures:
        print(failure)
        print()
    print(report.summary())
    return 0 if report.ok() else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.experiments import run_all

    for table in run_all(fast=args.fast):
        print(table.render())
        print()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.bench.experiments import run_all
    from repro.bench.report import (
        compute_verdicts,
        render_verdicts,
        results_payload,
        write_results_json,
    )

    started = time.time()
    tables = run_all(fast=args.fast)
    elapsed = time.time() - started
    verdicts = compute_verdicts(tables)
    if args.json:
        import json as json_module

        payload = results_payload(
            tables, verdicts, elapsed_seconds=elapsed
        )
        print(json_module.dumps(payload, indent=2))
    else:
        for table in tables:
            print(table.render())
            print()
        for line in render_verdicts(verdicts):
            print(line)
    written = write_results_json(
        args.output, tables, verdicts, elapsed_seconds=elapsed
    )
    if not args.json:
        print(f"wrote {written} ({len(tables)} experiments, "
              f"{elapsed:.1f}s)")
    if args.strict and not all(v.ok for v in verdicts):
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sharded serving daemon until SIGTERM/SIGINT (or a wire
    ``shutdown`` request)."""
    import signal as _signal

    from repro.serve.frontdoor import ServeConfig, ServeDaemon

    config = ServeConfig(
        directory=args.dir,
        shards=args.shards,
        host=args.host,
        port=args.port,
        encoding=args.encoding,
        gap=args.gap,
        request_timeout=args.request_timeout,
    )
    daemon = ServeDaemon(config)

    def stop(_signum, _frame) -> None:
        daemon._request_stop()

    _signal.signal(_signal.SIGTERM, stop)
    _signal.signal(_signal.SIGINT, stop)

    # Report the bound port as soon as the listener is up (port 0 is
    # ephemeral) so scripts can scrape it from the first output line.
    def report_started() -> None:
        daemon._started.wait(config.shards * 20.0)
        if daemon.bound_port is not None:
            print(
                f"serving {args.shards} shard(s) from {args.dir} "
                f"on {args.host}:{daemon.bound_port}",
                flush=True,
            )

    import threading as _threading

    _threading.Thread(target=report_started, daemon=True).start()
    daemon.run()
    print("serve: stopped")
    return 0


def cmd_serve_smoke(args: argparse.Namespace) -> int:
    """Scripted round trip against a serve daemon (the CI smoke).

    With ``--port``, talks to an already-running daemon; without it,
    spins up its own 2-shard cluster in a temporary directory, runs the
    round trip, and shuts it down — one command, no plumbing.
    """
    import tempfile

    from repro.serve.client import TcpClient
    from repro.serve.frontdoor import ServeConfig, ServeDaemon
    from repro.workload.docgen import random_document
    from repro.xmldom import serialize

    daemon = None
    port = args.port
    tmp = None
    try:
        if port is None:
            tmp = tempfile.TemporaryDirectory(prefix="serve-smoke-")
            daemon = ServeDaemon(
                ServeConfig(directory=tmp.name, shards=args.shards)
            )
            port = daemon.start_in_background()
            print(f"spawned {args.shards}-shard cluster on port {port}")
        client = TcpClient(args.host, port)
        try:
            response = client.ping()
            if not response.get("ok"):
                print(f"ping failed: {response}", file=sys.stderr)
                return 1
            print(f"ping: ok ({response.get('shards')} shard(s))")
            docs = [
                client.load(serialize(random_document(seed)))
                for seed in range(4)
            ]
            print(f"loaded documents: {docs}")
            result = client.query("//a", doc=docs[0])
            print(f"query doc {docs[0]}: {len(result['items'])} item(s)")
            scattered = client.query("/*")
            groups = scattered["groups"]
            order = [g["doc"] for g in groups]
            if order != sorted(order) or len(groups) != len(docs):
                print(f"scatter order broken: {order}", file=sys.stderr)
                return 1
            print(f"scatter query: {len(groups)} group(s), "
                  f"document order {order}")
            root = int(groups[0]["items"][0][1])
            update = client.update(
                docs[0],
                {"kind": "set_attr", "target": root,
                 "name": "smoke", "value": "1"},
            )
            print(f"update: rows_touched={update.get('rows_touched')}")
            stats = client.stats()
            alive = [s for s in stats["shards"] if "error" not in s]
            print(f"stats: {len(alive)} live shard(s), "
                  f"generations {stats.get('generations')}")
            if len(alive) != args.shards:
                print("stats reported a dead shard", file=sys.stderr)
                return 1
            response = client.shutdown()
            if not response.get("ok"):
                print(f"shutdown failed: {response}", file=sys.stderr)
                return 1
            print("shutdown: acknowledged")
        finally:
            client.close()
        if daemon is not None:
            daemon.stop()
            daemon = None
        print("serve-smoke: OK")
        return 0
    finally:
        if daemon is not None:
            daemon.stop()
        if tmp is not None:
            tmp.cleanup()


def _serve_bench_sharded(args: argparse.Namespace) -> int:
    """serve-bench --shards: cluster + multi-process load generator."""
    import tempfile

    from repro.serve.client import TcpClient
    from repro.serve.frontdoor import ServeConfig, ServeDaemon
    from repro.serve.loadgen import run_load
    from repro.workload.docgen import random_document
    from repro.xmldom import serialize

    queries = [
        "//a[b/c]//d",
        "//b[text() < 3]",
        "//*[b][c]//a",
        "//d[a/b]",
    ]
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as tmp:
        daemon = ServeDaemon(
            ServeConfig(
                directory=tmp,
                shards=args.shards,
                encoding=args.encoding,
            )
        )
        try:
            port = daemon.start_in_background()
            setup = TcpClient("127.0.0.1", port)
            try:
                docs = [
                    setup.load(
                        serialize(
                            random_document(
                                seed, max_depth=10, max_children=6
                            )
                        )
                    )
                    for seed in range(args.docs)
                ]
            finally:
                setup.close()
            report = run_load(
                "127.0.0.1",
                port,
                docs,
                queries,
                clients=args.readers,
                duration=args.duration,
                write_rate_hz=args.write_rate,
            )
        finally:
            daemon.stop()
    print(
        f"shards={args.shards} clients={report.clients} "
        f"duration={report.duration_s:.2f}s"
    )
    print(f"read throughput:  {report.read_ops_s:,.1f} ops/s "
          f"({report.read_ops} ops, {report.read_errors} error(s))")
    print(f"read latency:     p50 {report.p50_ms:.3f} ms, "
          f"p99 {report.p99_ms:.3f} ms")
    print(f"paced writes:     {report.writes} "
          f"({report.write_errors} error(s))")
    return 1 if report.read_errors or report.write_errors else 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    if args.shards is not None:
        return _serve_bench_sharded(args)
    if args.db is None:
        print("error: serve-bench needs --db (thread mode) or "
              "--shards (cluster mode)", file=sys.stderr)
        return 2
    from repro.check import audit_store
    from repro.obs import METRICS
    from repro.workload import (
        ORDERED_QUERIES,
        UNORDERED_QUERIES,
        article_corpus,
    )
    from repro.workload.mixer import ConcurrentWorkload

    pooled = args.mode == "pooled"
    store = open_store(args.db, args.encoding, None, pooled=pooled)
    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    try:
        documents = store.documents()
        if documents:
            doc = documents[-1].doc
        else:
            doc = store.load(
                article_corpus(articles=args.articles),
                name="serve-corpus",
            )
            _commit(store)
        if pooled:
            store.enable_write_queue(max_batch=args.max_batch)
        workload = ConcurrentWorkload(
            store, doc, ORDERED_QUERIES + UNORDERED_QUERIES
        )
        result = workload.run(
            args.readers, args.duration, writer=not args.no_writer
        )
        print(
            f"mode={args.mode} readers={result.readers} "
            f"writer={'on' if result.writer else 'off'} "
            f"duration={result.duration_seconds:.2f}s"
        )
        print(f"read throughput:  {result.read_ops_per_second:,.1f} ops/s "
              f"({result.read_operations} ops)")
        print(f"write throughput: {result.write_ops_per_second:,.1f} ops/s "
              f"({result.write_operations} ops)")
        queue = store.write_queue
        if queue is not None:
            print(
                f"group commit: {queue.operations} op(s) in "
                f"{queue.batches} batch(es), "
                f"{queue.grouped_operations} grouped"
            )
        METRICS.enabled = was_enabled
        _print_metrics_snapshot(METRICS.snapshot())
        failed = False
        for error in result.read_errors:
            print(f"reader error: {error}", file=sys.stderr)
            failed = True
        if result.write_error:
            print(f"writer error: {result.write_error}", file=sys.stderr)
            failed = True
        violations = audit_store(store)
        if violations:
            for violation in violations:
                print(violation, file=sys.stderr)
            print(f"-- {len(violations)} invariant violation(s)",
                  file=sys.stderr)
            failed = True
        else:
            print("audit: clean")
        return 1 if failed else 0
    finally:
        METRICS.enabled = was_enabled
        store.close()


def _seed_demo_document(store: XmlStore) -> int:
    """Load a small <items> document so trace/stats work on a fresh db."""
    parts = ["<items>"]
    for i in range(1, 101):
        parts.append(
            f"<item><name>item-{i}</name><qty>{i % 7 + 1}</qty>"
            f"<price>{i}.50</price></item>"
        )
    parts.append("</items>")
    doc = store.load("".join(parts), name="demo")
    _commit(store)
    print("(empty store: seeded a 100-item demo document)",
          file=sys.stderr)
    return doc


def _trace_doc(store: XmlStore, requested: Optional[int]) -> int:
    if store.documents():
        return _resolve_doc(store, requested)
    return _seed_demo_document(store)


def _print_span_tree(span, depth: int = 0) -> None:
    pad = "  " * depth
    attrs = "".join(
        f" {key}={value!r}" for key, value in span.attrs.items()
    )
    marker = "" if span.status == "ok" else f" [{span.status}]"
    print(f"{pad}{span.name:<{24 - len(pad)}} "
          f"{span.duration_ms:9.3f} ms{marker}{attrs}")
    for child in span.children:
        _print_span_tree(child, depth + 1)


def _print_metrics_snapshot(snapshot: dict) -> None:
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        print("counters:")
        for name, value in counters.items():
            print(f"  {name:<32} {value}")
    if histograms:
        print("histograms:")
        for name, hist in histograms.items():
            print(
                f"  {name:<32} count={hist['count']} "
                f"mean={hist['mean']:.6f} min={hist['min']:.6f} "
                f"max={hist['max']:.6f}"
            )


def _print_cache_stats(cache: dict) -> None:
    state = "on" if cache["enabled"] else "off (REPRO_CACHE)"
    print(f"cache: {state}, epoch {cache['epoch']}")
    for name, layer in cache["layers"].items():
        total = layer["hits"] + layer["misses"]
        rate = 100.0 * layer["hits"] / total if total else 0.0
        print(
            f"  {name:<8} size={layer['size']}/{layer['capacity']} "
            f"hits={layer['hits']} misses={layer['misses']} "
            f"evictions={layer['evictions']} "
            f"invalidations={layer['invalidations']} "
            f"hit-rate={rate:.1f}%"
        )


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import METRICS, Tracer, tracing

    store = open_store(args.db, args.encoding, None)
    # Tracing documents the translate/execute/materialize pipeline; a
    # result-cache hit would short-circuit it into a single empty span.
    store.cache.enabled = False
    doc = _trace_doc(store, args.doc)
    if not args.cold:
        # A warm-up run keeps one-time costs (sqlite statement
        # preparation, page cache) out of the traced timings.
        store.query(args.xpath, doc)
    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    tracer = Tracer()
    try:
        with tracing(tracer):
            items = store.query(args.xpath, doc)
    finally:
        METRICS.enabled = was_enabled
    if args.json:
        print(tracer.to_json())
    else:
        for root in tracer.roots:
            _print_span_tree(root)
        total = tracer.total_ms()
        leaf = sum(
            s.duration_ms
            for root in tracer.roots
            for s in root.leaves()
        )
        if total > 0:
            print(f"-- total {total:.3f} ms, leaf spans cover "
                  f"{leaf:.3f} ms ({100.0 * leaf / total:.1f}%)")
        _print_metrics_snapshot(METRICS.snapshot())
    print(f"-- {len(items)} result(s)", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs import METRICS, disable_slow_log, enable_slow_log

    store = open_store(args.db, args.encoding, None)
    doc = _trace_doc(store, args.doc)
    xpaths = args.xpath or ["/*", "//*"]
    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    log = enable_slow_log(threshold_ms=args.slow_ms)
    try:
        for _ in range(args.repeat):
            for xpath in xpaths:
                store.query(xpath, doc)
    finally:
        METRICS.enabled = was_enabled
        disable_slow_log()
    snapshot = METRICS.snapshot()
    # The migration counters always appear (zero-defaulted), so
    # monitoring that greps `repro stats` output sees them before the
    # first migration ever runs.
    for name in (
        "migrate.started", "migrate.completed", "migrate.aborted",
        "migrate.rows_copied", "migrate.journal_replayed",
    ):
        snapshot["counters"].setdefault(name, 0)
    snapshot["cache"] = store.cache.stats()
    if args.json:
        print(json_module.dumps(snapshot, indent=2))
    else:
        print(f"ran {args.repeat} round(s) of {len(xpaths)} "
              f"quer{'y' if len(xpaths) == 1 else 'ies'} against "
              f"document {doc}")
        _print_metrics_snapshot(snapshot)
        _print_cache_stats(snapshot["cache"])
        entries = log.entries()
        if entries:
            print(f"slow queries (>= {log.threshold_ms:g} ms):")
            for entry in entries:
                print(entry.render())
        else:
            print(f"slow queries (>= {log.threshold_ms:g} ms): none")
    return 0


# -- parser -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ordered XML in a relational database "
                    "(SIGMOD 2002 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", default=":memory:",
                       help="SQLite store file (default: in-memory)")

    p = sub.add_parser("load", help="shred an XML file into the store")
    p.add_argument("file")
    add_db(p)
    p.add_argument("--encoding", choices=sorted(ENCODINGS),
                   default=None, help="order encoding (first load only)")
    p.add_argument("--gap", type=int, default=None,
                   help="sparse-numbering gap (default 1 = dense)")
    p.add_argument("--name", default=None)
    p.add_argument("--strip-whitespace", action="store_true")
    p.set_defaults(func=cmd_load)

    p = sub.add_parser("query", help="run an XPath query")
    p.add_argument("xpath")
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--show-sql", action="store_true",
                   help="print the generated SQL first")
    p.add_argument("--xml", action="store_true",
                   help="print matching subtrees as XML")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("insert", help="insert an XML fragment")
    p.add_argument("fragment", help="XML text of the fragment")
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--parent", required=True,
                   help="XPath selecting the parent element")
    p.add_argument("--index", type=int, default=None,
                   help="child index (default: append)")
    p.set_defaults(func=cmd_insert)

    p = sub.add_parser("delete", help="delete matching subtrees")
    p.add_argument("xpath")
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--all", action="store_true",
                   help="delete every match, not just the first")
    p.set_defaults(func=cmd_delete)

    p = sub.add_parser("dump", help="reconstruct a document as XML")
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--pretty", action="store_true")
    p.set_defaults(func=cmd_dump)

    p = sub.add_parser("drop", help="drop a whole document")
    p.add_argument("doc", type=int)
    add_db(p)
    p.set_defaults(func=cmd_drop)

    p = sub.add_parser("info", help="list stored documents")
    add_db(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("sql", help="run raw SQL against the store")
    p.add_argument("statement")
    add_db(p)
    p.set_defaults(func=cmd_sql)

    p = sub.add_parser(
        "check",
        help="audit a store's structural and encoding invariants",
    )
    add_db(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "index",
        help="create, drop, describe or advise on per-document "
             "secondary indexes",
    )
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--create", action="store_true",
                   help="(re)build the document's value/path indexes "
                        "and statistics")
    p.add_argument("--drop", action="store_true",
                   help="remove the document's index rows")
    p.add_argument("--stats", action="store_true",
                   help="print index state and statistics (default "
                        "action)")
    p.add_argument("--advise", action="store_true",
                   help="print the index advisor's recommendation and "
                        "stop")
    p.add_argument("--auto", action="store_true",
                   help="create/refresh indexes when the advisor "
                        "recommends it")
    p.add_argument("--counters", default=None,
                   help="JSON metrics snapshot for the advisor (as "
                        "written by 'repro stats --json'); default: "
                        "this process's live counters")
    p.add_argument("--json", action="store_true",
                   help="machine-readable --stats output")
    p.set_defaults(func=cmd_index)

    p = sub.add_parser(
        "migrate",
        help="re-encode a live document between order encodings "
             "(online, crash-safe)",
    )
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--to", choices=sorted(ENCODINGS), default=None,
                   help="target order encoding")
    p.add_argument("--advise", action="store_true",
                   help="print the workload advisor's recommendation "
                        "and stop")
    p.add_argument("--auto", action="store_true",
                   help="migrate when the advisor recommends it")
    p.add_argument("--counters", default=None,
                   help="JSON metrics snapshot for the advisor (as "
                        "written by 'repro stats --json'); default: "
                        "this process's live counters")
    p.add_argument("--batch-size", type=int, default=500,
                   help="rows copied per shadow transaction "
                        "(default 500)")
    p.set_defaults(func=cmd_migrate)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzz: random updates vs the native evaluator",
    )
    p.add_argument("--seeds", type=int, default=5,
                   help="number of random documents (default 5)")
    p.add_argument("--ops", type=int, default=25,
                   help="update operations per document (default 25)")
    p.add_argument("--encodings", default="global,local,dewey,ordpath",
                   help="comma-separated encodings to cross-check")
    p.add_argument("--backends", default="sqlite",
                   help="comma-separated backends (sqlite,minidb)")
    p.add_argument("--gaps", default="1",
                   help="comma-separated gap factors (default 1)")
    p.add_argument("--base-seed", type=int, default=0,
                   help="first document seed (default 0)")
    p.add_argument("--check-every", type=int, default=1,
                   help="run the check battery every N ops (default 1)")
    p.add_argument("--queries-per-check", type=int, default=5,
                   help="oracle queries per store per check (default 5)")
    p.add_argument("--cache-twin", action="store_true",
                   help="pair every store with a caching-off twin and "
                        "require byte-identical query results")
    p.add_argument("--index-twin", action="store_true",
                   help="pair every store (secondary indexes forced "
                        "on) with an indexes-off twin and require "
                        "byte-identical query results")
    p.add_argument("--update-heavy", action="store_true",
                   help="bias the op mix toward structural churn "
                        "(subtree inserts, deletes, text rewrites) — "
                        "the rounds that stress incremental index "
                        "maintenance")
    p.add_argument("--migrate-during", action="store_true",
                   help="run a live encoding migration in the "
                        "background while fuzzing; every query must "
                        "match a non-migrating twin byte for byte "
                        "(sqlite backend only)")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "crashtest",
        help="crash-recovery check: seeded update streams with "
             "simulated crashes at statement boundaries",
    )
    p.add_argument("--seeds", type=int, default=2,
                   help="number of random documents (default 2)")
    p.add_argument("--ops", type=int, default=6,
                   help="update operations per cell (default 6)")
    p.add_argument("--encodings", default="global,local,dewey,ordpath",
                   help="comma-separated encodings to test")
    p.add_argument("--backends", default="sqlite,minidb",
                   help="comma-separated backends (sqlite,minidb)")
    p.add_argument("--gaps", default="1",
                   help="comma-separated gap factors (default 1)")
    p.add_argument("--base-seed", type=int, default=0,
                   help="first document seed (default 0)")
    p.add_argument("--crashes-per-op", type=int, default=2,
                   help="crash points sampled per operation (default 2)")
    p.add_argument("--sweep", action="store_true",
                   help="crash at every statement boundary of every op")
    p.add_argument("--transient-rate", type=float, default=0.05,
                   help="also replay each stream with this transient-"
                        "fault rate under the retry policy (0 disables; "
                        "default 0.05)")
    p.add_argument("--snapshot-fault-rate", type=float, default=0.25,
                   help="fraction of minidb checkpoints interrupted "
                        "mid-save (default 0.25)")
    p.add_argument("--writer-batches", type=int, default=2,
                   help="also crash the group-commit writer mid-batch "
                        "this many times per cell on the pooled sqlite "
                        "backend (0 disables; default 2)")
    p.add_argument("--migrate", action="store_true",
                   help="crash encoding migrations instead: every "
                        "ordered pair of --encodings on every backend, "
                        "recovery must land exactly pre- or post-"
                        "migration")
    p.add_argument("--index", action="store_true",
                   help="crash index creates and drops instead: the "
                        "recovered index must be either absent or "
                        "byte-identical to the complete one, never "
                        "partial")
    p.add_argument("--shard-kill", action="store_true",
                   help="kill a live serve shard worker (SIGKILL) in "
                        "the middle of an update batch instead: the "
                        "supervisor must respawn it and the recovered "
                        "state must be exactly pre- or post-batch")
    p.add_argument("--shard-rounds", type=int, default=3,
                   help="kill/respawn rounds per seed with "
                        "--shard-kill (default 3)")
    p.set_defaults(func=cmd_crashtest)

    p = sub.add_parser("experiments",
                       help="run the E1-E14 experiment suite")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "bench",
        help="run the experiment suite and write machine-readable "
             "results (tables + shape verdicts) as JSON",
    )
    p.add_argument("--fast", action="store_true",
                   help="reduced sizes (quick smoke run)")
    p.add_argument("--output", default="BENCH_results.json",
                   help="results file (default BENCH_results.json)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any shape verdict fails")
    p.add_argument("--json", action="store_true",
                   help="print the results JSON to stdout instead of "
                        "the rendered tables")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the sharded serving daemon: N shard worker "
             "processes behind one asyncio front door",
    )
    p.add_argument("--dir", required=True,
                   help="cluster directory (shard db + socket files)")
    p.add_argument("--shards", type=int, default=2,
                   help="shard worker processes (default 2)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral, printed on "
                        "startup)")
    p.add_argument("--encoding", choices=sorted(ENCODINGS), default=None,
                   help="order encoding for fresh shard stores")
    p.add_argument("--gap", type=int, default=None,
                   help="gap factor for fresh shard stores")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="per-request budget in seconds (default 30)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "serve-smoke",
        help="scripted load/query/update/stats round trip against a "
             "serve daemon (spawns its own 2-shard cluster unless "
             "--port is given)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="talk to an already-running daemon instead of "
                        "spawning one")
    p.add_argument("--shards", type=int, default=2,
                   help="shard count when spawning (default 2)")
    p.set_defaults(func=cmd_serve_smoke)

    p = sub.add_parser(
        "serve-bench",
        help="concurrent-serving throughput: N reader threads plus one "
             "writer against a file-backed store, or (with --shards) a "
             "closed-loop multi-process load against a live cluster",
    )
    p.add_argument("--db", default=None,
                   help="SQLite store file for thread mode (created "
                        "and seeded with an article corpus when empty)")
    p.add_argument("--shards", type=int, default=None,
                   help="cluster mode: spin up this many shard workers "
                        "in a temp directory and drive them with the "
                        "multi-process load generator")
    p.add_argument("--docs", type=int, default=8,
                   help="cluster mode: documents to load (default 8)")
    p.add_argument("--write-rate", type=float, default=20.0,
                   help="cluster mode: paced writer rate in Hz "
                        "(default 20)")
    p.add_argument("--mode", choices=("pooled", "serialized"),
                   default="pooled",
                   help="pooled WAL connections + write queue, or the "
                        "serialized shared connection (default pooled)")
    p.add_argument("--readers", type=int, default=4,
                   help="reader threads (default 4)")
    p.add_argument("--duration", type=float, default=1.0,
                   help="seconds to run (default 1.0)")
    p.add_argument("--articles", type=int, default=12,
                   help="corpus size when seeding an empty store "
                        "(default 12)")
    p.add_argument("--encoding", choices=sorted(ENCODINGS), default=None,
                   help="order encoding when seeding an empty store")
    p.add_argument("--max-batch", type=int, default=16,
                   help="group-commit batch cap (default 16)")
    p.add_argument("--no-writer", action="store_true",
                   help="readers only, no background writer")
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "trace",
        help="run one query under the tracer and print its span tree",
    )
    p.add_argument("xpath")
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--encoding", choices=sorted(ENCODINGS), default=None,
                   help="order encoding when seeding an empty store")
    p.add_argument("--cold", action="store_true",
                   help="skip the warm-up run (trace first execution)")
    p.add_argument("--json", action="store_true",
                   help="print the span tree as JSON")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stats",
        help="run queries with metrics + slow-query log enabled and "
             "print the counter/histogram snapshot",
    )
    p.add_argument("xpath", nargs="*",
                   help="XPath queries to run (default: /* and //*)")
    add_db(p)
    p.add_argument("--doc", type=int, default=None)
    p.add_argument("--encoding", choices=sorted(ENCODINGS), default=None,
                   help="order encoding when seeding an empty store")
    p.add_argument("--repeat", type=int, default=5,
                   help="rounds over the query list (default 5)")
    p.add_argument("--slow-ms", type=float, default=1.0,
                   help="slow-query threshold in ms (default 1.0)")
    p.add_argument("--json", action="store_true",
                   help="print the metrics snapshot as JSON")
    p.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
