"""Per-document secondary indexes and catalog statistics.

:class:`IndexManager` owns the ``idx_*`` side tables declared in
:func:`repro.core.schema.index_tables`:

* **value index** (``idx_sval``) — one row per element carrying its full
  XPath string-value and numeric interpretation, probed by rewritten
  value predicates;
* **path index** (``idx_paths`` + ``idx_pathmap``) — the dictionary of
  distinct root-to-element paths plus the occurrence map, probed by
  rewritten structural queries through the ``path_match`` scalar;
* **catalog statistics** (``idx_stats``) — tag counts, a depth
  histogram, distinct-value estimates and index metadata, feeding the
  cost model (:mod:`repro.index.cost`).

The side tables are created empty at schema bootstrap and keyed on the
surrogate ``id``, so they are encoding-independent and index create /
drop / maintenance is plain transactional DML — crash safety falls out
of transaction rollback, with no DDL recovery path.

Maintenance is *incremental* by default: each update operation hands
its touched set (removed ids, reshred subtree roots, string-value
anchors — see :class:`repro.core.updates.UpdateReport`) down into the
same transaction, and only those rows are repaired.  Index rows carry
no order columns, so renumbering never invalidates them; relabels only
feed the fallback budget.  Ops that invalidate more than
:data:`INCR_FALLBACK_FRACTION` of the document (or that cannot account
exactly for what they touched) fall back to the eager
:meth:`IndexManager._rebuild_rows` full pass, and the whole incremental
path sits behind the ``REPRO_INDEX_INCR=on|off`` hatch.  The path
dictionary is append-only in both modes — path ids are stable across
rebuilds, which is what makes incremental and eager maintenance produce
byte-identical tables.

The statistics refresh lazily: ``updates_since`` counts update
operations since the last refresh, and crossing
:data:`STATS_REFRESH_THRESHOLD` (or an explicit ``refresh_stats``)
recomputes them and bumps the stats version — the component of the
plan-cache fingerprint that keeps cost decisions aligned with the
statistics that justified them.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from repro.core.numeric import xpath_number_value
from repro.core.schema import KIND_ELEMENT, KIND_TEXT
from repro.obs import METRICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import XmlStore

#: Update operations between automatic statistics refreshes.
STATS_REFRESH_THRESHOLD = 32

#: Incremental maintenance falls back to an eager rebuild once an
#: update invalidates more than this fraction of the document's rows
#: (removed + reshredded) — past that point a single full pass is
#: cheaper than piecewise repair.  Relabeled rows don't count: the
#: idx_* tables carry no order columns, so renumbering never
#: invalidates an index row.
INCR_FALLBACK_FRACTION = 0.25

_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})
_ON_VALUES = frozenset({"on", "1", "true", "yes", "enabled"})

#: Ids per ``IN (...)`` batch in incremental-maintenance DML.
_ID_BATCH = 400


def index_mode_from_env() -> str:
    """The ``REPRO_INDEX`` escape hatch: ``on`` | ``off`` | ``auto``.

    ``on`` builds indexes at load time and uses them; ``off`` never
    uses them (existing index rows are kept but ignored); ``auto`` —
    the default — uses an index when the document has one and never
    builds one implicitly.
    """
    value = os.environ.get("REPRO_INDEX", "").strip().lower()
    if value in _ON_VALUES:
        return "on"
    if value in _OFF_VALUES:
        return "off"
    return "auto"


def index_incremental_from_env() -> bool:
    """The ``REPRO_INDEX_INCR`` escape hatch: incremental maintenance
    is on by default; ``off`` forces the eager full rebuild on every
    update (the pre-incremental behaviour, kept as a safety valve and
    as the differential twin for the equivalence tests)."""
    value = os.environ.get("REPRO_INDEX_INCR", "").strip().lower()
    if value in _OFF_VALUES:
        return False
    return True


@dataclass(frozen=True)
class IndexContext:
    """A document's index statistics, as the planner consumes them.

    ``fingerprint`` keys compiled plans: it changes exactly when the
    statistics behind a cost decision change (stats refresh, rebuild),
    so the plan cache can never serve a plan justified by statistics
    that no longer exist.
    """

    doc: int
    stats_version: int
    node_count: int
    element_count: int
    max_depth: int
    path_count: int
    updates_since: int
    tag_counts: Mapping[str, int] = field(default_factory=dict)
    distinct_counts: Mapping[str, int] = field(default_factory=dict)
    depth_histogram: Mapping[int, int] = field(default_factory=dict)

    @property
    def fingerprint(self) -> tuple[int, int]:
        return (self.doc, self.stats_version)

    def tag_count(self, tag: Optional[str]) -> int:
        """Elements with *tag* (``None`` = wildcard: every element)."""
        if tag is None:
            return self.element_count
        return int(self.tag_counts.get(tag, 0))

    def distinct_count(self, tag: Optional[str]) -> int:
        if tag is None:
            return max(self.element_count, 1)
        return int(self.distinct_counts.get(tag, 1))


class IndexManager:
    """Create, drop, maintain and describe per-document indexes."""

    def __init__(self, store: "XmlStore") -> None:
        self.store = store
        #: Per-store override of the ``REPRO_INDEX`` mode; the
        #: differential harnesses use it to pin one store of a twin
        #: pair to ``on`` and the other to ``off`` within one process.
        self.force_mode: Optional[str] = None
        #: Per-store override of ``REPRO_INDEX_INCR``; the equivalence
        #: tests pin one store of a twin pair to incremental and the
        #: other to eager within one process.
        self.force_incremental: Optional[bool] = None
        #: Per-store override of :data:`INCR_FALLBACK_FRACTION`
        #: (tests raise it to 1.0 to keep tiny documents on the
        #: incremental path).
        self.fallback_fraction: Optional[float] = None
        # context() memo: doc -> (cache epoch, IndexContext | None).
        self._contexts: dict[int, tuple[int, Optional[IndexContext]]] = {}

    # -- mode --------------------------------------------------------------

    def mode(self) -> str:
        if self.force_mode is not None:
            return self.force_mode
        return index_mode_from_env()

    def incremental(self) -> bool:
        """Is incremental maintenance enabled for this store?"""
        if self.force_incremental is not None:
            return self.force_incremental
        return index_incremental_from_env()

    def auto_create(self) -> bool:
        """Should loads build the index implicitly (mode ``on``)?"""
        return self.mode() == "on"

    # -- presence ----------------------------------------------------------

    def exists(self, doc: int) -> bool:
        result = self.store._execute(
            "SELECT value FROM idx_stats "
            "WHERE doc = ? AND kind = 'meta' AND skey = 'present'",
            (doc,),
        )
        return bool(result.rows)

    # -- lifecycle ---------------------------------------------------------

    def create(self, doc: int) -> dict:
        """(Re)build *doc*'s indexes and statistics; returns a report."""
        self.store.document_info(doc)  # raises StorageError if unknown

        def build() -> dict:
            survey = self._rebuild_rows(doc)
            meta = self._read_meta(doc)
            version = int(meta.get("stats_version", 0)) + 1
            self._write_stats(doc, survey, version)
            return {
                "doc": doc,
                "elements": survey["element_count"],
                "paths": survey["path_count"],
                "nodes": survey["node_count"],
                "stats_version": version,
            }

        report = self.store.transactionally(build)
        METRICS.inc("index.created")
        METRICS.inc("index.rows", report["elements"])
        return report

    def drop(self, doc: int) -> bool:
        """Remove *doc*'s index rows; True if an index was present."""
        present = self.exists(doc)

        def purge() -> None:
            self.purge_in_transaction(doc)

        self.store.transactionally(purge)
        if present:
            METRICS.inc("index.dropped")
        return present

    def purge_in_transaction(self, doc: int) -> None:
        """Delete every ``idx_*`` row of *doc* (caller owns the txn)."""
        backend = self.store.backend
        for table in ("idx_sval", "idx_paths", "idx_pathmap", "idx_stats"):
            backend.execute(f"DELETE FROM {table} WHERE doc = ?", (doc,))

    def _purge_data_in_transaction(self, doc: int) -> None:
        """Delete *doc*'s index data rows, keeping ``idx_stats``."""
        backend = self.store.backend
        for table in ("idx_sval", "idx_paths", "idx_pathmap"):
            backend.execute(f"DELETE FROM {table} WHERE doc = ?", (doc,))

    def refresh_stats(self, doc: int) -> dict:
        """Recompute *doc*'s statistics unconditionally.

        A stats refresh surveys the live document and replaces only the
        ``idx_stats`` rows — the data rows are already maintained by
        every update and are left untouched (``create`` is the
        rebuild-everything path, and is still used when no index exists
        yet).  Counts ``index.stats_refreshed``, never
        ``index.created``.
        """
        self.store.document_info(doc)  # raises StorageError if unknown
        if not self.exists(doc):
            return self.create(doc)

        def refresh() -> dict:
            survey = self._survey(doc)
            meta = self._read_meta(doc)
            version = int(meta.get("stats_version", 0)) + 1
            self._write_stats(doc, survey, version)
            return {
                "doc": doc,
                "elements": survey["element_count"],
                "paths": survey["path_count"],
                "nodes": survey["node_count"],
                "stats_version": version,
            }

        report = self.store.transactionally(refresh)
        METRICS.inc("index.stats_refreshed")
        return report

    # -- in-transaction maintenance ---------------------------------------

    def maintain_in_transaction(self, doc: int, report=None) -> None:
        """Bring *doc*'s index rows up to date after an update.

        Runs inside the update's own transaction (called from the
        update manager's outermost tracked scope), so the index can
        never be observed out of step with the node tables: a crash
        rolls both back together.

        *report* is the outermost operation's
        :class:`~repro.core.updates.UpdateReport` carrying the touched
        set.  When incremental maintenance is enabled and the report
        accounts exactly for what it touched, only the affected rows
        are repaired (``index.incremental``); otherwise — no report,
        inexact accounting, or a touched set past the fallback budget —
        the eager full rebuild runs (``index.fallback_rebuild``).  A
        zero-row no-op (removing an absent attribute, an empty batch
        entry) skips maintenance entirely: no row writes, no
        ``updates_since`` bump.

        Statistics refresh only when the update counter crosses the
        threshold; in between, the recorded statistics go stale on
        purpose (see :meth:`stats_stale`).
        """
        if report is not None and report.rows_touched() == 0:
            return
        if not self._present_in_transaction(doc):
            return
        survey = None
        applied = False
        if (
            self.incremental()
            and report is not None
            and report.index_exact
        ):
            applied = self._apply_delta_in_transaction(doc, report)
            if applied:
                METRICS.inc("index.incremental")
            else:
                METRICS.inc("index.fallback_rebuild")
        if not applied:
            survey = self._rebuild_rows(doc)
        meta = self._read_meta(doc)
        updates = int(meta.get("updates_since", 0)) + 1
        version = int(meta.get("stats_version", 1))
        if updates >= STATS_REFRESH_THRESHOLD:
            if survey is None:
                survey = self._survey(doc)
            self._write_stats(doc, survey, version + 1)
            METRICS.inc("index.stats_refreshed")
        else:
            self._set_meta(doc, "updates_since", updates)
        METRICS.inc("index.maintained")

    def _present_in_transaction(self, doc: int) -> bool:
        result = self.store.backend.execute(
            "SELECT value FROM idx_stats "
            "WHERE doc = ? AND kind = 'meta' AND skey = 'present'",
            (doc,),
        )
        return bool(result.rows)

    # -- staleness ---------------------------------------------------------

    def stats_stale(self, doc: int) -> bool:
        """Have the recorded statistics drifted from the live document?

        Two triggers: the update counter reached the refresh threshold
        (refresh pending), or the document has deepened past the depth
        recorded at the last refresh — the drift that silently skews
        path-index estimates.
        """
        meta = self._read_meta(doc)
        if not meta:
            return False
        if int(meta.get("updates_since", 0)) >= STATS_REFRESH_THRESHOLD:
            return True
        recorded_depth = meta.get("max_depth")
        if recorded_depth is None:
            # Lost or absent depth meta must read as stale, not as
            # "matches whatever the live document says".
            return True
        live = self.store.document_info(doc)
        return live.max_depth > int(recorded_depth)

    # -- planner interface -------------------------------------------------

    def context(self, doc: int) -> Optional[IndexContext]:
        """The planner's view of *doc*'s index, or ``None``.

        ``None`` means compile scan plans: mode ``off``, or no index
        present (mode ``on`` builds one on first use so pre-existing
        stores pick indexes up without a reload).  Memoized per cache
        epoch — the same epoch discipline as the plan cache itself.
        """
        mode = self.mode()
        if mode == "off":
            return None
        cache = self.store.cache
        memo_ok = cache.enabled and not self.store._in_own_transaction()
        if memo_ok:
            epoch = cache.current_epoch()
            hit = self._contexts.get(doc)
            if hit is not None and hit[0] == epoch:
                return hit[1]
        ctx = self._load_context(doc)
        if ctx is None and mode == "on":
            self.create(doc)
            ctx = self._load_context(doc)
        if memo_ok:
            # Re-read the epoch: create() above bumped it.
            self._contexts[doc] = (cache.current_epoch(), ctx)
        return ctx

    def _load_context(self, doc: int) -> Optional[IndexContext]:
        result = self.store._execute(
            "SELECT kind, skey, value FROM idx_stats WHERE doc = ?",
            (doc,),
        )
        if not result.rows:
            return None
        meta: dict[str, str] = {}
        tags: dict[str, int] = {}
        distinct: dict[str, int] = {}
        depths: dict[int, int] = {}
        for kind, skey, value in result.rows:
            if kind == "meta":
                meta[skey] = value
            elif kind == "tag":
                tags[skey] = int(value)
            elif kind == "distinct":
                distinct[skey] = int(value)
            elif kind == "depth":
                depths[int(skey)] = int(value)
        if "present" not in meta:
            return None
        ctx = IndexContext(
            doc=doc,
            stats_version=int(meta.get("stats_version", 1)),
            node_count=int(meta.get("node_count", 0)),
            element_count=int(meta.get("element_count", 0)),
            max_depth=int(meta.get("max_depth", 0)),
            path_count=int(meta.get("path_count", 0)),
            updates_since=int(meta.get("updates_since", 0)),
            tag_counts=tags,
            distinct_counts=distinct,
            depth_histogram=depths,
        )
        if self.stats_stale(doc):
            METRICS.inc("index.stale_stats")
        return ctx

    # -- CLI / reporting ---------------------------------------------------

    def describe(self, doc: int) -> dict:
        """A JSON-friendly summary of *doc*'s index state."""
        ctx = self._load_context(doc)
        if ctx is None:
            return {"doc": doc, "present": False}
        return {
            "doc": doc,
            "present": True,
            "stats_version": ctx.stats_version,
            "node_count": ctx.node_count,
            "element_count": ctx.element_count,
            "max_depth": ctx.max_depth,
            "path_count": ctx.path_count,
            "updates_since": ctx.updates_since,
            "stale": self.stats_stale(doc),
            "maintenance": (
                "incremental" if self.incremental() else "eager"
            ),
            "tags": dict(
                sorted(ctx.tag_counts.items(),
                       key=lambda kv: (-kv[1], kv[0]))[:10]
            ),
        }

    # -- the build pass ----------------------------------------------------

    def _scan_document(self, doc: int) -> tuple[dict, list, dict, dict]:
        """One full pass over *doc*'s node table (txn caller-owned).

        Children sorted by the encoding's sibling-order column, a
        preorder walk assigning root paths and a reverse-preorder pass
        accumulating XPath string-values (every descendant sits after
        its ancestor in preorder, so reversed preorder sees children
        before parents).  Iterative throughout — document depth must
        not be bounded by the Python stack.

        The path dictionary is seeded from the stored ``idx_paths``
        rows and only ever appended to: path ids are stable across
        rebuilds (orphaned paths are retained — a probe for one simply
        finds no occurrences), which keeps eager and incremental
        maintenance byte-identical.

        Returns ``(survey, sval_rows, paths, node_path)``.
        """
        backend = self.store.backend
        encoding = self.store.encoding_for(doc)
        table = encoding.node_table.name
        order = encoding.sibling_order_column
        rows = backend.execute(
            f"SELECT id, parent, kind, tag, value, depth, {order} "
            f"FROM {table} WHERE doc = ?",
            (doc,),
        ).rows
        nodes: dict[int, tuple] = {}
        children: dict[int, list] = {}
        for node_id, parent, kind, tag, value, depth, okey in rows:
            nodes[node_id] = (parent, kind, tag, value, depth)
            children.setdefault(parent, []).append((okey, node_id))
        for siblings in children.values():
            siblings.sort(key=lambda pair: pair[0])

        preorder: list[int] = []
        paths = self._load_paths(doc)
        node_path: dict[int, int] = {}
        stack = [
            (node_id, "")
            for _okey, node_id in reversed(children.get(0, []))
        ]
        while stack:
            node_id, parent_path = stack.pop()
            preorder.append(node_id)
            _parent, kind, tag, _value, _depth = nodes[node_id]
            child_path = parent_path
            if kind == KIND_ELEMENT:
                child_path = f"{parent_path}/{tag}"
                pathid = paths.setdefault(child_path, len(paths) + 1)
                node_path[node_id] = pathid
            for _okey, child in reversed(children.get(node_id, [])):
                stack.append((child, child_path))

        svals: dict[int, str] = {}
        for node_id in reversed(preorder):
            _parent, kind, _tag, value, _depth = nodes[node_id]
            if kind == KIND_TEXT:
                svals[node_id] = value or ""
            elif kind == KIND_ELEMENT:
                svals[node_id] = "".join(
                    svals[child]
                    for _okey, child in children.get(node_id, [])
                )
            else:  # comments and PIs contribute nothing upward
                svals[node_id] = ""

        tag_counts: Counter = Counter()
        depth_histogram: Counter = Counter()
        tag_values: dict[str, set] = {}
        sval_rows = []
        max_depth = 0
        for node_id in preorder:
            parent, kind, tag, _value, depth = nodes[node_id]
            max_depth = max(max_depth, depth)
            if kind != KIND_ELEMENT:
                continue
            sval = svals[node_id]
            sval_rows.append(
                (doc, node_id, parent, tag, sval,
                 xpath_number_value(sval))
            )
            tag_counts[tag] += 1
            depth_histogram[depth] += 1
            tag_values.setdefault(tag, set()).add(sval)

        survey = {
            "node_count": len(rows),
            "element_count": len(sval_rows),
            "path_count": len(paths),
            "max_depth": max_depth,
            "tag_counts": tag_counts,
            "depth_histogram": depth_histogram,
            "distinct_counts": {
                tag: len(values) for tag, values in tag_values.items()
            },
        }
        return survey, sval_rows, paths, node_path

    def _survey(self, doc: int) -> dict:
        """Survey *doc* without touching any rows (txn caller-owned)."""
        survey, _sval_rows, _paths, _node_path = self._scan_document(doc)
        return survey

    def _rebuild_rows(self, doc: int) -> dict:
        """Recompute every ``idx_*`` data row of *doc* (txn caller-owned)."""
        backend = self.store.backend
        survey, sval_rows, paths, node_path = self._scan_document(doc)
        self._purge_data_in_transaction(doc)
        backend.executemany(
            "INSERT INTO idx_sval VALUES (?, ?, ?, ?, ?, ?)", sval_rows
        )
        backend.executemany(
            "INSERT INTO idx_paths VALUES (?, ?, ?)",
            ((doc, pathid, path) for path, pathid in paths.items()),
        )
        backend.executemany(
            "INSERT INTO idx_pathmap VALUES (?, ?, ?)",
            (
                (doc, pathid, node_id)
                for node_id, pathid in node_path.items()
            ),
        )
        METRICS.inc(
            "index.row_writes",
            len(sval_rows) + len(paths) + len(node_path),
        )
        return survey

    # -- incremental maintenance -------------------------------------------

    def _apply_delta_in_transaction(self, doc: int, report) -> bool:
        """Repair *doc*'s index rows from an update's touched set.

        Three steps, mirroring the tentpole contract: (a) drop
        ``idx_sval``/``idx_pathmap`` rows for removed and reshredded
        ids, (b) shred each new subtree via the encoding's
        descendant-range scan against the append-only path dictionary,
        (c) recompute aggregated string-values bottom-up along the
        anchors' root paths only.

        Returns ``False`` when the delta should not (fallback budget
        exceeded) or cannot (bookkeeping hole) be applied piecewise;
        the caller then runs the eager rebuild, which purges everything
        this method may already have written — bailing out is safe at
        any point.
        """
        from repro.core.reconstruct import fetch_subtree_rows

        backend = self.store.backend
        info = self.store.document_info(doc)
        fraction = (
            self.fallback_fraction
            if self.fallback_fraction is not None
            else INCR_FALLBACK_FRACTION
        )
        budget = max(1.0, info.node_count * fraction)
        # Relabels are excluded: the idx_* tables carry no order
        # columns, so renumbering leaves every index row valid.
        removed = dict.fromkeys(report.removed_ids)
        invalidated = len(removed)
        if invalidated > budget:
            return False

        # Collect the subtrees to (re)shred, skipping roots a later op
        # in the same transaction deleted and roots nested inside an
        # earlier root's subtree.
        encoding = self.store.encoding_for(doc)
        order = encoding.sibling_order_column
        subtrees: list[list[dict]] = []
        covered: set[int] = set()
        for root_id in dict.fromkeys(report.reshred_roots):
            if root_id in covered or root_id in removed:
                continue
            root_row = self.store.fetch_node(doc, root_id)
            if root_row is None:
                continue
            rows = [
                root_row, *fetch_subtree_rows(self.store, doc, root_row)
            ]
            covered.update(r["id"] for r in rows)
            subtrees.append(rows)
            invalidated += len(rows)
            if invalidated > budget:
                return False

        # (a) Drop the stale rows.
        stale_ids = [*removed, *covered]
        for table in ("idx_sval", "idx_pathmap"):
            for start in range(0, len(stale_ids), _ID_BATCH):
                batch = stale_ids[start:start + _ID_BATCH]
                marks = ", ".join("?" for _ in batch)
                backend.execute(
                    f"DELETE FROM {table} "
                    f"WHERE doc = ? AND id IN ({marks})",
                    (doc, *batch),
                )

        # (b) Shred the new subtrees.
        paths = self._load_paths(doc)
        path_names = {pathid: path for path, pathid in paths.items()}
        fresh_paths: list[tuple] = []
        sval_rows: list[tuple] = []
        pathmap_rows: list[tuple] = []
        for rows in subtrees:
            root_row = rows[0]
            parent_path = self._indexed_path(
                doc, root_row["parent"], path_names
            )
            if parent_path is None:
                return False
            nodes = {r["id"]: r for r in rows}
            children: dict[int, list[dict]] = {}
            for row in rows[1:]:
                children.setdefault(row["parent"], []).append(row)
            for siblings in children.values():
                siblings.sort(key=lambda r: r[order])
            preorder: list[int] = []
            node_path: dict[int, int] = {}
            stack = [(root_row["id"], parent_path)]
            while stack:
                node_id, above = stack.pop()
                preorder.append(node_id)
                row = nodes[node_id]
                child_path = above
                if row["kind"] == KIND_ELEMENT:
                    # Subtree preorder is document preorder restricted
                    # to the subtree, so first-encounter allocation
                    # assigns the same fresh path ids an eager rebuild
                    # would.
                    child_path = f"{above}/{row['tag']}"
                    pathid = paths.get(child_path)
                    if pathid is None:
                        pathid = len(paths) + 1
                        paths[child_path] = pathid
                        fresh_paths.append((doc, pathid, child_path))
                    node_path[node_id] = pathid
                for child in reversed(children.get(node_id, [])):
                    stack.append((child["id"], child_path))
            svals: dict[int, str] = {}
            for node_id in reversed(preorder):
                row = nodes[node_id]
                if row["kind"] == KIND_TEXT:
                    svals[node_id] = row["value"] or ""
                elif row["kind"] == KIND_ELEMENT:
                    svals[node_id] = "".join(
                        svals[child["id"]]
                        for child in children.get(node_id, [])
                    )
                else:
                    svals[node_id] = ""
            for node_id in preorder:
                row = nodes[node_id]
                if row["kind"] != KIND_ELEMENT:
                    continue
                sval = svals[node_id]
                sval_rows.append(
                    (doc, node_id, row["parent"], row["tag"], sval,
                     xpath_number_value(sval))
                )
                pathmap_rows.append((doc, node_path[node_id], node_id))
        backend.executemany(
            "INSERT INTO idx_sval VALUES (?, ?, ?, ?, ?, ?)", sval_rows
        )
        backend.executemany(
            "INSERT INTO idx_paths VALUES (?, ?, ?)", fresh_paths
        )
        backend.executemany(
            "INSERT INTO idx_pathmap VALUES (?, ?, ?)", pathmap_rows
        )

        # (c) Repair aggregated string-values along the anchors' root
        # paths.  Collect every chain node first, then recompute in
        # decreasing-depth order so a shared ancestor is computed once,
        # after all of its repaired descendants.
        chain: dict[int, dict] = {}
        for anchor in dict.fromkeys(report.sval_anchors):
            node_id = anchor
            while node_id and node_id not in chain:
                row = self.store.fetch_node(doc, node_id)
                if row is None:
                    break
                chain[node_id] = row
                node_id = row["parent"]
        repaired = 0
        ordered = sorted(
            chain.items(), key=lambda item: -item[1]["depth"]
        )
        for node_id, row in ordered:
            if row["kind"] != KIND_ELEMENT:
                continue
            sval = self._compose_sval(doc, node_id)
            if sval is None:
                return False
            backend.execute(
                "UPDATE idx_sval SET sval = ?, nval = ? "
                "WHERE doc = ? AND id = ?",
                (sval, xpath_number_value(sval), doc, node_id),
            )
            repaired += 1

        METRICS.inc(
            "index.row_writes",
            len(stale_ids) + len(sval_rows) + len(fresh_paths)
            + len(pathmap_rows) + repaired,
        )
        return True

    def _compose_sval(self, doc: int, element_id: int) -> Optional[str]:
        """An element's string-value from its children's current index
        rows (texts contribute their value, elements their stored
        ``sval``).  ``None`` signals a bookkeeping hole — a child
        element with no index row — which forces the eager fallback."""
        backend = self.store.backend
        children = self.store.fetch_children(doc, element_id)
        element_ids = [
            child["id"] for child in children
            if child["kind"] == KIND_ELEMENT
        ]
        svals: dict[int, str] = {}
        for start in range(0, len(element_ids), _ID_BATCH):
            batch = element_ids[start:start + _ID_BATCH]
            marks = ", ".join("?" for _ in batch)
            result = backend.execute(
                f"SELECT id, sval FROM idx_sval "
                f"WHERE doc = ? AND id IN ({marks})",
                (doc, *batch),
            )
            svals.update(dict(result.rows))
        parts: list[str] = []
        for child in children:
            if child["kind"] == KIND_TEXT:
                parts.append(child["value"] or "")
            elif child["kind"] == KIND_ELEMENT:
                if child["id"] not in svals:
                    return None
                parts.append(svals[child["id"]])
        return "".join(parts)

    def _indexed_path(
        self, doc: int, node_id: int, path_names: dict[int, str]
    ) -> Optional[str]:
        """The stored rooted path of *node_id* (``""`` for the document
        node), or ``None`` when its occurrence row is missing."""
        if node_id == 0:
            return ""
        result = self.store.backend.execute(
            "SELECT pathid FROM idx_pathmap WHERE doc = ? AND id = ?",
            (doc, node_id),
        )
        if not result.rows:
            return None
        return path_names.get(result.rows[0][0])

    def _load_paths(self, doc: int) -> dict[str, int]:
        """The stored path dictionary, insertion-ordered by path id
        (ids are allocated contiguously from 1, so ``len(paths) + 1``
        is always the next free id)."""
        result = self.store.backend.execute(
            "SELECT pathid, path FROM idx_paths "
            "WHERE doc = ? ORDER BY pathid",
            (doc,),
        )
        return {path: pathid for pathid, path in result.rows}

    # -- statistics rows ---------------------------------------------------

    def _write_stats(self, doc: int, survey: dict, version: int) -> None:
        """Replace *doc*'s statistics rows (txn caller-owned)."""
        backend = self.store.backend
        backend.execute("DELETE FROM idx_stats WHERE doc = ?", (doc,))
        meta_rows = [
            (doc, "meta", "present", "1"),
            (doc, "meta", "stats_version", str(version)),
            (doc, "meta", "node_count", str(survey["node_count"])),
            (doc, "meta", "element_count",
             str(survey["element_count"])),
            (doc, "meta", "path_count", str(survey["path_count"])),
            (doc, "meta", "max_depth", str(survey["max_depth"])),
            (doc, "meta", "updates_since", "0"),
        ]
        meta_rows.extend(
            (doc, "tag", tag, str(count))
            for tag, count in survey["tag_counts"].items()
        )
        meta_rows.extend(
            (doc, "distinct", tag, str(count))
            for tag, count in survey["distinct_counts"].items()
        )
        meta_rows.extend(
            (doc, "depth", str(depth), str(count))
            for depth, count in survey["depth_histogram"].items()
        )
        backend.executemany(
            "INSERT INTO idx_stats VALUES (?, ?, ?, ?)", meta_rows
        )

    def _read_meta(self, doc: int) -> dict[str, str]:
        result = self.store.backend.execute(
            "SELECT skey, value FROM idx_stats "
            "WHERE doc = ? AND kind = 'meta'",
            (doc,),
        )
        return {skey: value for skey, value in result.rows}

    def _set_meta(self, doc: int, skey: str, value) -> None:
        self.store.backend.execute(
            "UPDATE idx_stats SET value = ? "
            "WHERE doc = ? AND kind = 'meta' AND skey = ?",
            (str(value), doc, skey),
        )
