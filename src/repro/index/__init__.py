"""Per-document secondary indexes over the shredded node tables.

Three index families (see DESIGN.md, "Indexing"):

* the **value index** — element string-values, probed by rewritten
  value predicates;
* the **path index** — the root-path dictionary plus occurrences,
  probed by rewritten structural queries;
* **catalog statistics** — tag counts, depth histograms and
  distinct-value estimates feeding the scan-vs-index cost model.

``REPRO_INDEX`` (``on`` / ``off`` / unset = ``auto``) is the escape
hatch the differential plan-testing harness flips: index-on and
index-off runs of the same query must return byte-identical results.
``REPRO_INDEX_INCR`` (on unless ``off``) picks between incremental
maintenance from each update's touched set and the eager
rebuild-everything fallback; the two must produce byte-identical
``idx_*`` tables.
"""

from repro.index.advisor import (
    IndexAdvisor,
    IndexRecommendation,
    is_indexable_xpath,
)
from repro.index.cost import (
    INDEX_PROBE_COST,
    PATH_INDEX,
    SCAN,
    VALUE_INDEX,
    PlanChoice,
    choose_path_plan,
    choose_value_plan,
    estimate_value_matches,
)
from repro.index.manager import (
    INCR_FALLBACK_FRACTION,
    STATS_REFRESH_THRESHOLD,
    IndexContext,
    IndexManager,
    index_incremental_from_env,
    index_mode_from_env,
)

__all__ = [
    "INCR_FALLBACK_FRACTION",
    "INDEX_PROBE_COST",
    "PATH_INDEX",
    "SCAN",
    "STATS_REFRESH_THRESHOLD",
    "VALUE_INDEX",
    "IndexAdvisor",
    "IndexContext",
    "IndexManager",
    "IndexRecommendation",
    "PlanChoice",
    "choose_path_plan",
    "choose_value_plan",
    "estimate_value_matches",
    "index_incremental_from_env",
    "index_mode_from_env",
    "is_indexable_xpath",
]
