"""Deterministic scan-vs-index cost model.

The model mirrors the textbook System-R shape at paper scale: a scan
pays a constant per node row it must visit, an index access pays a
fixed probe overhead plus one unit per row the index is estimated to
return.  All inputs come from the catalog statistics collected at index
build time (:mod:`repro.index.manager`), so the same statistics produce
the same plan on both backends — the choice is part of the compiled
plan, not of the engine.

The constants are deliberately plain integers: the unit tests pin the
decision on both sides of each crossover, and any retuning must move
the pinned points consciously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Fixed cost of one index access: B-tree descent plus row fetch setup.
INDEX_PROBE_COST = 24.0

#: Per-row cost of scanning the node table (the unit of the model).
SCAN_ROW_COST = 1.0

#: Per-row cost of reading an index entry (sorted side table probe).
INDEX_ROW_COST = 1.0

#: Access-path labels recorded on compiled plans.
SCAN = "scan"
VALUE_INDEX = "value-index"
PATH_INDEX = "path-index"


@dataclass(frozen=True)
class PlanChoice:
    """One scan-vs-index decision with the numbers behind it."""

    access_path: str  # SCAN | VALUE_INDEX | PATH_INDEX
    index_names: tuple[str, ...]
    est_rows: Optional[int]
    scan_cost: float
    index_cost: float

    @property
    def use_index(self) -> bool:
        return self.access_path != SCAN


def estimate_value_matches(tag_count: int, distinct: int) -> int:
    """Estimated elements of a tag matching one literal value.

    The classic uniformity assumption: tag cardinality divided by the
    distinct-value estimate, never below one when any row exists.
    """
    if tag_count <= 0:
        return 0
    return max(1, round(tag_count / max(distinct, 1)))


def choose_value_plan(
    node_count: int, tag_count: int, distinct: int
) -> PlanChoice:
    """Value predicate ``[tag = literal]``: string-value scan vs
    ``idx_sval`` probe.

    The scan side re-aggregates descendant text per candidate — its
    cost scales with the whole node table — while the index side probes
    ``(doc, parent, tag, sval)`` and touches only the estimated
    matches.  Tiny documents stay below the probe overhead and keep the
    scan plan.
    """
    matches = estimate_value_matches(tag_count, distinct)
    scan_cost = SCAN_ROW_COST * max(node_count, 1)
    index_cost = INDEX_PROBE_COST + INDEX_ROW_COST * matches
    if index_cost < scan_cost:
        return PlanChoice(
            VALUE_INDEX, ("ix_idx_sval_parent",), matches,
            scan_cost, index_cost,
        )
    return PlanChoice(SCAN, (), None, scan_cost, index_cost)


def choose_path_plan(
    node_count: int,
    step_count: int,
    path_count: int,
    est_rows: int,
) -> PlanChoice:
    """Structural path ``/a//b``: per-step self-joins vs path index.

    The scan side pays one pass over the node table per location step;
    the index side pattern-matches the (small) path dictionary once and
    then fetches exactly the occurrence rows.
    """
    scan_cost = SCAN_ROW_COST * max(node_count, 1) * max(step_count, 1)
    index_cost = (
        INDEX_PROBE_COST
        + INDEX_ROW_COST * max(path_count, 0)
        + INDEX_ROW_COST * max(est_rows, 0)
    )
    if index_cost < scan_cost:
        return PlanChoice(
            PATH_INDEX, ("ux_idx_paths", "ix_idx_pathmap"), est_rows,
            scan_cost, index_cost,
        )
    return PlanChoice(SCAN, (), None, scan_cost, index_cost)
