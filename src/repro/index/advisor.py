"""The index advisor: when (and where) to build secondary indexes.

Mirrors the migration advisor's shape: a deterministic rule over the
observability counters plus the slow-query log.  The signal is *missed
opportunity*: ``index.miss`` counts query compilations that were
eligible for an index rewrite but found no index on the document, and
slow-log entries whose XPath carries an indexable shape (a ``//``
descendant step or a value predicate) corroborate it.  Past
``min_samples`` combined signals the advisor recommends building
indexes on every unindexed document; if everything is indexed but some
document's statistics have gone stale (deepening inserts, update
counter at threshold), it recommends a refresh instead.

``repro index --advise`` prints the decision; ``--auto`` acts on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


#: XPath fragments that mark a query as indexable for mining purposes.
_INDEXABLE_MARKS = ("//", "=", "<", ">", "contains(", "starts-with(")


def is_indexable_xpath(xpath: str) -> bool:
    """Would *xpath* plausibly benefit from the path or value index?"""
    return any(mark in xpath for mark in _INDEXABLE_MARKS)


@dataclass(frozen=True)
class IndexRecommendation:
    """The advisor's verdict for one store."""

    #: "create", "refresh", or "hold".
    action: str
    #: Document ids the action targets (empty when holding).
    documents: tuple[int, ...]
    #: Human-readable justification.
    reason: str
    #: Combined signals (misses + indexable slow queries) observed.
    samples: int

    @property
    def act(self) -> bool:
        return self.action != "hold"


class IndexAdvisor:
    """Deterministic threshold rule over counters and the slow log.

    Parameters
    ----------
    min_samples:
        Combined signals (eligible-but-unindexed compilations plus
        indexable slow queries) required before recommending anything —
        a cold store holds.
    """

    def __init__(self, min_samples: int = 5) -> None:
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.min_samples = min_samples

    def decide(
        self,
        counters: Mapping[str, int],
        unindexed: Sequence[int],
        stale: Sequence[int] = (),
        slow_xpaths: Iterable[str] = (),
    ) -> IndexRecommendation:
        """Decide for a store.

        *counters* is a flat counter mapping — either
        ``METRICS.snapshot()["counters"]`` or the snapshot dict itself
        (the ``counters`` key is unwrapped when present).  *unindexed*
        and *stale* list document ids without an index and with stale
        statistics respectively; *slow_xpaths* are the XPath strings of
        the slow-query log.
        """
        inner = counters.get("counters")
        if isinstance(inner, Mapping):
            counters = inner
        misses = int(counters.get("index.miss", 0))
        slow_hits = sum(1 for x in slow_xpaths if is_indexable_xpath(x))
        samples = misses + slow_hits

        if not unindexed:
            if stale:
                return IndexRecommendation(
                    action="refresh", documents=tuple(stale),
                    reason=(
                        f"every document is indexed but {len(stale)} "
                        f"have stale statistics; refresh realigns the "
                        f"cost model"
                    ),
                    samples=samples,
                )
            return IndexRecommendation(
                action="hold", documents=(),
                reason="every document is indexed and statistics are "
                       "fresh",
                samples=samples,
            )

        if samples < self.min_samples:
            return IndexRecommendation(
                action="hold", documents=(),
                reason=(
                    f"only {samples} indexable signal(s) "
                    f"({misses} unindexed compilations, {slow_hits} "
                    f"indexable slow queries), need >= "
                    f"{self.min_samples}"
                ),
                samples=samples,
            )

        return IndexRecommendation(
            action="create", documents=tuple(unindexed),
            reason=(
                f"{misses} eligible compilations found no index and "
                f"{slow_hits} slow queries look indexable; "
                f"{len(unindexed)} document(s) lack indexes"
            ),
            samples=samples,
        )
