"""Online, crash-safe re-encoding of one live document.

``migrate_document`` converts a document between order encodings
(global / local / dewey / ordpath, including their sparse-gap variants)
while the store keeps serving reads and writes.  The staged state
machine:

``START``
    create the shadow tables (``mig_`` + the target encoding's tables)
    and the target encoding's real tables, then install the migration
    state — from that point every committed update against the
    document is journalled (see :mod:`repro.migrate.journal`).
``SNAPSHOT``
    one transaction: drop journal entries that pre-date the snapshot,
    then read the document's catalogue row and every node/attribute
    row of the source encoding.
``COPY``
    convert the snapshot to target-encoding rows (one DFS recomputes
    ranks / sibling indexes / Dewey paths from the source order
    columns) and insert them into the shadow tables in bounded
    batches, each batch its own transaction.
``REPLAY``
    drain the journal in rounds and apply each entry through a shadow
    store facade — a real :class:`~repro.store.XmlStore` update
    manager pointed at the shadow tables, so replayed operations
    allocate the same surrogate ids the live operations did.
``CUTOVER``
    one transaction: replay the remaining journal entries, check the
    shadow converged (identical ``next_id`` / ``node_count``), copy
    the shadow rows into the target encoding's real tables, delete the
    source rows, and swap the catalogue's ``encoding`` column.
``CLEANUP``
    post-commit: bump the store's migration epoch (in-flight queries
    re-run), drop the shadow tables, clear the migration state.

Crash safety: nothing outside the shadow tables changes until the
single cutover transaction commits, and the shadow tables are dropped
by :meth:`~repro.store.XmlStore._recover_shadow_state` on the next
open.  A crash at *any* statement boundary therefore recovers to
exactly the pre-migration store (cutover not committed) or exactly the
post-migration store (cutover committed, orphan shadow copies
dropped) — never a hybrid.

Concurrency: stages run through :meth:`XmlStore.transactionally`, so
they are serialized with live writers by whatever serializes the store
(the shared connection's lock, the write queue's single writer thread,
or WAL's single-writer rule).  A live update that cannot be replayed
safely — journal overflow, or a commit failure after its journal entry
was promoted — aborts the migration instead; the live document is
never at risk.  (A pooled backend *without* a write queue does not
serialize writers against the snapshot and is not supported for
migration.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.cache import StoreCache
from repro.core.encodings import OrderEncoding, get_encoding
from repro.core.schema import documents_table, shadow_table
from repro.core.shredder import ShreddedNode
from repro.errors import MigrationAborted, MigrationError
from repro.migrate.journal import MigrationJournal
from repro.obs import METRICS, span
from repro.store import XmlStore, _is_already_exists


@dataclass
class MigrationState:
    """In-flight migration bookkeeping, hung on the live store."""

    doc: int
    source: OrderEncoding
    target: OrderEncoding
    journal: MigrationJournal


@dataclass
class MigrationReport:
    """What one ``migrate_document`` call did."""

    doc: int
    source: str
    target: str
    outcome: str = "migrated"  # "migrated" | "noop"
    rows_copied: int = 0
    attrs_copied: int = 0
    journal_replayed: int = 0
    replay_rounds: int = 0


class _ShadowEncoding(OrderEncoding):
    """The target encoding with its tables renamed ``mig_*``.

    Delegates every order computation to the real target singleton, so
    shadow rows carry exactly the values the target's real tables will
    receive at cutover.
    """

    def __init__(self, target: OrderEncoding) -> None:
        self._target = target
        self.name = target.name
        self.node_table = shadow_table(target.node_table)
        self.attr_table = shadow_table(target.attr_table)
        self.order_columns = target.order_columns
        self.order_by_column = target.order_by_column
        self.sibling_order_column = target.sibling_order_column

    def order_values(self, node: ShreddedNode, gap: int) -> tuple:
        return self._target.order_values(node, gap)


class _ShadowStore(XmlStore):
    """An :class:`XmlStore` facade over the shadow tables.

    Shares the live store's backend (so shadow writes join the same
    transactions and locks) but resolves every table through the
    shadow encoding and serves the catalogue from an in-memory overlay
    — the real ``documents`` row belongs to the live document.  The
    update manager then works on it verbatim, which is what makes
    journal replay allocate the same surrogate ids as the live
    operations: both run the identical code over identical catalogue
    state.
    """

    is_shadow = True

    def __init__(
        self, base: XmlStore, encoding: _ShadowEncoding, info
    ) -> None:
        # Deliberately no super().__init__(): the backend is shared and
        # already bootstrapped, and a shadow must never recover (drop)
        # the very tables it is writing.
        self.backend = base.backend
        self.encoding = encoding
        self.gap = base.gap
        self.retry = base.retry
        self.write_queue = None
        self.cache = StoreCache(enabled=False)
        self._docs_table = documents_table()
        self._migration = None
        self._migration_epoch = 0
        # encoding=None so the update manager resolves the shadow
        # encoding (this store's default) for every operation.
        self._info = replace(info, encoding=None)
        from repro.core.updates import UpdateManager

        self.updates = UpdateManager(self)

    # -- catalogue overlay -------------------------------------------------

    def document_info(self, doc: int, fresh: bool = False):
        if doc != self._info.doc:
            raise MigrationError(
                f"shadow store only holds document {self._info.doc}, "
                f"not {doc}"
            )
        return replace(self._info)

    def update_document_info(self, info) -> None:
        self._info = replace(info)

    def reset_overlay(self, info) -> None:
        """Restore the overlay (cutover re-execution after a rollback)."""
        self._info = replace(info, encoding=None)

    def encoding_for(self, doc: int) -> OrderEncoding:
        return self.encoding

    def transactionally(self, operation):
        # The overlay is plain memory: roll it back by hand when the
        # operation (or its transaction) fails, so a retried attempt
        # re-reads the same next_id the live operation used.
        def guarded():
            saved = replace(self._info)
            try:
                return operation()
            except BaseException:
                self._info = saved
                raise

        return super().transactionally(guarded)

    def load(self, *args, **kwargs):  # pragma: no cover - misuse guard
        raise MigrationError("shadow stores do not load documents")


def _bootstrap_tables(store: XmlStore, encoding: OrderEncoding) -> None:
    if_not_exists = store.backend.supports_if_not_exists
    for statement in encoding.create_statements(if_not_exists):
        try:
            store.backend.execute(statement)
        except Exception as exc:
            if _is_already_exists(exc):
                continue
            raise MigrationError(
                f"migration table bootstrap failed: {statement!r}: {exc}"
            ) from exc


def _drop_shadow_tables(
    store: XmlStore, encoding: _ShadowEncoding
) -> bool:
    """Best-effort drop; returns False when any drop failed (the
    reopen-time recovery sweep picks the leftovers up)."""
    clean = True
    for table in (encoding.node_table.name, encoding.attr_table.name):
        try:
            store.backend.execute(f"DROP TABLE {table}")
        except Exception:
            clean = False
    return clean


def _convert_rows(
    source: OrderEncoding, rows: list[dict]
) -> list[ShreddedNode]:
    """Recompute every encoding-independent order quantity from the
    source rows: one DFS over parent pointers, siblings ordered by the
    source's sibling column (identical to the rebalance walk, so a
    migration also compacts accumulated gaps and carets)."""
    by_parent: dict[int, list[dict]] = {}
    order_column = source.sibling_order_column
    for row in rows:
        by_parent.setdefault(row["parent"], []).append(row)
    for siblings in by_parent.values():
        siblings.sort(key=lambda r: r[order_column])

    records: list[ShreddedNode] = []
    counter = 0

    def walk(row: dict, sibling_index: int,
             dewey_prefix: tuple[int, ...]) -> int:
        nonlocal counter
        counter += 1
        rank = counter
        dewey = (*dewey_prefix, sibling_index)
        record = ShreddedNode(
            id=row["id"], parent=row["parent"], kind=row["kind"],
            tag=row["tag"], value=row["value"], depth=row["depth"],
            rank=rank, end_rank=rank, sibling_index=sibling_index,
            dewey=dewey,
        )
        records.append(record)
        last = rank
        for index, child in enumerate(
            by_parent.get(row["id"], []), start=1
        ):
            last = walk(child, index, dewey)
        record.end_rank = last
        return last

    for index, top in enumerate(by_parent.get(0, []), start=1):
        walk(top, index, ())
    return records


def _apply_entry(shadow: _ShadowStore, doc: int, entry: tuple) -> None:
    kind = entry[0]
    if kind == "insert":
        _, parent_id, index, shredded = entry
        shadow.updates.insert_shredded(doc, parent_id, index, shredded)
    elif kind == "delete":
        shadow.updates.delete(doc, entry[1])
    elif kind == "set_text":
        shadow.updates.set_text(doc, entry[1], entry[2])
    elif kind == "rename":
        shadow.updates.rename(doc, entry[1], entry[2])
    elif kind == "set_attribute":
        shadow.updates.set_attribute(doc, entry[1], entry[2], entry[3])
    else:  # pragma: no cover - future entry kinds
        raise MigrationError(f"unknown journal entry kind {kind!r}")


def _check_journal(journal: MigrationJournal) -> None:
    if journal.poisoned:
        raise MigrationAborted(
            "migration aborted: a commit failed after its journal "
            "entry was promoted, so the journal may not match the "
            "live document",
            reason="poisoned-journal",
        )
    if journal.overflowed:
        raise MigrationAborted(
            "migration aborted: journal overflowed (live updates are "
            "outrunning replay)",
            reason="journal-overflow",
        )


#: How many drain-and-replay rounds to run before forcing cutover (the
#: cutover transaction replays whatever is still pending, so this only
#: bounds how much work lands inside that single transaction).
_MAX_REPLAY_ROUNDS = 8


def migrate_document(
    store: XmlStore,
    doc: int,
    target: Union[str, OrderEncoding],
    batch_size: int = 500,
) -> MigrationReport:
    """Re-encode document *doc* of *store* into *target*, online.

    Returns a :class:`MigrationReport`; raises
    :class:`~repro.errors.MigrationAborted` when the migration rolled
    itself back (the live document is untouched) and
    :class:`~repro.errors.MigrationError` on invalid requests.
    """
    if isinstance(target, str):
        target = get_encoding(target)
    if store.is_shadow:
        raise MigrationError("cannot migrate a shadow store")
    if batch_size < 1:
        raise MigrationError(f"batch_size must be >= 1, got {batch_size}")
    if store._migration is not None:
        raise MigrationError(
            "a migration is already running on this store"
        )

    info = store.document_info(doc, fresh=True)
    source = get_encoding(info.encoding or store.encoding.name)
    report = MigrationReport(doc=doc, source=source.name,
                             target=target.name)
    if source.name == target.name:
        report.outcome = "noop"
        return report

    shadow_encoding = _ShadowEncoding(target)
    journal = MigrationJournal()
    state = MigrationState(doc=doc, source=source, target=target,
                           journal=journal)
    METRICS.inc("migrate.started")

    # START -- tables first (outside any transaction: DDL), then the
    # journal hook.  Installing through transactionally serializes the
    # install against in-flight writer transactions, so no update can
    # commit "between" the hook and the snapshot unjournalled.
    _bootstrap_tables(store, shadow_encoding)
    _bootstrap_tables(store, target)

    def install() -> None:
        store._migration = state

    store.transactionally(install)

    try:
        # SNAPSHOT -- one transaction over catalogue + rows.  Entries
        # promoted before this transaction began are already in the
        # rows we read (writers are serialized), so drop them first —
        # and likewise this thread's *staged* entries: when the
        # snapshot runs inside a write-queue batch, earlier operations
        # of the same batch share its transaction, so their effects
        # are in the snapshot too.
        def snapshot():
            journal.drain()
            journal.discard()
            snap_info = store.document_info(doc, fresh=True)
            columns = source.node_columns()
            rows = store.backend.execute(
                f"SELECT {', '.join(columns)} "
                f"FROM {source.node_table.name} WHERE doc = ?",
                (doc,),
            ).rows
            attrs = store.backend.execute(
                f"SELECT doc, owner, name, value "
                f"FROM {source.attr_table.name} WHERE doc = ?",
                (doc,),
            ).rows
            return (
                snap_info,
                [dict(zip(columns, r)) for r in rows],
                [tuple(r) for r in attrs],
            )

        with span("migrate.snapshot"):
            snap_info, source_rows, attr_rows = (
                store.transactionally(snapshot)
            )

        # COPY -- convert and land in bounded batches.
        with span("migrate.copy"):
            records = _convert_rows(source, source_rows)
            node_sql = (
                f"INSERT INTO {shadow_encoding.node_table.name} VALUES "
                f"({', '.join('?' * len(shadow_encoding.node_columns()))})"
            )
            node_rows = [
                shadow_encoding.node_row(doc, record, store.gap)
                for record in records
            ]
            for start in range(0, len(node_rows), batch_size):
                batch = node_rows[start:start + batch_size]
                store.transactionally(
                    lambda b=batch: store.backend.executemany(node_sql, b)
                )
                report.rows_copied += len(batch)
                METRICS.inc("migrate.rows_copied", len(batch))
            attr_sql = (
                f"INSERT INTO {shadow_encoding.attr_table.name} "
                f"VALUES (?, ?, ?, ?)"
            )
            for start in range(0, len(attr_rows), batch_size):
                batch = attr_rows[start:start + batch_size]
                store.transactionally(
                    lambda b=batch: store.backend.executemany(attr_sql, b)
                )
                report.attrs_copied += len(batch)

        # REPLAY -- drain rounds until the journal runs dry (or the
        # round budget is spent; the cutover replays the remainder).
        shadow = _ShadowStore(store, shadow_encoding, snap_info)
        with span("migrate.replay"):
            for _ in range(_MAX_REPLAY_ROUNDS):
                _check_journal(journal)
                entries = journal.drain()
                if not entries:
                    break
                report.replay_rounds += 1
                for entry in entries:
                    _apply_entry(shadow, doc, entry)
                    report.journal_replayed += 1
                    METRICS.inc("migrate.journal_replayed")

        # CUTOVER -- one transaction makes the shadow authoritative.
        # The journal is read non-destructively and the overlay reset
        # at entry, so a rolled-back-and-retried cutover re-executes
        # identically.
        cutover_overlay = shadow.document_info(doc)

        def cutover() -> int:
            _check_journal(journal)
            shadow.reset_overlay(cutover_overlay)
            remainder = [*journal.pending(), *journal.staged()]
            for entry in remainder:
                _apply_entry(shadow, doc, entry)
                METRICS.inc("migrate.journal_replayed")

            live = store.document_info(doc, fresh=True)
            mirror = shadow.document_info(doc)
            if (live.next_id, live.node_count) != (
                mirror.next_id, mirror.node_count
            ):
                raise MigrationAborted(
                    f"migration aborted: shadow diverged from live "
                    f"document (live next_id={live.next_id} "
                    f"node_count={live.node_count}, shadow "
                    f"next_id={mirror.next_id} "
                    f"node_count={mirror.node_count})",
                    reason="divergence",
                )
            shadow_count = store.backend.execute(
                f"SELECT COUNT(*) FROM {shadow_encoding.node_table.name} "
                f"WHERE doc = ?",
                (doc,),
            ).rows[0][0]
            if shadow_count != live.node_count:
                raise MigrationAborted(
                    f"migration aborted: shadow holds {shadow_count} "
                    f"rows, live catalogue says {live.node_count}",
                    reason="row-count",
                )

            # Publish: shadow rows into the target's real tables (read
            # + executemany — minidb has no INSERT ... SELECT), source
            # rows out, catalogue swapped.  All-or-nothing with the
            # enclosing transaction.
            columns = target.node_columns()
            moved = store.backend.execute(
                f"SELECT {', '.join(columns)} "
                f"FROM {shadow_encoding.node_table.name} WHERE doc = ?",
                (doc,),
            ).rows
            store.backend.executemany(
                f"INSERT INTO {target.node_table.name} VALUES "
                f"({', '.join('?' * len(columns))})",
                [tuple(r) for r in moved],
            )
            moved_attrs = store.backend.execute(
                f"SELECT doc, owner, name, value "
                f"FROM {shadow_encoding.attr_table.name} WHERE doc = ?",
                (doc,),
            ).rows
            if moved_attrs:
                store.backend.executemany(
                    f"INSERT INTO {target.attr_table.name} "
                    f"VALUES (?, ?, ?, ?)",
                    [tuple(r) for r in moved_attrs],
                )
            store.backend.execute(
                f"DELETE FROM {source.node_table.name} WHERE doc = ?",
                (doc,),
            )
            store.backend.execute(
                f"DELETE FROM {source.attr_table.name} WHERE doc = ?",
                (doc,),
            )
            store.backend.execute(
                "UPDATE documents SET encoding = ? WHERE doc = ?",
                (target.name, doc),
            )
            return len(remainder)

        with span("migrate.cutover"):
            report.journal_replayed += store.transactionally(cutover)
    except BaseException:
        # Abort: the live document is untouched; discard the shadow.
        # Clearing the state first stops new entries from staging; the
        # drops are best-effort (a crashed backend cannot drop — the
        # reopen-time recovery sweep handles that case).
        store._migration = None
        try:
            _drop_shadow_tables(store, shadow_encoding)
        except BaseException:
            pass  # crashed backend: the reopen-time sweep drops them
        store.cache.bump()
        METRICS.inc("migrate.aborted")
        raise

    # CLEANUP -- post-commit: wake in-flight queries, then discard the
    # published shadow copy.  A crash in here leaves only orphan shadow
    # tables (the cutover is durable), dropped on the next open.
    store._migration_epoch += 1
    store.cache.bump()
    _drop_shadow_tables(store, shadow_encoding)
    store._migration = None
    METRICS.inc("migrate.completed")
    return report
