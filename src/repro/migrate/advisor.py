"""The workload advisor: when (and where) to migrate.

The paper's experiment E7 crosses the encodings over on the workload's
update share: Global answers every axis with one range predicate but
pays O(N) renumbering per ordered insertion; Local updates touch only
following siblings but queries need depth-bounded expansions and a
client-side order pass; Dewey sits between.  The advisor reads the
observability counters a store publishes (``repro.obs.METRICS``) and
turns that crossover into a deterministic recommendation:

* ``update_share >= update_heavy``  -> recommend **local**
* ``update_share <= query_heavy``   -> recommend **global**
* otherwise                         -> recommend **dewey**

where ``update_share = renumber_ops / (renumber_ops + queries)`` —
order-affecting updates specifically, because value updates are
order-free under every encoding and should not trigger a migration.
The advisor holds (no recommendation) below ``min_samples`` observed
operations or when the document already lives in the recommended
encoding.  ``repro migrate --advise`` prints the decision;
``--auto`` acts on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one document."""

    #: "migrate" or "hold".
    action: str
    #: Recommended encoding name when action == "migrate", else None.
    target: Optional[str]
    #: Human-readable justification.
    reason: str
    #: Ordered-update fraction of the observed workload, in [0, 1].
    update_share: float
    #: Total operations the decision is based on.
    samples: int

    @property
    def migrate(self) -> bool:
        return self.action == "migrate"


class MigrationAdvisor:
    """Deterministic threshold rule over a metrics snapshot.

    Parameters
    ----------
    update_heavy:
        Update share at/above which Local order wins (paper E7's
        update-dominated regime).
    query_heavy:
        Update share at/below which Global order wins (query-dominated
        regime).
    min_samples:
        Observed operations required before recommending anything —
        a cold store holds.
    """

    def __init__(
        self,
        update_heavy: float = 0.5,
        query_heavy: float = 0.1,
        min_samples: int = 20,
    ) -> None:
        if not 0.0 <= query_heavy < update_heavy <= 1.0:
            raise ValueError(
                f"need 0 <= query_heavy < update_heavy <= 1, got "
                f"query_heavy={query_heavy} update_heavy={update_heavy}"
            )
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.update_heavy = update_heavy
        self.query_heavy = query_heavy
        self.min_samples = min_samples

    def decide(
        self,
        counters: Mapping[str, int],
        current_encoding: str,
    ) -> Recommendation:
        """Decide for a document currently in *current_encoding*.

        *counters* is a flat counter mapping — either
        ``METRICS.snapshot()["counters"]`` or the snapshot dict itself
        (the ``counters`` key is unwrapped when present).
        """
        inner = counters.get("counters")
        if isinstance(inner, Mapping):
            counters = inner
        queries = int(counters.get("query.executed", 0))
        renumber = int(counters.get("updates.renumber_ops", 0))
        samples = queries + renumber
        share = renumber / samples if samples else 0.0

        if samples < self.min_samples:
            return Recommendation(
                action="hold", target=None,
                reason=(
                    f"only {samples} observed operation(s), need "
                    f">= {self.min_samples}"
                ),
                update_share=share, samples=samples,
            )

        if share >= self.update_heavy:
            best, regime = "local", "update-heavy"
        elif share <= self.query_heavy:
            best, regime = "global", "query-heavy"
        else:
            best, regime = "dewey", "mixed"

        if best == current_encoding:
            return Recommendation(
                action="hold", target=None,
                reason=(
                    f"{regime} workload (update share {share:.2f}); "
                    f"already on {best}"
                ),
                update_share=share, samples=samples,
            )
        return Recommendation(
            action="migrate", target=best,
            reason=(
                f"{regime} workload (update share {share:.2f}); "
                f"{best} beats {current_encoding} past the E7 crossover"
            ),
            update_share=share, samples=samples,
        )
