"""The migration journal: committed live updates queued for replay.

While a migration is in flight, every update transaction that commits
against the migrating document records one logical entry here; the
migration replays the entries, in commit order, into its shadow tables
so the shadow converges on the live document before cutover.

The two-phase protocol mirrors the transaction lifecycle:

``stage``
    called by the update manager inside the transaction, once per
    top-level operation (compound operations such as ``set_text`` stage
    a single entry).  Staged entries are *thread-local* — invisible to
    the migration until promoted.
``promote``
    called inside the transaction scope after the last statement, just
    before COMMIT.  Because writers are serialized (shared-connection
    lock, single WAL writer, or the write queue's one writer thread), a
    migration stage that starts after the commit always observes the
    promoted entry.
``discard``
    called at the start of every transaction attempt: a retried
    attempt must not stage its entries twice.
``poison``
    called when a COMMIT fails *after* promote — the journal now holds
    an entry the live store never published, so the migration must
    abort rather than replay it.

Entry tuples (the document id is implicit — one journal serves exactly
one migrating document)::

    ("insert", parent_id, index, shredded)
    ("delete", node_id)
    ("set_text", element_id, text)
    ("rename", element_id, tag)
    ("set_attribute", element_id, name, value)
"""

from __future__ import annotations

import threading

#: Journal entries above this bound mark the journal overflowed and the
#: migration aborts — the live workload is outrunning the replay loop.
DEFAULT_CAPACITY = 10_000


class MigrationJournal:
    """Thread-safe two-phase queue of update entries (see module doc)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        #: The replay loop could never keep up; the migration aborts.
        self.overflowed = False
        #: A COMMIT failed after promote; the migration aborts.
        self.poisoned = False
        self._lock = threading.Lock()
        self._entries: list[tuple] = []
        self._tls = threading.local()

    def _thread_staged(self) -> list[tuple]:
        staged = getattr(self._tls, "staged", None)
        if staged is None:
            staged = []
            self._tls.staged = staged
        return staged

    # -- writer side (called by the update manager / store) ----------------

    def stage(self, entry: tuple) -> None:
        """Record *entry* for the current thread's open transaction."""
        self._thread_staged().append(entry)

    def discard(self) -> None:
        """Drop the current thread's staged entries (attempt start /
        rollback)."""
        self._thread_staged().clear()

    def promote(self) -> None:
        """Publish the current thread's staged entries, in order."""
        staged = self._thread_staged()
        if not staged:
            return
        with self._lock:
            self._entries.extend(staged)
            if len(self._entries) > self.capacity:
                self.overflowed = True
        staged.clear()

    def poison(self) -> None:
        """Mark the journal unusable: a promoted entry may not have
        committed, so replaying the journal is no longer safe."""
        self.poisoned = True

    # -- migration side -----------------------------------------------------

    def drain(self) -> list[tuple]:
        """Remove and return every promoted entry (replay stage)."""
        with self._lock:
            entries = self._entries
            self._entries = []
        return entries

    def pending(self) -> list[tuple]:
        """Promoted entries *without* removing them — the cutover reads
        non-destructively so a rolled-back-and-retried cutover replays
        exactly the same entries."""
        with self._lock:
            return list(self._entries)

    def staged(self) -> list[tuple]:
        """The current thread's staged (not yet promoted) entries — a
        cutover running inside a write-queue batch sees the batch's
        earlier operations here."""
        return list(self._thread_staged())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
