"""Online crash-safe encoding migration (``repro migrate``).

* :func:`~repro.migrate.engine.migrate_document` — re-encode one live
  document between order encodings while the store serves reads and
  writes; crashes at any statement boundary recover to exactly the
  pre- or post-migration encoding.
* :class:`~repro.migrate.journal.MigrationJournal` — committed live
  updates queued for replay into the shadow tables.
* :class:`~repro.migrate.advisor.MigrationAdvisor` — recommends a
  migration when the observed workload crosses the paper's E7
  query/update crossover.
"""

from repro.errors import MigrationAborted, MigrationError
from repro.migrate.advisor import MigrationAdvisor, Recommendation
from repro.migrate.engine import (
    MigrationReport,
    MigrationState,
    migrate_document,
)
from repro.migrate.journal import MigrationJournal

__all__ = [
    "MigrationAborted",
    "MigrationAdvisor",
    "MigrationError",
    "MigrationJournal",
    "MigrationReport",
    "MigrationState",
    "Recommendation",
    "migrate_document",
]
