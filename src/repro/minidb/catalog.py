"""Table/index catalogue for a minidb database."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import CatalogError
from repro.minidb.tables import HeapTable, TableIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.concurrent.latch import RWLatch


class Catalog:
    """Owns all tables and indexes of one database instance."""

    def __init__(self, latch: "Optional[RWLatch]" = None) -> None:
        self.tables: dict[str, HeapTable] = {}
        self.indexes: dict[str, TableIndex] = {}
        #: The engine's readers-writer latch; every table created
        #: through this catalog carries it so mutations can assert the
        #: write side is held (None = unlatched standalone use).
        self.latch = latch
        #: Monotonically increasing schema version; compiled-statement
        #: caches key on it so DDL invalidates stale plans.
        self.version = 0

    def create_table(
        self,
        name: str,
        columns: tuple[str, ...],
        types: tuple[str, ...],
        if_not_exists: bool = False,
    ) -> Optional[HeapTable]:
        if name in self.tables:
            if if_not_exists:
                return None
            raise CatalogError(f"table {name!r} already exists")
        table = HeapTable(name, columns, types, latch=self.latch)
        self.tables[name] = table
        self.version += 1
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        table = self.tables.pop(name, None)
        if table is None:
            if if_exists:
                return
            raise CatalogError(f"no table {name!r}")
        for index in table.indexes:
            self.indexes.pop(index.name, None)
        self.version += 1

    def get_table(self, name: str) -> HeapTable:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def create_index(
        self,
        name: str,
        table_name: str,
        columns: tuple[str, ...],
        unique: bool = False,
        if_not_exists: bool = False,
    ) -> Optional[TableIndex]:
        if name in self.indexes:
            if if_not_exists:
                return None
            raise CatalogError(f"index {name!r} already exists")
        table = self.get_table(table_name)
        positions = tuple(table.column_position(c) for c in columns)
        index = TableIndex(name, table, positions, unique)
        table.add_index(index)
        self.indexes[name] = index
        self.version += 1
        return index
