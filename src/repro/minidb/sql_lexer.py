"""Lexer for the minidb SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

#: Keywords recognised by the parser (upper-cased kinds).
KEYWORDS = frozenset(
    """
    SELECT DISTINCT FROM WHERE GROUP BY HAVING ORDER ASC DESC LIMIT
    UNION ALL AND OR NOT IN EXISTS IS NULL LIKE BETWEEN CAST AS
    JOIN INNER LEFT OUTER ON CROSS
    CREATE TABLE INDEX UNIQUE DROP IF INSERT INTO VALUES UPDATE SET DELETE
    INTEGER REAL TEXT BLOB
    """.split()
)

_PUNCTUATION = ("<>", "!=", "<=", ">=", "||", "(", ")", ",", ".", "*",
                "=", "<", ">", "+", "-", "/", "?", ";")

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CHARS = _IDENT_START | set("0123456789")


@dataclass(frozen=True)
class SqlToken:
    """``kind`` is a keyword, punctuation text, or one of
    ``ident``/``number``/``string``/``param``."""

    kind: str
    value: str
    position: int


def tokenize_sql(sql: str) -> list[SqlToken]:
    """Tokenize *sql*; raises :class:`SqlSyntaxError` on bad characters."""
    tokens: list[SqlToken] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                end = sql.find("'", j)
                if end == -1:
                    raise SqlSyntaxError("unterminated string literal", i)
                if sql.startswith("''", end):
                    parts.append(sql[j:end] + "'")
                    j = end + 2
                    continue
                parts.append(sql[j:end])
                break
            tokens.append(SqlToken("string", "".join(parts), i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    seen_dot = True
                j += 1
            if j < n and sql[j] in "eE":
                k = j + 1
                if k < n and sql[k] in "+-":
                    k += 1
                while k < n and sql[k].isdigit():
                    k += 1
                j = k
            tokens.append(SqlToken("number", sql[i:j], i))
            i = j
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < n and sql[j] in _IDENT_CHARS:
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(SqlToken(upper, word, i))
            else:
                tokens.append(SqlToken("ident", word, i))
            i = j
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", i)
            tokens.append(SqlToken("ident", sql[i + 1 : end], i))
            i = end + 1
            continue
        for punct in _PUNCTUATION:
            if sql.startswith(punct, i):
                kind = "param" if punct == "?" else punct
                tokens.append(SqlToken(kind, punct, i))
                i += len(punct)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    return tokens
