"""Recursive-descent parser for the minidb SQL subset.

Parameters (``?``) are numbered left to right in source order; the executor
binds them positionally, matching the DB-API ``qmark`` style that the
sqlite3 backend also uses, so one SQL text runs on both backends.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import SqlSyntaxError
from repro.minidb.sql_ast import (
    Binary,
    Cast,
    ColumnDef,
    ColumnRef,
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Exists,
    Expr,
    FromItem,
    FunctionExpr,
    InList,
    InSelect,
    Insert,
    IsNull,
    Literal,
    OrderItem,
    Param,
    ScalarSubquery,
    Select,
    SelectItem,
    SelectLike,
    Star,
    Statement,
    SubquerySource,
    TableSource,
    Union_,
    Unary,
    Update,
)
from repro.minidb.sql_lexer import SqlToken, tokenize_sql

_COMPARISONS = ("=", "<>", "!=", "<=", ">=", "<", ">")
_TYPE_KEYWORDS = ("INTEGER", "REAL", "TEXT", "BLOB")


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement (an optional trailing ``;`` is allowed)."""
    parser = _Parser(tokenize_sql(sql), sql)
    statement = parser.parse_statement()
    parser.accept(";")
    parser.expect_end()
    return statement


class _Parser:
    def __init__(self, tokens: list[SqlToken], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._pos = 0
        self._param_count = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[SqlToken]:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def at(self, *kinds: str) -> bool:
        token = self.peek()
        return token is not None and token.kind in kinds

    def accept(self, *kinds: str) -> Optional[SqlToken]:
        token = self.peek()
        if token is not None and token.kind in kinds:
            self._pos += 1
            return token
        return None

    def expect(self, *kinds: str) -> SqlToken:
        token = self.peek()
        if token is None or token.kind not in kinds:
            at = token.position if token else len(self._source)
            found = token.kind if token else "end of statement"
            want = " or ".join(kinds)
            raise SqlSyntaxError(f"expected {want}, found {found}", at)
        self._pos += 1
        return token

    def expect_end(self) -> None:
        token = self.peek()
        if token is not None:
            raise SqlSyntaxError(
                f"unexpected trailing token {token.value!r}", token.position
            )

    def _error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        at = token.position if token else len(self._source)
        return SqlSyntaxError(message, at)

    # -- statements ------------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.at("SELECT"):
            return self.parse_select()
        if self.at("CREATE"):
            return self._parse_create()
        if self.at("DROP"):
            return self._parse_drop()
        if self.at("INSERT"):
            return self._parse_insert()
        if self.at("UPDATE"):
            return self._parse_update()
        if self.at("DELETE"):
            return self._parse_delete()
        raise self._error("expected a statement")

    def _parse_if_clause(self, *words: str) -> bool:
        if self.at("IF"):
            self.expect("IF")
            for word in words:
                self.expect(word)
            return True
        return False

    def _parse_create(self) -> Statement:
        self.expect("CREATE")
        if self.accept("UNIQUE"):
            self.expect("INDEX")
            return self._parse_create_index(unique=True)
        if self.accept("INDEX"):
            return self._parse_create_index(unique=False)
        self.expect("TABLE")
        if_not_exists = self._parse_if_clause("NOT", "EXISTS")
        name = self.expect("ident").value
        self.expect("(")
        columns: list[ColumnDef] = []
        while True:
            col = self.expect("ident").value
            type_token = self.expect(*_TYPE_KEYWORDS)
            columns.append(ColumnDef(col, type_token.kind))
            if not self.accept(","):
                break
        self.expect(")")
        return CreateTable(name, tuple(columns), if_not_exists)

    def _parse_create_index(self, unique: bool) -> CreateIndex:
        if_not_exists = self._parse_if_clause("NOT", "EXISTS")
        name = self.expect("ident").value
        self.expect("ON")
        table = self.expect("ident").value
        self.expect("(")
        columns = [self.expect("ident").value]
        while self.accept(","):
            columns.append(self.expect("ident").value)
        self.expect(")")
        return CreateIndex(name, table, tuple(columns), unique, if_not_exists)

    def _parse_drop(self) -> DropTable:
        self.expect("DROP")
        self.expect("TABLE")
        if_exists = self._parse_if_clause("EXISTS")
        name = self.expect("ident").value
        return DropTable(name, if_exists)

    def _parse_insert(self) -> Insert:
        self.expect("INSERT")
        self.expect("INTO")
        table = self.expect("ident").value
        columns: tuple[str, ...] = ()
        if self.accept("("):
            names = [self.expect("ident").value]
            while self.accept(","):
                names.append(self.expect("ident").value)
            self.expect(")")
            columns = tuple(names)
        self.expect("VALUES")
        rows = [self._parse_value_row()]
        while self.accept(","):
            rows.append(self._parse_value_row())
        return Insert(table, columns, tuple(rows))

    def _parse_value_row(self) -> tuple[Expr, ...]:
        self.expect("(")
        values = [self.parse_expr()]
        while self.accept(","):
            values.append(self.parse_expr())
        self.expect(")")
        return tuple(values)

    def _parse_update(self) -> Update:
        self.expect("UPDATE")
        table = self.expect("ident").value
        self.expect("SET")
        assignments = [self._parse_assignment()]
        while self.accept(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept("WHERE") else None
        return Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, Expr]:
        column = self.expect("ident").value
        self.expect("=")
        return column, self.parse_expr()

    def _parse_delete(self) -> Delete:
        self.expect("DELETE")
        self.expect("FROM")
        table = self.expect("ident").value
        where = self.parse_expr() if self.accept("WHERE") else None
        return Delete(table, where)

    # -- SELECT ------------------------------------------------------------------

    def parse_select(self) -> SelectLike:
        arms = [self._parse_select_core()]
        union_all: Optional[bool] = None
        while self.accept("UNION"):
            this_all = bool(self.accept("ALL"))
            if union_all is None:
                union_all = this_all
            elif union_all != this_all:
                raise self._error("mixed UNION and UNION ALL not supported")
            arms.append(self._parse_select_core())
        order_by = self._parse_order_by()
        limit = self.parse_expr() if self.accept("LIMIT") else None
        if len(arms) == 1:
            core = arms[0]
            if order_by or limit is not None:
                core = Select(
                    core.items,
                    core.from_items,
                    core.where,
                    core.group_by,
                    core.having,
                    tuple(order_by),
                    limit,
                    core.distinct,
                )
            return core
        return Union_(tuple(arms), bool(union_all), tuple(order_by), limit)

    def _parse_select_core(self) -> Select:
        self.expect("SELECT")
        distinct = bool(self.accept("DISTINCT"))
        self.accept("ALL")
        items = [self._parse_select_item()]
        while self.accept(","):
            items.append(self._parse_select_item())
        from_items: tuple[FromItem, ...] = ()
        if self.accept("FROM"):
            from_items = tuple(self._parse_from_clause())
        where = self.parse_expr() if self.accept("WHERE") else None
        group_by: tuple[Expr, ...] = ()
        if self.accept("GROUP"):
            self.expect("BY")
            exprs = [self.parse_expr()]
            while self.accept(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
        having = self.parse_expr() if self.accept("HAVING") else None
        return Select(
            tuple(items), from_items, where, group_by, having,
            distinct=distinct,
        )

    def _parse_select_item(self) -> Union[SelectItem, Star]:
        if self.accept("*"):
            return Star()
        token = self.peek()
        nxt = self.peek(1)
        nxt2 = self.peek(2)
        if (
            token is not None
            and token.kind == "ident"
            and nxt is not None
            and nxt.kind == "."
            and nxt2 is not None
            and nxt2.kind == "*"
        ):
            self._pos += 3
            return Star(token.value)
        expr = self.parse_expr()
        alias = None
        if self.accept("AS"):
            alias = self.expect("ident").value
        elif self.at("ident"):
            alias = self.expect("ident").value
        return SelectItem(expr, alias)

    def _parse_from_clause(self) -> list[FromItem]:
        items = [self._parse_from_item("inner", None)]
        while True:
            if self.accept(","):
                items.append(self._parse_from_item("inner", None))
                continue
            join_type = None
            if self.accept("INNER"):
                self.expect("JOIN")
                join_type = "inner"
            elif self.accept("LEFT"):
                self.accept("OUTER")
                self.expect("JOIN")
                join_type = "left"
            elif self.accept("CROSS"):
                self.expect("JOIN")
                join_type = "inner"
            elif self.accept("JOIN"):
                join_type = "inner"
            if join_type is None:
                return items
            item = self._parse_from_item(join_type, None)
            on = self.parse_expr() if self.accept("ON") else None
            items.append(
                FromItem(item.source, item.alias, join_type, on)
            )

    def _parse_from_item(
        self, join_type: str, on: Optional[Expr]
    ) -> FromItem:
        if self.accept("("):
            select = self.parse_select()
            self.expect(")")
            self.accept("AS")
            alias = self.expect("ident").value
            return FromItem(SubquerySource(select), alias, join_type, on)
        name = self.expect("ident").value
        alias = name
        if self.accept("AS"):
            alias = self.expect("ident").value
        elif self.at("ident"):
            alias = self.expect("ident").value
        return FromItem(TableSource(name), alias, join_type, on)

    def _parse_order_by(self) -> list[OrderItem]:
        if not self.accept("ORDER"):
            return []
        self.expect("BY")
        items = [self._parse_order_item()]
        while self.accept(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept("DESC"):
            descending = True
        else:
            self.accept("ASC")
        return OrderItem(expr, descending)

    # -- expressions ----------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept("OR"):
            left = Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept("AND"):
            left = Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept("NOT"):
            return Unary("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        while True:
            token = self.peek()
            if token is None:
                return left
            if token.kind in _COMPARISONS:
                self._pos += 1
                op = "!=" if token.kind == "<>" else token.kind
                left = Binary(op, left, self._parse_additive())
                continue
            if token.kind == "IS":
                self._pos += 1
                negated = bool(self.accept("NOT"))
                self.expect("NULL")
                left = IsNull(left, negated)
                continue
            if token.kind == "NOT":
                nxt = self.peek(1)
                if nxt is not None and nxt.kind in ("IN", "LIKE", "BETWEEN"):
                    self._pos += 1
                    left = self._parse_in_like_between(left, negated=True)
                    continue
                return left
            if token.kind in ("IN", "LIKE", "BETWEEN"):
                left = self._parse_in_like_between(left, negated=False)
                continue
            return left

    def _parse_in_like_between(self, left: Expr, negated: bool) -> Expr:
        if self.accept("LIKE"):
            pattern = self._parse_additive()
            expr: Expr = Binary("LIKE", left, pattern)
            return Unary("NOT", expr) if negated else expr
        if self.accept("BETWEEN"):
            low = self._parse_additive()
            self.expect("AND")
            high = self._parse_additive()
            expr = Binary(
                "AND", Binary(">=", left, low), Binary("<=", left, high)
            )
            return Unary("NOT", expr) if negated else expr
        self.expect("IN")
        self.expect("(")
        if self.at("SELECT"):
            select = self.parse_select()
            self.expect(")")
            return InSelect(left, select, negated)
        items = [self.parse_expr()]
        while self.accept(","):
            items.append(self.parse_expr())
        self.expect(")")
        return InList(left, tuple(items), negated)

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token is not None and token.kind in ("+", "-", "||"):
                self._pos += 1
                left = Binary(
                    token.kind, left, self._parse_multiplicative()
                )
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token is not None and token.kind in ("*", "/"):
                self._pos += 1
                left = Binary(token.kind, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self.accept("-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return Unary("-", operand)
        self.accept("+")
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token is None:
            raise self._error("expected an expression")
        if token.kind == "number":
            self._pos += 1
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "string":
            self._pos += 1
            return Literal(token.value)
        if token.kind == "param":
            self._pos += 1
            param = Param(self._param_count)
            self._param_count += 1
            return param
        if token.kind == "NULL":
            self._pos += 1
            return Literal(None)
        if token.kind == "CAST":
            self._pos += 1
            self.expect("(")
            expr = self.parse_expr()
            self.expect("AS")
            target = self.expect(*_TYPE_KEYWORDS).kind
            self.expect(")")
            return Cast(expr, target)
        if token.kind == "EXISTS":
            self._pos += 1
            self.expect("(")
            select = self.parse_select()
            self.expect(")")
            return Exists(select)
        if token.kind == "NOT":
            self._pos += 1
            return Unary("NOT", self._parse_primary())
        if token.kind == "(":
            self._pos += 1
            if self.at("SELECT"):
                select = self.parse_select()
                self.expect(")")
                return ScalarSubquery(select)
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind == "ident":
            return self._parse_identifier_expr()
        raise self._error(f"unexpected token {token.value!r}")

    def _parse_identifier_expr(self) -> Expr:
        name = self.expect("ident").value
        if self.accept("("):
            if self.accept("*"):
                self.expect(")")
                return FunctionExpr(name.lower(), star=True)
            args: list[Expr] = []
            if not self.accept(")"):
                distinct = bool(self.accept("DISTINCT"))
                args.append(self.parse_expr())
                while self.accept(","):
                    args.append(self.parse_expr())
                self.expect(")")
                if distinct:
                    return FunctionExpr(
                        f"{name.lower()} distinct", tuple(args)
                    )
            return FunctionExpr(name.lower(), tuple(args))
        if self.accept("."):
            column = self.expect("ident").value
            return ColumnRef(name, column)
        return ColumnRef(None, name)

