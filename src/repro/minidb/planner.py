"""Access-path planning for minidb SELECT evaluation.

The planner is deliberately simple (the translator writes its joins in a
sensible order): FROM items are joined left to right, and for each base
table the planner picks the best index given the conjuncts whose other
side is already bound.  An access path is an equality prefix over the
index's leading columns, optionally an IN-list on the next column, and
optionally a range (lower/upper bounds) on the column after the equality
prefix.  Everything else becomes a residual filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.minidb.sql_ast import (
    Binary,
    Cast,
    ColumnRef,
    Exists,
    Expr,
    FunctionExpr,
    InList,
    InSelect,
    IsNull,
    ScalarSubquery,
    Select,
    SelectItem,
    SubquerySource,
    Union_,
    Unary,
)
from repro.minidb.tables import HeapTable, TableIndex

_RANGE_OPS = {"<", "<=", ">", ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def split_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten a WHERE tree into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def free_column_refs(expr: Expr) -> set[tuple[Optional[str], str]]:
    """Column references in *expr* that are free (not bound by a nested
    subquery's own FROM aliases).

    Unqualified references inside subqueries are reported as free too —
    a conservative choice that only delays conjunct placement, never
    breaks it.
    """
    refs: set[tuple[Optional[str], str]] = set()
    _collect_refs(expr, frozenset(), refs)
    return refs


def _collect_refs(
    node: object, bound: frozenset, refs: set
) -> None:
    if isinstance(node, ColumnRef):
        if node.table is None or node.table not in bound:
            refs.add((node.table, node.column))
    elif isinstance(node, Binary):
        _collect_refs(node.left, bound, refs)
        _collect_refs(node.right, bound, refs)
    elif isinstance(node, Unary):
        _collect_refs(node.operand, bound, refs)
    elif isinstance(node, FunctionExpr):
        for arg in node.args:
            _collect_refs(arg, bound, refs)
    elif isinstance(node, Cast):
        _collect_refs(node.expr, bound, refs)
    elif isinstance(node, IsNull):
        _collect_refs(node.expr, bound, refs)
    elif isinstance(node, InList):
        _collect_refs(node.expr, bound, refs)
        for item in node.items:
            _collect_refs(item, bound, refs)
    elif isinstance(node, InSelect):
        _collect_refs(node.expr, bound, refs)
        _collect_select_refs(node.select, bound, refs)
    elif isinstance(node, Exists):
        _collect_select_refs(node.select, bound, refs)
    elif isinstance(node, ScalarSubquery):
        _collect_select_refs(node.select, bound, refs)
    # Literal / Param contribute nothing.


def _collect_select_refs(
    select: Union[Select, Union_], bound: frozenset, refs: set
) -> None:
    if isinstance(select, Union_):
        for arm in select.arms:
            _collect_select_refs(arm, bound, refs)
        return
    inner_bound = bound | {f.alias for f in select.from_items}
    for item in select.items:
        if isinstance(item, SelectItem):
            _collect_refs(item.expr, inner_bound, refs)
    for from_item in select.from_items:
        if isinstance(from_item.source, SubquerySource):
            _collect_select_refs(from_item.source.select, inner_bound, refs)
        if from_item.on is not None:
            _collect_refs(from_item.on, inner_bound, refs)
    if select.where is not None:
        _collect_refs(select.where, inner_bound, refs)
    for expr in select.group_by:
        _collect_refs(expr, inner_bound, refs)
    if select.having is not None:
        _collect_refs(select.having, inner_bound, refs)
    for order in select.order_by:
        _collect_refs(order.expr, inner_bound, refs)


@dataclass
class AccessPath:
    """How to read rows of one FROM table.

    ``eq_exprs`` bind the index's leading columns by equality.
    ``in_exprs`` (optional) is an IN-list probed value-by-value on the next
    column.  ``lower``/``upper`` (optional) bound the column after the
    equality prefix; each is a list of (op, expr) pairs all of which must
    hold (the executor intersects them at runtime).
    """

    index: Optional[TableIndex] = None
    eq_exprs: list[Expr] = field(default_factory=list)
    in_exprs: Optional[list[Expr]] = None
    lower: list[tuple[str, Expr]] = field(default_factory=list)
    upper: list[tuple[str, Expr]] = field(default_factory=list)
    #: Conjuncts not absorbed by the index; applied after binding.
    residual: list[Expr] = field(default_factory=list)

    @property
    def is_index_scan(self) -> bool:
        return self.index is not None


def _binding_side(
    conjunct: Expr, alias: str, bound: set[str]
) -> Optional[tuple[str, str, Expr]]:
    """If *conjunct* is ``alias.col <op> bound-expr`` (either side),
    return (column, op, bound_expr); else None."""
    if not isinstance(conjunct, Binary):
        return None
    if conjunct.op not in _RANGE_OPS and conjunct.op != "=":
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    for this, other, flipped in (
        (left, right, op),
        (right, left, _FLIP.get(op, op)),
    ):
        if (
            isinstance(this, ColumnRef)
            and this.table == alias
            and _is_bound(other, alias, bound)
        ):
            return this.column, flipped, other
    return None


def _is_bound(expr: Expr, alias: str, bound: set[str]) -> bool:
    """True when *expr*'s value is available before *alias* binds.

    Every free column reference must belong to an already-bound alias;
    references to *alias* itself, to unbound aliases, or unqualified
    names (which might belong to *alias*) disqualify the expression
    from driving an index probe.
    """
    for table, _column in free_column_refs(expr):
        if table is None or table == alias or table not in bound:
            return False
    return True


def choose_access_path(
    table: HeapTable,
    alias: str,
    conjuncts: list[Expr],
    bound: set[str],
) -> AccessPath:
    """Pick the best index access for *alias* given available conjuncts."""
    eq: dict[str, Expr] = {}
    ranges: dict[str, list[tuple[str, Expr]]] = {}
    in_lists: dict[str, InList] = {}
    # id(conjunct) -> ("eq"|"range"|"in", column) for absorption checks.
    used: dict[int, tuple[str, str]] = {}

    for conjunct in conjuncts:
        bind = _binding_side(conjunct, alias, bound)
        if bind is not None:
            column, op, other = bind
            if op == "=":
                if column not in eq:
                    eq[column] = other
                    used[id(conjunct)] = ("eq", column)
            else:
                ranges.setdefault(column, []).append((op, other))
                used[id(conjunct)] = ("range", column)
            continue
        if (
            isinstance(conjunct, InList)
            and not conjunct.negated
            and isinstance(conjunct.expr, ColumnRef)
            and conjunct.expr.table == alias
            and all(_is_bound(i, alias, bound) for i in conjunct.items)
        ):
            column = conjunct.expr.column
            if column not in in_lists:
                in_lists[column] = conjunct
                used[id(conjunct)] = ("in", column)

    best: Optional[AccessPath] = None
    best_score = (0, 0, 0)
    for index in table.indexes:
        columns = [table.columns[i] for i in index.column_positions]
        eq_len = 0
        for column in columns:
            if column in eq:
                eq_len += 1
            else:
                break
        path = AccessPath(index=index,
                          eq_exprs=[eq[c] for c in columns[:eq_len]])
        has_in = 0
        has_range = 0
        if eq_len < len(columns):
            next_column = columns[eq_len]
            if next_column in in_lists:
                path.in_exprs = list(in_lists[next_column].items)
                has_in = 1
            elif next_column in ranges:
                for op, other in ranges[next_column]:
                    if op in (">", ">="):
                        path.lower.append((op, other))
                    else:
                        path.upper.append((op, other))
                has_range = 1
        score = (eq_len, has_in, has_range)
        if score > best_score:
            best_score = score
            best = path

    if best is None or best_score == (0, 0, 0):
        return AccessPath(residual=list(conjuncts))

    # Work out which conjuncts the chosen path absorbed.  Only the first
    # matching eq conjunct per column went into ``eq``, so any duplicate
    # equality conjuncts on the same column stay residual (harmless).
    index_columns = [
        best.index.table.columns[i] for i in best.index.column_positions
    ]
    eq_columns = set(index_columns[: len(best.eq_exprs)])
    extra_kind = None
    extra_column = None
    if len(best.eq_exprs) < len(index_columns):
        extra_column = index_columns[len(best.eq_exprs)]
        if best.in_exprs is not None:
            extra_kind = "in"
        elif best.lower or best.upper:
            extra_kind = "range"
    residual = []
    for conjunct in conjuncts:
        usage = used.get(id(conjunct))
        absorbed = usage is not None and (
            (usage[0] == "eq" and usage[1] in eq_columns
             and eq.get(usage[1]) is not None)
            or (usage[0] == extra_kind and usage[1] == extra_column)
        )
        if not absorbed:
            residual.append(conjunct)
    best.residual = residual
    return best
