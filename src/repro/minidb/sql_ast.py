"""Statement and expression AST for the minidb SQL subset.

The subset is exactly what the paper's translations and the benchmark
harness need: DDL (CREATE TABLE / CREATE INDEX / DROP TABLE), INSERT with
literals/parameters, single-table UPDATE/DELETE, and SELECT with inner and
left joins, derived tables, WHERE, correlated EXISTS / IN / scalar
subqueries, aggregates with GROUP BY / HAVING, DISTINCT, compound UNION
[ALL], ORDER BY and LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # None | int | float | str | bytes


@dataclass(frozen=True)
class Param:
    """A positional ``?`` placeholder; ``index`` is 0-based."""

    index: int


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified with a table alias."""

    table: Optional[str]
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Binary:
    """Binary operator: comparison, arithmetic, AND/OR, LIKE, ``||``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Unary:
    """Unary operator: NOT or numeric negation."""

    op: str  # "NOT" | "-"
    operand: "Expr"


@dataclass(frozen=True)
class FunctionExpr:
    """Function call; ``star`` marks ``COUNT(*)``."""

    name: str  # lower-cased
    args: tuple["Expr", ...] = ()
    star: bool = False


@dataclass(frozen=True)
class Cast:
    expr: "Expr"
    target: str  # INTEGER | REAL | TEXT | BLOB


@dataclass(frozen=True)
class IsNull:
    expr: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class Exists:
    select: "SelectLike"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    expr: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class InSelect:
    expr: "Expr"
    select: "SelectLike"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery:
    select: "SelectLike"


Expr = Union[
    Literal,
    Param,
    ColumnRef,
    Binary,
    Unary,
    FunctionExpr,
    Cast,
    IsNull,
    Exists,
    InList,
    InSelect,
    ScalarSubquery,
]


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class TableSource:
    name: str


@dataclass(frozen=True)
class SubquerySource:
    select: "SelectLike"


@dataclass(frozen=True)
class FromItem:
    """One FROM element.  ``join_type`` relates it to the previous item."""

    source: Union[TableSource, SubquerySource]
    alias: str
    join_type: str = "inner"  # "inner" | "left"
    on: Optional[Expr] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[Union[SelectItem, Star], ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expr] = None
    distinct: bool = False


@dataclass(frozen=True)
class Union_:
    """Compound select: ``arms[0] UNION [ALL] arms[1] ...``."""

    arms: tuple[Select, ...]
    all: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expr] = None


SelectLike = Union[Select, Union_]


# ---------------------------------------------------------------------------
# Other statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...] = ()  # empty means "all, in table order"
    values: tuple[tuple[Expr, ...], ...] = ()


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...] = ()
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr] = None


Statement = Union[
    CreateTable, CreateIndex, DropTable, Insert, Update, Delete, Select, Union_
]
