"""minidb: a from-scratch in-memory relational engine.

Implements the SQL subset the paper's XPath-to-SQL translations generate:
DDL, INSERT/UPDATE/DELETE, and SELECT with joins (inner/left), derived
tables, correlated subqueries (EXISTS / IN / scalar), aggregates with
GROUP BY/HAVING, DISTINCT, UNION [ALL], ORDER BY and LIMIT — executed over
heap tables with B+-tree indexes and a planner that picks index equality/
range access paths.
"""

from repro.minidb.engine import MiniDb
from repro.minidb.executor import Result, Stats
from repro.minidb.sql_parser import parse_sql

__all__ = ["MiniDb", "Result", "Stats", "parse_sql"]
