"""Heap tables and secondary indexes for minidb.

A :class:`HeapTable` stores rows as tuples in a slot list; deleted slots
are tombstoned (``None``) so row ids stay stable.  A :class:`TableIndex`
maintains a B+-tree from (total-order) key tuples to row ids and enforces
uniqueness when requested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import CatalogError, ExecutionError
from repro.minidb.btree import BPlusTree
from repro.minidb.values import SqlValue, row_sort_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.concurrent.latch import RWLatch


class TableIndex:
    """A secondary index over a subset of a table's columns."""

    def __init__(
        self,
        name: str,
        table: "HeapTable",
        column_positions: tuple[int, ...],
        unique: bool = False,
    ) -> None:
        self.name = name
        self.table = table
        self.column_positions = column_positions
        self.unique = unique
        self.tree = BPlusTree()

    def key_for_row(self, row: tuple) -> tuple:
        """Extract this index's raw key values from a full table row."""
        return tuple(row[i] for i in self.column_positions)

    def insert(self, row: tuple, rowid: int) -> None:
        key = self.key_for_row(row)
        sortable = row_sort_key(key)
        if self.unique and None not in key and self.tree.get(sortable):
            raise ExecutionError(
                f"UNIQUE constraint failed on index {self.name}: {key!r}"
            )
        self.tree.insert(sortable, rowid)

    def delete(self, row: tuple, rowid: int) -> None:
        self.tree.delete(row_sort_key(self.key_for_row(row)), rowid)

    def lookup(self, key_values: tuple) -> list[int]:
        """Row ids whose index key equals *key_values* exactly."""
        return self.tree.get(row_sort_key(key_values))

    def scan_range(
        self,
        low: Optional[tuple],
        high: Optional[tuple],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids whose index key lies in the given key-tuple range.

        Bounds are raw value tuples which may be shorter than the index
        key (prefix scans); a short bound compares against the key's
        prefix, which Python tuple comparison gives us once both sides are
        total-order keys.
        """
        lo = row_sort_key(low) if low is not None else None
        hi = row_sort_key(high) if high is not None else None
        if hi is not None and not high_inclusive:
            pass  # open bound handled by the tree
        for _key, rowid in self.tree.scan(
            lo, hi, low_inclusive, high_inclusive
        ):
            yield rowid

    def scan_prefix(self, prefix: tuple) -> Iterator[int]:
        """Row ids whose index key starts with *prefix* (in key order)."""
        lo = row_sort_key(prefix)
        for key, rowid in self.tree.scan(lo, None, True, True):
            if key[: len(lo)] != lo:
                return
            yield rowid


class HeapTable:
    """A heap of tuples plus its indexes."""

    def __init__(self, name: str, columns: tuple[str, ...],
                 types: tuple[str, ...],
                 latch: "Optional[RWLatch]" = None) -> None:
        self.name = name
        self.columns = columns
        self.types = types
        self._column_positions = {c: i for i, c in enumerate(columns)}
        if len(self._column_positions) != len(columns):
            raise CatalogError(f"duplicate column in table {name}")
        self.rows: list[Optional[tuple]] = []
        self.indexes: list[TableIndex] = []
        self.live_count = 0
        #: The owning engine's readers-writer latch (None when the
        #: table is used standalone).  Mutations assert the exclusive
        #: side is held, so a write path that bypasses the engine's
        #: latching fails loudly instead of corrupting readers.
        self.latch = latch

    def _assert_write_latched(self) -> None:
        if self.latch is not None and \
                not self.latch.held_exclusively_by_me():
            raise ExecutionError(
                f"unlatched mutation of table {self.name}: the engine "
                "write latch is not held by this thread"
            )

    # -- metadata -------------------------------------------------------

    def column_position(self, column: str) -> int:
        try:
            return self._column_positions[column]
        except KeyError:
            raise CatalogError(
                f"no column {column!r} in table {self.name}"
            ) from None

    def has_column(self, column: str) -> bool:
        return column in self._column_positions

    def add_index(self, index: TableIndex) -> None:
        self.indexes.append(index)
        for rowid, row in enumerate(self.rows):
            if row is not None:
                index.insert(row, rowid)

    # -- mutation ----------------------------------------------------------

    def insert(self, row: tuple) -> int:
        """Insert *row*, returning its rowid; maintains all indexes."""
        self._assert_write_latched()
        if len(row) != len(self.columns):
            raise ExecutionError(
                f"table {self.name} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        rowid = len(self.rows)
        self.rows.append(row)
        try:
            for index in self.indexes:
                index.insert(row, rowid)
        except ExecutionError:
            # Roll the partial insert back so the table stays consistent.
            for index in self.indexes:
                index.delete(row, rowid)
            self.rows[rowid] = None
            raise
        self.live_count += 1
        return rowid

    def delete(self, rowid: int) -> None:
        self._assert_write_latched()
        row = self.rows[rowid]
        if row is None:
            return
        for index in self.indexes:
            index.delete(row, rowid)
        self.rows[rowid] = None
        self.live_count -= 1

    def update(self, rowid: int, new_row: tuple) -> None:
        self._assert_write_latched()
        old = self.rows[rowid]
        if old is None:
            raise ExecutionError(f"update of deleted row {rowid}")
        for index in self.indexes:
            index.delete(old, rowid)
        self.rows[rowid] = new_row
        for index in self.indexes:
            index.insert(new_row, rowid)

    # -- access ---------------------------------------------------------------

    def get(self, rowid: int) -> tuple:
        row = self.rows[rowid]
        if row is None:
            raise ExecutionError(f"access to deleted row {rowid}")
        return row

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) for every live row, in heap order."""
        for rowid, row in enumerate(self.rows):
            if row is not None:
                yield rowid, row

    def __len__(self) -> int:
        return self.live_count


def coerce_row(types: tuple[str, ...], row: tuple) -> tuple:
    """Apply light column-affinity coercion on insert (SQLite style)."""
    out = []
    for declared, value in zip(types, row):
        if value is None:
            out.append(None)
        elif declared == "INTEGER" and isinstance(value, bool):
            out.append(int(value))
        elif declared == "INTEGER" and isinstance(value, float) \
                and value == int(value):
            out.append(int(value))
        elif declared == "REAL" and isinstance(value, int) \
                and not isinstance(value, bool):
            out.append(float(value))
        else:
            out.append(value)
    return tuple(out)


SqlRow = tuple[SqlValue, ...]
