"""Compilation and execution of minidb statements.

Statements are compiled once into closures over a row *environment*
(``dict`` alias -> row tuple) and an :class:`ExecState` (parameters, stats
counters, derived-table cache).  The compiled form is cached per SQL text
by the engine, so repeated benchmark queries pay parsing/planning once.

Evaluation model:

* FROM items join left to right; base tables go through the
  :mod:`repro.minidb.planner` access-path selection (index equality
  prefix + optional IN probe or range), everything else is a residual
  filter applied as soon as its aliases are bound;
* LEFT JOIN emits a NULL row when no right row matches its ON condition;
* subqueries (EXISTS / IN / scalar) compile recursively with the outer
  scope chained, and see the outer row bindings through the shared
  environment at run time;
* aggregates group materialised rows, then evaluate the select list and
  HAVING in post-aggregate mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import CatalogError, ExecutionError
from repro.minidb import planner
from repro.minidb.catalog import Catalog
from repro.minidb.expressions import (
    AGGREGATE_NAMES,
    arithmetic,
    like_match,
    make_aggregate,
)
from repro.minidb.sql_ast import (
    Binary,
    Cast,
    ColumnRef,
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Exists,
    Expr,
    FromItem,
    FunctionExpr,
    InList,
    InSelect,
    Insert,
    IsNull,
    Literal,
    OrderItem,
    Param,
    ScalarSubquery,
    Select,
    SelectItem,
    SelectLike,
    Star,
    Statement,
    TableSource,
    Union_,
    Unary,
    Update,
)
from repro.minidb.tables import HeapTable, coerce_row
from repro.minidb.values import (
    SqlValue,
    cast_value,
    compare,
    is_true,
    logical_and,
    logical_not,
    logical_or,
    row_sort_key,
    sort_key,
)

Env = dict  # alias -> row tuple
ExprFn = Callable[[Env, "ExecState"], SqlValue]


@dataclass
class Stats:
    """Engine-wide counters; the benchmarks read these."""

    rows_read: int = 0
    rows_written: int = 0
    index_scans: int = 0
    full_scans: int = 0
    statements: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "rows_read": self.rows_read,
            "rows_written": self.rows_written,
            "index_scans": self.index_scans,
            "full_scans": self.full_scans,
            "statements": self.statements,
        }


@dataclass
class ExecState:
    """Per-execution context threaded through compiled closures."""

    params: tuple
    stats: Stats
    derived_cache: dict = field(default_factory=dict)


@dataclass
class Result:
    """The outcome of executing one statement."""

    columns: tuple[str, ...] = ()
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = -1


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------


class Scope:
    """Compile-time name resolution: alias -> column -> position.

    Scopes chain outward for correlated subqueries.
    """

    def __init__(
        self,
        aliases: dict[str, tuple[str, ...]],
        parent: Optional["Scope"] = None,
    ) -> None:
        self.aliases = aliases
        self.parent = parent

    def resolve(
        self, table: Optional[str], column: str
    ) -> tuple[str, int]:
        scope: Optional[Scope] = self
        while scope is not None:
            if table is not None:
                columns = scope.aliases.get(table)
                if columns is not None:
                    if column in columns:
                        return table, columns.index(column)
                    raise CatalogError(
                        f"no column {column!r} in {table!r}"
                    )
            else:
                matches = [
                    alias
                    for alias, columns in scope.aliases.items()
                    if column in columns
                ]
                if len(matches) == 1:
                    alias = matches[0]
                    return alias, scope.aliases[alias].index(column)
                if len(matches) > 1:
                    raise CatalogError(f"ambiguous column {column!r}")
            scope = scope.parent
        where = f"{table}.{column}" if table else column
        raise CatalogError(f"cannot resolve column {where}")


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


class Compiler:
    """Compiles statements against one catalog + function registry."""

    def __init__(
        self, catalog: Catalog, functions: dict[str, Callable]
    ) -> None:
        self.catalog = catalog
        self.functions = functions

    # -- expressions ------------------------------------------------------

    def compile_expr(self, expr: Expr, scope: Scope) -> ExprFn:
        if isinstance(expr, Literal):
            value = expr.value
            return lambda env, state: value
        if isinstance(expr, Param):
            index = expr.index
            def param_fn(env: Env, state: ExecState) -> SqlValue:
                try:
                    return state.params[index]
                except IndexError:
                    raise ExecutionError(
                        f"missing bind parameter {index + 1}"
                    ) from None
            return param_fn
        if isinstance(expr, ColumnRef):
            alias, position = scope.resolve(expr.table, expr.column)
            def column_fn(env: Env, state: ExecState) -> SqlValue:
                row = env[alias]
                return row[position]
            return column_fn
        if isinstance(expr, Binary):
            return self._compile_binary(expr, scope)
        if isinstance(expr, Unary):
            operand = self.compile_expr(expr.operand, scope)
            if expr.op == "NOT":
                return lambda env, state: logical_not(
                    _to_logic(operand(env, state))
                )
            if expr.op == "-":
                def neg_fn(env: Env, state: ExecState) -> SqlValue:
                    value = operand(env, state)
                    if value is None:
                        return None
                    if not isinstance(value, (int, float)):
                        raise ExecutionError(f"cannot negate {value!r}")
                    return -value
                return neg_fn
            raise ExecutionError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Cast):
            inner = self.compile_expr(expr.expr, scope)
            target = expr.target
            return lambda env, state: cast_value(inner(env, state), target)
        if isinstance(expr, IsNull):
            inner = self.compile_expr(expr.expr, scope)
            if expr.negated:
                return lambda env, state: inner(env, state) is not None
            return lambda env, state: inner(env, state) is None
        if isinstance(expr, FunctionExpr):
            return self._compile_function(expr, scope)
        if isinstance(expr, InList):
            return self._compile_in_list(expr, scope)
        if isinstance(expr, InSelect):
            return self._compile_in_select(expr, scope)
        if isinstance(expr, Exists):
            plan = self.compile_select(expr.select, scope)
            negated = expr.negated
            def exists_fn(env: Env, state: ExecState) -> SqlValue:
                found = False
                for _row in plan.rows(env, state):
                    found = True
                    break
                return (not found) if negated else found
            return exists_fn
        if isinstance(expr, ScalarSubquery):
            plan = self.compile_select(expr.select, scope)
            def scalar_fn(env: Env, state: ExecState) -> SqlValue:
                for row in plan.rows(env, state):
                    return row[0]
                return None
            return scalar_fn
        raise ExecutionError(f"cannot compile expression {expr!r}")

    def _compile_binary(self, expr: Binary, scope: Scope) -> ExprFn:
        op = expr.op
        if op == "AND":
            left = self.compile_expr(expr.left, scope)
            right = self.compile_expr(expr.right, scope)
            def and_fn(env: Env, state: ExecState) -> SqlValue:
                lval = _to_logic(left(env, state))
                if lval is False:
                    return False
                return logical_and(lval, _to_logic(right(env, state)))
            return and_fn
        if op == "OR":
            left = self.compile_expr(expr.left, scope)
            right = self.compile_expr(expr.right, scope)
            def or_fn(env: Env, state: ExecState) -> SqlValue:
                lval = _to_logic(left(env, state))
                if lval is True:
                    return True
                return logical_or(lval, _to_logic(right(env, state)))
            return or_fn
        if op == "LIKE":
            left = self.compile_expr(expr.left, scope)
            right = self.compile_expr(expr.right, scope)
            return lambda env, state: like_match(
                left(env, state), right(env, state)
            )
        if op in ("+", "-", "*", "/", "||"):
            left = self.compile_expr(expr.left, scope)
            right = self.compile_expr(expr.right, scope)
            return lambda env, state: arithmetic(
                op, left(env, state), right(env, state)
            )
        if op in ("=", "!=", "<", "<=", ">", ">="):
            left = self.compile_expr(expr.left, scope)
            right = self.compile_expr(expr.right, scope)
            def compare_fn(env: Env, state: ExecState) -> SqlValue:
                result = compare(left(env, state), right(env, state))
                if result is None:
                    return None
                if op == "=":
                    return result == 0
                if op == "!=":
                    return result != 0
                if op == "<":
                    return result < 0
                if op == "<=":
                    return result <= 0
                if op == ">":
                    return result > 0
                return result >= 0
            return compare_fn
        raise ExecutionError(f"unknown operator {op!r}")

    def _compile_function(self, expr: FunctionExpr, scope: Scope) -> ExprFn:
        if expr.name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate {expr.name}() used outside an aggregate query"
            )
        fn = self.functions.get(expr.name)
        if fn is None:
            raise ExecutionError(f"unknown function {expr.name}()")
        arg_fns = [self.compile_expr(a, scope) for a in expr.args]
        def call_fn(env: Env, state: ExecState) -> SqlValue:
            return fn(*[a(env, state) for a in arg_fns])
        return call_fn

    def _compile_in_list(self, expr: InList, scope: Scope) -> ExprFn:
        value_fn = self.compile_expr(expr.expr, scope)
        item_fns = [self.compile_expr(i, scope) for i in expr.items]
        negated = expr.negated
        def in_fn(env: Env, state: ExecState) -> SqlValue:
            value = value_fn(env, state)
            if value is None:
                return None
            found = False
            saw_null = False
            for item_fn in item_fns:
                item = item_fn(env, state)
                if item is None:
                    saw_null = True
                    continue
                try:
                    if compare(value, item) == 0:
                        found = True
                        break
                except ExecutionError:
                    continue  # different type class: not equal
            if found:
                return not negated
            if saw_null:
                return None
            return negated
        return in_fn

    def _compile_in_select(self, expr: InSelect, scope: Scope) -> ExprFn:
        value_fn = self.compile_expr(expr.expr, scope)
        plan = self.compile_select(expr.select, scope)
        negated = expr.negated
        def in_select_fn(env: Env, state: ExecState) -> SqlValue:
            value = value_fn(env, state)
            if value is None:
                return None
            saw_null = False
            for row in plan.rows(env, state):
                item = row[0]
                if item is None:
                    saw_null = True
                    continue
                try:
                    if compare(value, item) == 0:
                        return not negated
                except ExecutionError:
                    continue
            if saw_null:
                return None
            return negated
        return in_select_fn

    # -- SELECT ------------------------------------------------------------

    def compile_select(
        self, select: SelectLike, outer: Optional[Scope] = None
    ) -> "CompiledSelect":
        if isinstance(select, Union_):
            return self._compile_union(select, outer)
        return self._compile_select_core(select, outer)

    def _compile_union(
        self, union: Union_, outer: Optional[Scope]
    ) -> "CompiledSelect":
        arms = [self._compile_select_core(a, outer) for a in union.arms]
        columns = arms[0].columns
        for arm in arms[1:]:
            if len(arm.columns) != len(columns):
                raise ExecutionError("UNION arms have different widths")
        order_keys = _union_order_keys(union.order_by, columns)
        limit_fn = (
            self.compile_expr(union.limit, Scope({}, outer))
            if union.limit is not None
            else None
        )
        dedupe = not union.all

        def rows(env: Env, state: ExecState) -> Iterator[tuple]:
            out: list[tuple] = []
            for arm in arms:
                out.extend(arm.rows(env, state))
            if dedupe:
                seen = set()
                unique = []
                for row in out:
                    if row not in seen:
                        seen.add(row)
                        unique.append(row)
                out = unique
            for position, descending in reversed(order_keys):
                out.sort(
                    key=lambda r: row_sort_key((r[position],)),
                    reverse=descending,
                )
            if limit_fn is not None:
                limit = limit_fn(env, state)
                out = out[: int(limit)] if limit is not None else out
            return iter(out)

        plan_lines = [f"UNION{' ALL' if union.all else ''} of "
                      f"{len(arms)} arms:"]
        for position, arm in enumerate(arms):
            plan_lines.extend(
                f"  arm {position}: {line}" for line in arm.plan_lines
            )
        return CompiledSelect(columns, rows, plan_lines)

    def _compile_select_core(
        self, select: Select, outer: Optional[Scope]
    ) -> "CompiledSelect":
        # 1. Resolve FROM sources and build the local scope.
        sources: list[tuple[FromItem, object]] = []
        aliases: dict[str, tuple[str, ...]] = {}
        for from_item in select.from_items:
            if isinstance(from_item.source, TableSource):
                table = self.catalog.get_table(from_item.source.name)
                columns = table.columns
                sources.append((from_item, table))
            else:
                subplan = self.compile_select(from_item.source.select, outer)
                columns = subplan.columns
                sources.append((from_item, subplan))
            if from_item.alias in aliases:
                raise CatalogError(
                    f"duplicate alias {from_item.alias!r} in FROM"
                )
            aliases[from_item.alias] = tuple(columns)
        scope = Scope(aliases, outer)

        # 2. Distribute WHERE conjuncts over the join pipeline.  Column
        # refs are qualified first so access-path planning can see them.
        conjuncts = [
            _qualify_with_scope(c, scope)
            for c in planner.split_conjuncts(select.where)
        ]
        local_aliases = set(aliases)
        placement: dict[int, list[Expr]] = {i: [] for i in
                                            range(len(sources))}
        gates: list[Expr] = []  # reference no local alias
        for conjunct in conjuncts:
            refs = planner.free_column_refs(conjunct)
            needed = {t for t, _c in refs if t in local_aliases}
            unqualified = any(t is None for t, _c in refs)
            if unqualified:
                # Resolve unqualified names to their alias for placement.
                for _t, column in refs:
                    if _t is None:
                        try:
                            alias, _pos = scope.resolve(None, column)
                            if alias in local_aliases:
                                needed.add(alias)
                        except CatalogError:
                            pass
            if not needed:
                gates.append(conjunct)
                continue
            last = max(
                i for i, (item, _src) in enumerate(sources)
                if item.alias in needed
            )
            placement[last].append(conjunct)

        # 3. Build join steps.
        steps: list[_JoinStep] = []
        bound: set[str] = set()
        if outer is not None:
            outer_scope: Optional[Scope] = outer
            while outer_scope is not None:
                bound.update(outer_scope.aliases)
                outer_scope = outer_scope.parent
        for position, (from_item, source) in enumerate(sources):
            step_conjuncts = list(placement[position])
            on_conjuncts = [
                _qualify_with_scope(c, scope)
                for c in planner.split_conjuncts(from_item.on)
            ]
            if from_item.join_type == "inner":
                step_conjuncts.extend(on_conjuncts)
                on_fns: list[ExprFn] = []
            else:
                on_fns = [
                    self.compile_expr(c, scope) for c in on_conjuncts
                ]
            step = self._build_join_step(
                from_item, source, step_conjuncts, on_fns, bound, scope
            )
            steps.append(step)
            bound.add(from_item.alias)

        gate_fns = [self.compile_expr(c, scope) for c in gates]

        # 4. Select list, aggregation, ordering.
        has_aggregates = bool(select.group_by) or _contains_aggregate(
            select
        )
        if has_aggregates:
            compiled = self._finish_aggregate_select(
                select, scope, steps, gate_fns
            )
        else:
            compiled = self._finish_plain_select(
                select, scope, steps, gate_fns
            )
        compiled.plan_lines = [_describe_step(s) for s in steps]
        for from_item, source in sources:
            if isinstance(source, CompiledSelect):
                compiled.plan_lines.extend(
                    f"  [{from_item.alias}] {line}"
                    for line in source.plan_lines
                )
        return compiled

    def _build_join_step(
        self,
        from_item: FromItem,
        source: object,
        conjuncts: list[Expr],
        on_fns: list[ExprFn],
        bound: set[str],
        scope: Scope,
    ) -> "_JoinStep":
        alias = from_item.alias
        if isinstance(source, HeapTable):
            path = planner.choose_access_path(
                source, alias, conjuncts, bound
            )
            residual_fns = [
                self.compile_expr(c, scope) for c in path.residual
            ]
            eq_fns = [self.compile_expr(e, scope) for e in path.eq_exprs]
            in_fns = (
                [self.compile_expr(e, scope) for e in path.in_exprs]
                if path.in_exprs is not None
                else None
            )
            lower_fns = [
                (op, self.compile_expr(e, scope)) for op, e in path.lower
            ]
            upper_fns = [
                (op, self.compile_expr(e, scope)) for op, e in path.upper
            ]
            return _JoinStep(
                alias=alias,
                table=source,
                index=path.index if path.is_index_scan else None,
                eq_fns=eq_fns,
                in_fns=in_fns,
                lower_fns=lower_fns,
                upper_fns=upper_fns,
                residual_fns=residual_fns,
                on_fns=on_fns,
                left=from_item.join_type == "left",
                width=len(source.columns),
            )
        # Derived table: materialised once per execution — unless the
        # subquery is correlated (it references an outer alias or any
        # unqualified name, conservatively), in which case its rows
        # depend on the current environment and must be recomputed per
        # outer row.  Caching a correlated derived table would replay
        # the first outer row's rows for every subsequent one.
        subplan = source
        free_refs: set = set()
        planner._collect_select_refs(
            from_item.source.select, frozenset(), free_refs
        )
        residual_fns = [self.compile_expr(c, scope) for c in conjuncts]
        return _JoinStep(
            alias=alias,
            subplan=subplan,  # type: ignore[arg-type]
            correlated=bool(free_refs),
            residual_fns=residual_fns,
            on_fns=on_fns,
            left=from_item.join_type == "left",
            width=len(subplan.columns),  # type: ignore[union-attr]
        )

    def _finish_plain_select(
        self,
        select: Select,
        scope: Scope,
        steps: list["_JoinStep"],
        gate_fns: list[ExprFn],
    ) -> "CompiledSelect":
        columns, item_fns = self._compile_select_items(select, scope)
        alias_fns = {
            item.alias: fn
            for item, fn in zip(
                [i for i in select.items if isinstance(i, SelectItem)],
                item_fns,
            )
            if isinstance(item, SelectItem) and item.alias
        } if not any(isinstance(i, Star) for i in select.items) else {}
        order_fns = [
            (self._compile_order_expr(o.expr, scope, alias_fns),
             o.descending)
            for o in select.order_by
        ]
        limit_fn = (
            self.compile_expr(select.limit, scope)
            if select.limit is not None
            else None
        )
        distinct = select.distinct

        def rows(env: Env, state: ExecState) -> Iterator[tuple]:
            for gate in gate_fns:
                if not is_true(gate(env, state)):
                    return iter(())
            envs = _run_pipeline(steps, env, state)
            if order_fns:
                materialised = [
                    (
                        tuple(
                            row_sort_key((fn(e, state),))
                            for fn, _d in order_fns
                        ),
                        tuple(fn(e, state) for fn in item_fns),
                    )
                    for e in envs
                ]
                for position, (_fn, descending) in list(
                    enumerate(order_fns)
                )[::-1]:
                    materialised.sort(
                        key=lambda pair: pair[0][position],
                        reverse=descending,
                    )
                out = [row for _k, row in materialised]
            else:
                out = [
                    tuple(fn(e, state) for fn in item_fns) for e in envs
                ]
            if distinct:
                seen = set()
                unique = []
                for row in out:
                    if row not in seen:
                        seen.add(row)
                        unique.append(row)
                out = unique
            if limit_fn is not None:
                limit = limit_fn(env, state)
                if limit is not None:
                    out = out[: int(limit)]
            return iter(out)

        return CompiledSelect(tuple(columns), rows)

    def _finish_aggregate_select(
        self,
        select: Select,
        scope: Scope,
        steps: list["_JoinStep"],
        gate_fns: list[ExprFn],
    ) -> "CompiledSelect":
        group_fns = [self.compile_expr(e, scope) for e in select.group_by]

        # Find every aggregate call in the select list and HAVING; compile
        # its argument; assign it a slot.
        agg_nodes: list[FunctionExpr] = []
        _collect_aggregates(select, agg_nodes)
        slots: dict[int, int] = {}
        agg_arg_fns: list[Optional[ExprFn]] = []
        agg_separators: list[str] = []
        for node in agg_nodes:
            slots[id(node)] = len(agg_arg_fns)
            if node.star:
                agg_arg_fns.append(None)
            else:
                agg_arg_fns.append(
                    self.compile_expr(node.args[0], scope)
                )
            separator = ","
            if node.name == "group_concat" and len(node.args) > 1:
                sep_expr = node.args[1]
                if not isinstance(sep_expr, Literal):
                    raise ExecutionError(
                        "group_concat separator must be a literal"
                    )
                separator = str(sep_expr.value)
            agg_separators.append(separator)

        post = _PostAggregateCompiler(self, scope, slots)
        columns: list[str] = []
        item_fns: list[ExprFn] = []
        for index, item in enumerate(select.items):
            if isinstance(item, Star):
                raise ExecutionError("SELECT * with aggregates")
            columns.append(item.alias or _item_name(item.expr, index))
            item_fns.append(post.compile(item.expr))
        having_fn = (
            post.compile(select.having)
            if select.having is not None
            else None
        )
        alias_fns = {
            item.alias: fn
            for item, fn in zip(select.items, item_fns)
            if isinstance(item, SelectItem) and item.alias
        }
        order_fns = []
        for o in select.order_by:
            if (
                isinstance(o.expr, ColumnRef)
                and o.expr.table is None
                and o.expr.column in alias_fns
            ):
                order_fns.append((alias_fns[o.expr.column], o.descending))
            else:
                order_fns.append((post.compile(o.expr), o.descending))
        limit_fn = (
            self.compile_expr(select.limit, scope)
            if select.limit is not None
            else None
        )

        def rows(env: Env, state: ExecState) -> Iterator[tuple]:
            gate_ok = all(is_true(g(env, state)) for g in gate_fns)
            if not gate_ok and group_fns:
                return iter(())
            groups: dict[tuple, list[Env]] = {}
            if gate_ok:
                for e in _run_pipeline(steps, env, state):
                    key = tuple(
                        row_sort_key((fn(e, state),)) for fn in group_fns
                    )
                    groups.setdefault(key, []).append(e)
            if not group_fns and not groups:
                groups[()] = []  # global aggregate over zero rows
            out = []
            for _key, group_envs in groups.items():
                accumulators = [
                    make_aggregate(node.name, node.star, separator)
                    for node, separator in zip(agg_nodes, agg_separators)
                ]
                for e in group_envs:
                    for accumulator, arg_fn in zip(
                        accumulators, agg_arg_fns
                    ):
                        if arg_fn is None:
                            accumulator.add(None)
                        else:
                            accumulator.add(arg_fn(e, state))
                agg_values = [a.result() for a in accumulators]
                group_env = dict(group_envs[0]) if group_envs else dict(env)
                group_env["__agg__"] = agg_values
                if having_fn is not None and not is_true(
                    having_fn(group_env, state)
                ):
                    continue
                out.append(
                    (
                        tuple(
                            row_sort_key((fn(group_env, state),))
                            for fn, _d in order_fns
                        ),
                        tuple(fn(group_env, state) for fn in item_fns),
                    )
                )
            for position, (_fn, descending) in list(
                enumerate(order_fns)
            )[::-1]:
                out.sort(key=lambda pair: pair[0][position],
                         reverse=descending)
            result = [row for _k, row in out]
            if limit_fn is not None:
                limit = limit_fn(env, state)
                if limit is not None:
                    result = result[: int(limit)]
            return iter(result)

        return CompiledSelect(tuple(columns), rows)

    def _compile_order_expr(
        self, expr: Expr, scope: Scope, alias_fns: dict[str, ExprFn]
    ) -> ExprFn:
        """ORDER BY may reference a select-list alias by bare name."""
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.column in alias_fns
        ):
            try:
                return self.compile_expr(expr, scope)
            except CatalogError:
                return alias_fns[expr.column]
        return self.compile_expr(expr, scope)

    def _compile_select_items(
        self, select: Select, scope: Scope
    ) -> tuple[list[str], list[ExprFn]]:
        columns: list[str] = []
        fns: list[ExprFn] = []
        for index, item in enumerate(select.items):
            if isinstance(item, Star):
                for alias, alias_columns in scope.aliases.items():
                    if item.table is not None and alias != item.table:
                        continue
                    for position, name in enumerate(alias_columns):
                        columns.append(name)
                        fns.append(_make_column_fn(alias, position))
                continue
            columns.append(item.alias or _item_name(item.expr, index))
            fns.append(self.compile_expr(item.expr, scope))
        return columns, fns


def _make_column_fn(alias: str, position: int) -> ExprFn:
    def fn(env: Env, state: ExecState) -> SqlValue:
        return env[alias][position]
    return fn


def _item_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    return f"col{index + 1}"


def _to_logic(value: SqlValue) -> Optional[bool]:
    """Interpret an SQL value as a three-valued boolean."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _union_order_keys(
    order_by: Sequence[OrderItem], columns: tuple[str, ...]
) -> list[tuple[int, bool]]:
    """Compound-select ORDER BY: by output name or 1-based position."""
    keys: list[tuple[int, bool]] = []
    for item in order_by:
        if isinstance(item.expr, Literal) and isinstance(
            item.expr.value, int
        ):
            keys.append((item.expr.value - 1, item.descending))
        elif isinstance(item.expr, ColumnRef) and item.expr.table is None:
            try:
                keys.append(
                    (columns.index(item.expr.column), item.descending)
                )
            except ValueError:
                raise ExecutionError(
                    f"ORDER BY column {item.expr.column!r} not in output"
                ) from None
        else:
            raise ExecutionError(
                "compound ORDER BY must use output names or positions"
            )
    return keys


def _contains_aggregate(select: Select) -> bool:
    nodes: list[FunctionExpr] = []
    _collect_aggregates(select, nodes)
    return bool(nodes)


def _collect_aggregates(
    select: Select, out: list[FunctionExpr]
) -> None:
    for item in select.items:
        if isinstance(item, SelectItem):
            _collect_aggregates_expr(item.expr, out)
    if select.having is not None:
        _collect_aggregates_expr(select.having, out)
    for order in select.order_by:
        _collect_aggregates_expr(order.expr, out)


def _collect_aggregates_expr(expr: Expr, out: list[FunctionExpr]) -> None:
    if isinstance(expr, FunctionExpr):
        if expr.name in AGGREGATE_NAMES:
            out.append(expr)
            return
        for arg in expr.args:
            _collect_aggregates_expr(arg, out)
    elif isinstance(expr, Binary):
        _collect_aggregates_expr(expr.left, out)
        _collect_aggregates_expr(expr.right, out)
    elif isinstance(expr, Unary):
        _collect_aggregates_expr(expr.operand, out)
    elif isinstance(expr, Cast):
        _collect_aggregates_expr(expr.expr, out)
    elif isinstance(expr, IsNull):
        _collect_aggregates_expr(expr.expr, out)
    elif isinstance(expr, InList):
        _collect_aggregates_expr(expr.expr, out)
        for item in expr.items:
            _collect_aggregates_expr(item, out)
    # Aggregates inside subqueries belong to the subquery.


class _PostAggregateCompiler:
    """Compiles select-list/HAVING expressions after grouping.

    Aggregate calls read their slot from ``env["__agg__"]``; everything
    else compiles normally (column refs read the group's first row,
    SQLite-style).
    """

    def __init__(
        self, compiler: Compiler, scope: Scope, slots: dict[int, int]
    ) -> None:
        self._compiler = compiler
        self._scope = scope
        self._slots = slots

    def compile(self, expr: Expr) -> ExprFn:
        slot = self._slots.get(id(expr))
        if slot is not None:
            def agg_fn(env: Env, state: ExecState) -> SqlValue:
                return env["__agg__"][slot]
            return agg_fn
        if isinstance(expr, Binary):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            rebuilt = Binary(expr.op, Literal(None), Literal(None))
            return self._combine_binary(expr.op, left, right, rebuilt)
        if isinstance(expr, Unary):
            inner = self.compile(expr.operand)
            if expr.op == "NOT":
                return lambda env, state: logical_not(
                    _to_logic(inner(env, state))
                )
            return lambda env, state: (
                None
                if inner(env, state) is None
                else -inner(env, state)  # type: ignore[operator]
            )
        if isinstance(expr, Cast):
            inner = self.compile(expr.expr)
            target = expr.target
            return lambda env, state: cast_value(inner(env, state), target)
        if isinstance(expr, FunctionExpr) and expr.name not in AGGREGATE_NAMES:
            fn = self._compiler.functions.get(expr.name)
            if fn is None:
                raise ExecutionError(f"unknown function {expr.name}()")
            arg_fns = [self.compile(a) for a in expr.args]
            def call_fn(env: Env, state: ExecState) -> SqlValue:
                return fn(*[a(env, state) for a in arg_fns])
            return call_fn
        return self._compiler.compile_expr(expr, self._scope)

    def _combine_binary(
        self, op: str, left: ExprFn, right: ExprFn, _node: Binary
    ) -> ExprFn:
        if op == "AND":
            return lambda env, state: logical_and(
                _to_logic(left(env, state)), _to_logic(right(env, state))
            )
        if op == "OR":
            return lambda env, state: logical_or(
                _to_logic(left(env, state)), _to_logic(right(env, state))
            )
        if op in ("+", "-", "*", "/", "||"):
            return lambda env, state: arithmetic(
                op, left(env, state), right(env, state)
            )
        if op == "LIKE":
            return lambda env, state: like_match(
                left(env, state), right(env, state)
            )
        def compare_fn(env: Env, state: ExecState) -> SqlValue:
            result = compare(left(env, state), right(env, state))
            if result is None:
                return None
            return {
                "=": result == 0,
                "!=": result != 0,
                "<": result < 0,
                "<=": result <= 0,
                ">": result > 0,
                ">=": result >= 0,
            }[op]
        return compare_fn


# ---------------------------------------------------------------------------
# Join pipeline
# ---------------------------------------------------------------------------


@dataclass
class _JoinStep:
    alias: str
    table: Optional[HeapTable] = None
    subplan: Optional["CompiledSelect"] = None
    correlated: bool = False  # derived table references outer aliases
    index: Optional[object] = None  # TableIndex
    eq_fns: list[ExprFn] = field(default_factory=list)
    in_fns: Optional[list[ExprFn]] = None
    lower_fns: list[tuple[str, ExprFn]] = field(default_factory=list)
    upper_fns: list[tuple[str, ExprFn]] = field(default_factory=list)
    residual_fns: list[ExprFn] = field(default_factory=list)
    on_fns: list[ExprFn] = field(default_factory=list)
    left: bool = False
    width: int = 0

    def matches(self, env: Env, state: ExecState) -> Iterator[Env]:
        """Yield extended environments for rows matching this step.

        Base-table rows also record their heap rowid under a reserved
        ``__rowid_<alias>`` key, which UPDATE/DELETE use to locate the
        target rows without a second scan.
        """
        matched = False
        for rowid, row in self._candidate_rows(env, state):
            new_env = dict(env)
            new_env[self.alias] = row
            if rowid is not None:
                new_env[f"__rowid_{self.alias}"] = rowid
            ok = True
            for fn in self.on_fns:
                if not is_true(fn(new_env, state)):
                    ok = False
                    break
            if ok:
                for fn in self.residual_fns:
                    if not is_true(fn(new_env, state)):
                        ok = False
                        break
            if ok:
                matched = True
                yield new_env
        if self.left and not matched:
            new_env = dict(env)
            new_env[self.alias] = (None,) * self.width
            for fn in self.residual_fns:
                if not is_true(fn(new_env, state)):
                    return
            yield new_env

    def _candidate_rows(
        self, env: Env, state: ExecState
    ) -> Iterator[tuple[Optional[int], tuple]]:
        if self.subplan is not None:
            if self.correlated:
                # Rows depend on the current outer environment: never
                # serve one outer row's materialisation to another.
                for row in self.subplan.rows(env, state):
                    yield None, row
                return
            cache_key = id(self)
            rows = state.derived_cache.get(cache_key)
            if rows is None:
                rows = list(self.subplan.rows(env, state))
                state.derived_cache[cache_key] = rows
            for row in rows:
                yield None, row
            return
        table = self.table
        assert table is not None
        if self.index is None:
            state.stats.full_scans += 1
            for rowid, row in table.scan():
                state.stats.rows_read += 1
                yield rowid, row
            return
        state.stats.index_scans += 1
        eq_values = [fn(env, state) for fn in self.eq_fns]
        if any(v is None for v in eq_values):
            return  # '=' with NULL matches nothing
        probes: list[list[SqlValue]]
        if self.in_fns is not None:
            probes = []
            for fn in self.in_fns:
                value = fn(env, state)
                if value is not None:
                    probes.append([*eq_values, value])
        elif self.lower_fns or self.upper_fns:
            yield from self._range_scan(env, state, eq_values)
            return
        else:
            probes = [eq_values]
        index = self.index
        for probe in probes:
            if len(probe) == len(index.column_positions):  # type: ignore[attr-defined]
                rowids = index.lookup(tuple(probe))  # type: ignore[attr-defined]
            else:
                rowids = list(index.scan_prefix(tuple(probe)))  # type: ignore[attr-defined]
            for rowid in rowids:
                state.stats.rows_read += 1
                yield rowid, table.get(rowid)

    def _range_scan(
        self, env: Env, state: ExecState, eq_values: list[SqlValue]
    ) -> Iterator[tuple]:
        table = self.table
        index = self.index
        assert table is not None and index is not None
        low_value: Optional[SqlValue] = None
        low_inclusive = True
        for op, fn in self.lower_fns:
            value = fn(env, state)
            if value is None:
                return  # NULL bound matches nothing
            key = sort_key(value)
            if low_value is None or key > sort_key(low_value) or (
                key == sort_key(low_value) and op == ">"
            ):
                if low_value is None or key != sort_key(low_value):
                    low_inclusive = op == ">="
                elif op == ">":
                    low_inclusive = False
                low_value = value
        high_value: Optional[SqlValue] = None
        high_inclusive = True
        for op, fn in self.upper_fns:
            value = fn(env, state)
            if value is None:
                return
            key = sort_key(value)
            if high_value is None or key < sort_key(high_value) or (
                key == sort_key(high_value) and op == "<"
            ):
                if high_value is None or key != sort_key(high_value):
                    high_inclusive = op == "<="
                elif op == "<":
                    high_inclusive = False
                high_value = value

        # Index keys may be wider than the bound prefix (e.g. a range on
        # the first column of a two-column index).  A short tuple sorts
        # *before* any equal-prefix longer key, so exclusive lower bounds
        # and inclusive upper bounds must be padded with a sentinel that
        # sorts after every real component.
        sentinel = (4,)  # type rank 4 > blob rank; see values.sort_key
        eq_key = row_sort_key(tuple(eq_values))
        if low_value is not None:
            low = (*eq_key, sort_key(low_value))
            if not low_inclusive:
                low = (*low, sentinel)
                low_inclusive = True
        else:
            low = eq_key or None
        if high_value is not None:
            high = (*eq_key, sort_key(high_value))
            if high_inclusive:
                high = (*high, sentinel)
        else:
            high = None
        prefix_len = len(eq_key)
        for key, rowid in index.tree.scan(  # type: ignore[attr-defined]
            low, high, low_inclusive, high_inclusive
        ):
            if prefix_len and key[:prefix_len] != eq_key:
                break  # ran past the equality prefix
            state.stats.rows_read += 1
            yield rowid, table.get(rowid)


def _run_pipeline(
    steps: list[_JoinStep], env: Env, state: ExecState
) -> Iterator[Env]:
    if not steps:
        yield env
        return

    def recurse(position: int, current: Env) -> Iterator[Env]:
        if position == len(steps):
            yield current
            return
        for extended in steps[position].matches(current, state):
            yield from recurse(position + 1, extended)

    yield from recurse(0, env)


@dataclass
class CompiledSelect:
    """A compiled SELECT: output column names + a row generator.

    ``plan_lines`` is a human-readable access-plan summary (one line per
    FROM item), surfaced through ``MiniDb.explain``.
    """

    columns: tuple[str, ...]
    rows: Callable[[Env, ExecState], Iterator[tuple]]
    plan_lines: list[str] = field(default_factory=list)


def _describe_step(step: _JoinStep) -> str:
    join = "LEFT JOIN" if step.left else "JOIN"
    if step.subplan is not None:
        return f"{join} derived {step.alias} (materialised subquery)"
    if step.index is None:
        return (f"{join} {step.table.name} {step.alias}: FULL SCAN, "
                f"{len(step.residual_fns)} filter(s)")
    index = step.index
    parts = [f"eq[{len(step.eq_fns)}]"]
    if step.in_fns is not None:
        parts.append(f"in[{len(step.in_fns)}]")
    if step.lower_fns or step.upper_fns:
        parts.append("range")
    return (
        f"{join} {step.table.name} {step.alias}: INDEX "
        f"{index.name} ({', '.join(parts)}), "  # type: ignore[attr-defined]
        f"{len(step.residual_fns)} filter(s)"
    )


# ---------------------------------------------------------------------------
# DML / DDL execution
# ---------------------------------------------------------------------------


class StatementRunner:
    """Executes compiled statements against the catalog.

    When ``journal`` is a list, every row mutation appends an undo entry
    ``(kind, table, rowid, old_row)`` used by the engine's transaction
    rollback.
    """

    def __init__(
        self, catalog: Catalog, functions: dict[str, Callable],
        stats: Stats,
    ) -> None:
        self.catalog = catalog
        self.functions = functions
        self.stats = stats
        self.journal: Optional[list] = None

    def compiler(self) -> Compiler:
        return Compiler(self.catalog, self.functions)

    def run(self, statement: Statement, params: tuple) -> Result:
        self.stats.statements += 1
        state = ExecState(params=params, stats=self.stats)
        if isinstance(statement, (Select, Union_)):
            plan = self.compiler().compile_select(statement)
            rows = list(plan.rows({}, state))
            return Result(plan.columns, rows, -1)
        if isinstance(statement, Insert):
            return self._run_insert(statement, state)
        if isinstance(statement, Update):
            return self._run_update(statement, state)
        if isinstance(statement, Delete):
            return self._run_delete(statement, state)
        if self.journal is not None and isinstance(
            statement, (CreateTable, CreateIndex, DropTable)
        ):
            raise ExecutionError(
                "DDL is not allowed inside a transaction"
            )
        if isinstance(statement, CreateTable):
            self.catalog.create_table(
                statement.name,
                tuple(c.name for c in statement.columns),
                tuple(c.type for c in statement.columns),
                statement.if_not_exists,
            )
            return Result()
        if isinstance(statement, CreateIndex):
            self.catalog.create_index(
                statement.name,
                statement.table,
                statement.columns,
                statement.unique,
                statement.if_not_exists,
            )
            return Result()
        if isinstance(statement, DropTable):
            self.catalog.drop_table(statement.name, statement.if_exists)
            return Result()
        raise ExecutionError(f"cannot execute {statement!r}")

    def _run_insert(self, statement: Insert, state: ExecState) -> Result:
        table = self.catalog.get_table(statement.table)
        compiler = self.compiler()
        scope = Scope({})
        if statement.columns:
            positions = [
                table.column_position(c) for c in statement.columns
            ]
        else:
            positions = list(range(len(table.columns)))
        count = 0
        for value_row in statement.values:
            if len(value_row) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, "
                    f"got {len(value_row)}"
                )
            full: list[SqlValue] = [None] * len(table.columns)
            for position, expr in zip(positions, value_row):
                fn = compiler.compile_expr(expr, scope)
                full[position] = fn({}, state)
            rowid = table.insert(coerce_row(table.types, tuple(full)))
            if self.journal is not None:
                self.journal.append(("insert", table, rowid, None))
            count += 1
        self.stats.rows_written += count
        return Result(rowcount=count)

    def _plan_target_rows(
        self, table: HeapTable, where, state: ExecState
    ) -> list[int]:
        """Row ids matching a single-table WHERE (index-assisted)."""
        compiler = self.compiler()
        alias = table.name
        scope = Scope({alias: tuple(table.columns)})
        conjuncts = planner.split_conjuncts(where)
        # Rewrite unqualified refs to the table alias for planning.
        path = planner.choose_access_path(
            table, alias, [_qualify(c, alias, table) for c in conjuncts],
            set(),
        )
        step = _JoinStep(
            alias=alias,
            table=table,
            index=path.index if path.is_index_scan else None,
            eq_fns=[compiler.compile_expr(e, scope) for e in path.eq_exprs],
            in_fns=(
                [compiler.compile_expr(e, scope) for e in path.in_exprs]
                if path.in_exprs is not None
                else None
            ),
            lower_fns=[
                (op, compiler.compile_expr(e, scope))
                for op, e in path.lower
            ],
            upper_fns=[
                (op, compiler.compile_expr(e, scope))
                for op, e in path.upper
            ],
            residual_fns=[
                compiler.compile_expr(c, scope) for c in path.residual
            ],
            width=len(table.columns),
        )
        rowid_key = f"__rowid_{alias}"
        return [env[rowid_key] for env in step.matches({}, state)]

    def _run_update(self, statement: Update, state: ExecState) -> Result:
        table = self.catalog.get_table(statement.table)
        compiler = self.compiler()
        alias = table.name
        scope = Scope({alias: tuple(table.columns)})
        assignment_fns = [
            (table.column_position(column), compiler.compile_expr(
                _qualify(expr, alias, table), scope))
            for column, expr in statement.assignments
        ]
        where = (
            _qualify(statement.where, alias, table)
            if statement.where is not None
            else None
        )
        rowids = self._plan_target_rows(table, where, state)
        for rowid in rowids:
            old = table.get(rowid)
            row = list(old)
            env = {alias: tuple(row)}
            for position, fn in assignment_fns:
                row[position] = fn(env, state)
            table.update(rowid, coerce_row(table.types, tuple(row)))
            if self.journal is not None:
                self.journal.append(("update", table, rowid, old))
        self.stats.rows_written += len(rowids)
        return Result(rowcount=len(rowids))

    def _run_delete(self, statement: Delete, state: ExecState) -> Result:
        table = self.catalog.get_table(statement.table)
        where = (
            _qualify(statement.where, table.name, table)
            if statement.where is not None
            else None
        )
        rowids = self._plan_target_rows(table, where, state)
        for rowid in rowids:
            if self.journal is not None:
                self.journal.append(
                    ("delete", table, rowid, table.get(rowid))
                )
            table.delete(rowid)
        self.stats.rows_written += len(rowids)
        return Result(rowcount=len(rowids))


def _qualify_with_scope(expr: Expr, scope: Scope) -> Expr:
    """Qualify unqualified column refs using compile-time scopes.

    Subquery expressions are left untouched — they resolve against their
    own scopes when compiled.  Unresolvable names are also left as-is so
    the normal compilation error surfaces with context.
    """
    if isinstance(expr, ColumnRef):
        if expr.table is not None:
            return expr
        try:
            alias, _position = scope.resolve(None, expr.column)
        except CatalogError:
            return expr
        return ColumnRef(alias, expr.column)
    if isinstance(expr, Binary):
        return Binary(
            expr.op,
            _qualify_with_scope(expr.left, scope),
            _qualify_with_scope(expr.right, scope),
        )
    if isinstance(expr, Unary):
        return Unary(expr.op, _qualify_with_scope(expr.operand, scope))
    if isinstance(expr, Cast):
        return Cast(_qualify_with_scope(expr.expr, scope), expr.target)
    if isinstance(expr, IsNull):
        return IsNull(_qualify_with_scope(expr.expr, scope), expr.negated)
    if isinstance(expr, FunctionExpr):
        return FunctionExpr(
            expr.name,
            tuple(_qualify_with_scope(a, scope) for a in expr.args),
            expr.star,
        )
    if isinstance(expr, InList):
        return InList(
            _qualify_with_scope(expr.expr, scope),
            tuple(_qualify_with_scope(i, scope) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, InSelect):
        return InSelect(
            _qualify_with_scope(expr.expr, scope),
            expr.select,
            expr.negated,
        )
    return expr


def _qualify(expr, alias: str, table: HeapTable):
    """Qualify unqualified column refs with the table alias (UPDATE and
    DELETE resolve names against their single target table)."""
    if expr is None:
        return None
    if isinstance(expr, ColumnRef):
        if expr.table is None and table.has_column(expr.column):
            return ColumnRef(alias, expr.column)
        return expr
    if isinstance(expr, Binary):
        return Binary(
            expr.op,
            _qualify(expr.left, alias, table),
            _qualify(expr.right, alias, table),
        )
    if isinstance(expr, Unary):
        return Unary(expr.op, _qualify(expr.operand, alias, table))
    if isinstance(expr, Cast):
        return Cast(_qualify(expr.expr, alias, table), expr.target)
    if isinstance(expr, IsNull):
        return IsNull(_qualify(expr.expr, alias, table), expr.negated)
    if isinstance(expr, FunctionExpr):
        return FunctionExpr(
            expr.name,
            tuple(_qualify(a, alias, table) for a in expr.args),
            expr.star,
        )
    if isinstance(expr, InList):
        return InList(
            _qualify(expr.expr, alias, table),
            tuple(_qualify(i, alias, table) for i in expr.items),
            expr.negated,
        )
    # Subquery forms keep their own scoping.
    return expr
