"""Snapshot persistence for minidb databases.

``save`` writes the catalog and every live row to a compact binary file;
``load`` reads it back and rebuilds all indexes.  The format is a simple
length-prefixed, tagged-value layout (no pickling — the file contains
only data, never code):

.. code-block:: text

    magic "MDB1"
    u32 table_count
      table: str name, u16 n_columns, (str name, u8 type_code)*,
             u32 n_rows, rows as tagged values
    u32 index_count
      index: str name, str table, u16 n_columns, str*, u8 unique
    footer "MDBF", u32 crc32 of everything before the footer

Value tags: 0 NULL, 1 i64, 2 f64, 3 UTF-8 text, 4 blob.

Crash safety
------------

``save`` is atomic and torn-write-proof: the whole snapshot is built in
memory, written to ``<path>.tmp`` in the same directory, fsynced, and
renamed into place — a reader never observes a half-written ``<path>``.
Before the rename, the previous snapshot (when one exists) is rotated to
``<path>.prev`` as a fallback generation.  ``load`` verifies the CRC
footer and, when the primary file is missing, torn, or garbled, falls
back to that previous generation, so a kill at any point during ``save``
never loses the last good snapshot.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Union

from repro.errors import ExecutionError
from repro.minidb.engine import MiniDb

_MAGIC = b"MDB1"
_FOOTER_MAGIC = b"MDBF"
_FOOTER_SIZE = 8  # magic + u32 crc32
_TYPE_CODES = {"INTEGER": 0, "REAL": 1, "TEXT": 2, "BLOB": 3}
_TYPE_NAMES = {v: k for k, v in _TYPE_CODES.items()}

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack(">I", len(data)))
    out.write(data)


def _read_str(src: BinaryIO) -> str:
    (length,) = struct.unpack(">I", _read_exact(src, 4))
    return _read_exact(src, length).decode("utf-8")


def _read_exact(src: BinaryIO, n: int) -> bytes:
    data = src.read(n)
    if len(data) != n:
        raise ExecutionError("truncated minidb snapshot")
    return data


def _write_value(out: BinaryIO, value: object) -> None:
    if value is None:
        out.write(b"\x00")
    elif isinstance(value, bool):
        out.write(b"\x01" + struct.pack(">q", int(value)))
    elif isinstance(value, int):
        if not _I64_MIN <= value <= _I64_MAX:
            raise ExecutionError(
                f"integer {value} does not fit the snapshot format"
            )
        out.write(b"\x01" + struct.pack(">q", value))
    elif isinstance(value, float):
        out.write(b"\x02" + struct.pack(">d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.write(b"\x03" + struct.pack(">I", len(data)))
        out.write(data)
    elif isinstance(value, bytes):
        out.write(b"\x04" + struct.pack(">I", len(value)))
        out.write(value)
    else:
        raise ExecutionError(f"cannot persist value {value!r}")


def _read_value(src: BinaryIO) -> object:
    tag = _read_exact(src, 1)[0]
    if tag == 0:
        return None
    if tag == 1:
        return struct.unpack(">q", _read_exact(src, 8))[0]
    if tag == 2:
        return struct.unpack(">d", _read_exact(src, 8))[0]
    if tag == 3:
        (length,) = struct.unpack(">I", _read_exact(src, 4))
        return _read_exact(src, length).decode("utf-8")
    if tag == 4:
        (length,) = struct.unpack(">I", _read_exact(src, 4))
        return _read_exact(src, length)
    raise ExecutionError(f"bad value tag {tag} in snapshot")


# -- paths of the generation scheme -------------------------------------


def temp_path(path: Union[str, Path]) -> Path:
    """Where ``save`` stages the new snapshot before the atomic rename."""
    path = Path(path)
    return path.with_name(path.name + ".tmp")


def previous_path(path: Union[str, Path]) -> Path:
    """Where ``save`` keeps the previous good generation."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


# -- serialisation ------------------------------------------------------


def snapshot_bytes(db: MiniDb) -> bytes:
    """The complete on-disk image of *db*, CRC footer included."""
    out = io.BytesIO()
    tables = db.catalog.tables
    out.write(_MAGIC)
    out.write(struct.pack(">I", len(tables)))
    for table in tables.values():
        _write_str(out, table.name)
        out.write(struct.pack(">H", len(table.columns)))
        for name, declared in zip(table.columns, table.types):
            _write_str(out, name)
            out.write(bytes((_TYPE_CODES.get(declared, 2),)))
        out.write(struct.pack(">I", len(table)))
        for _rowid, row in table.scan():
            for value in row:
                _write_value(out, value)
    indexes = db.catalog.indexes
    out.write(struct.pack(">I", len(indexes)))
    for index in indexes.values():
        _write_str(out, index.name)
        _write_str(out, index.table.name)
        out.write(struct.pack(">H", len(index.column_positions)))
        for position in index.column_positions:
            _write_str(out, index.table.columns[position])
        out.write(bytes((1 if index.unique else 0,)))
    body = out.getvalue()
    return body + _FOOTER_MAGIC + struct.pack(">I", zlib.crc32(body))


def save(db: MiniDb, path: Union[str, Path], durable: bool = True) -> None:
    """Write *db* (schema + data + index definitions) to *path*.

    Atomic: stages to ``<path>.tmp`` (fsynced when *durable*), rotates
    any existing snapshot to ``<path>.prev``, then renames the staged
    file into place.  A crash at any point leaves at least one good
    generation for :func:`load` to recover.
    """
    path = Path(path)
    image = snapshot_bytes(db)
    tmp = temp_path(path)
    try:
        with open(tmp, "wb") as out:
            out.write(image)
            out.flush()
            if durable:
                os.fsync(out.fileno())
        if path.exists():
            os.replace(path, previous_path(path))
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise
    if durable:
        _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Make the renames themselves durable (best-effort; some platforms
    refuse to fsync a directory handle)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# -- deserialisation ----------------------------------------------------


def verify_snapshot(path: Union[str, Path]) -> bytes:
    """Return the verified body bytes of the snapshot at *path*.

    Raises :class:`ExecutionError` on a bad magic, a missing footer, or
    a CRC mismatch — i.e. on any torn or garbled file.
    """
    data = Path(path).read_bytes()
    if data[:4] != _MAGIC:
        raise ExecutionError(f"{path} is not a minidb snapshot")
    if len(data) < len(_MAGIC) + _FOOTER_SIZE or data[-8:-4] != _FOOTER_MAGIC:
        raise ExecutionError(f"torn minidb snapshot {path}: missing footer")
    body = data[:-_FOOTER_SIZE]
    (expected_crc,) = struct.unpack(">I", data[-4:])
    if zlib.crc32(body) != expected_crc:
        raise ExecutionError(
            f"torn minidb snapshot {path}: checksum mismatch"
        )
    return body


def _load_verified(path: Union[str, Path]) -> MiniDb:
    body = verify_snapshot(path)
    db = MiniDb()
    with db.latch.write():
        return _populate(db, body)


def _populate(db: MiniDb, body: bytes) -> MiniDb:
    src = io.BytesIO(body)
    _read_exact(src, 4)  # magic, already verified
    (table_count,) = struct.unpack(">I", _read_exact(src, 4))
    for _ in range(table_count):
        name = _read_str(src)
        (n_columns,) = struct.unpack(">H", _read_exact(src, 2))
        columns = []
        types = []
        for _c in range(n_columns):
            columns.append(_read_str(src))
            types.append(_TYPE_NAMES[_read_exact(src, 1)[0]])
        table = db.catalog.create_table(
            name, tuple(columns), tuple(types)
        )
        (n_rows,) = struct.unpack(">I", _read_exact(src, 4))
        for _r in range(n_rows):
            row = tuple(_read_value(src) for _v in range(n_columns))
            table.insert(row)  # type: ignore[union-attr]
    (index_count,) = struct.unpack(">I", _read_exact(src, 4))
    for _ in range(index_count):
        index_name = _read_str(src)
        table_name = _read_str(src)
        (n_columns,) = struct.unpack(">H", _read_exact(src, 2))
        column_names = tuple(_read_str(src) for _c in range(n_columns))
        unique = bool(_read_exact(src, 1)[0])
        db.catalog.create_index(
            index_name, table_name, column_names, unique
        )
    return db


def load(path: Union[str, Path]) -> MiniDb:
    """Read a snapshot back into a fresh engine (indexes rebuilt).

    When *path* is missing, torn, or garbled but a previous good
    generation (``<path>.prev``) exists, that generation is loaded
    instead — the recovery contract of the atomic :func:`save`.
    """
    path = Path(path)
    try:
        return _load_verified(path)
    except (ExecutionError, OSError) as primary_error:
        fallback = previous_path(path)
        if fallback.exists():
            try:
                return _load_verified(fallback)
            except (ExecutionError, OSError):
                pass  # fall through to the primary error
        raise primary_error
