"""Scalar functions, aggregates, and operator semantics for minidb.

The function registry starts with the SQL built-ins the translations use
(``length``, ``substr``, ``instr``, ``upper``, ``lower``, ``abs``,
``coalesce``, ``min``/``max`` as aggregates, etc.).  The engine registers
the Dewey helpers (``dewey_parent``, ``dewey_successor``, ``dewey_local``,
``dewey_depth``) on top, exactly as the sqlite3 backend registers them via
``create_function`` — keeping the SQL dialect identical across backends.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Optional

from repro.errors import ExecutionError
from repro.minidb.values import SqlValue, compare, sort_key


# -- scalar built-ins ----------------------------------------------------


def _fn_length(value: SqlValue) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        return len(value)
    return len(str(value))


def _fn_substr(
    value: SqlValue, start: SqlValue, length: SqlValue = None
) -> Optional[str]:
    if value is None or start is None:
        return None
    text = value if isinstance(value, str) else str(value)
    begin = int(start)
    # SQL substr is 1-based; 0/negative starts follow SQLite's convention
    # closely enough for our use (translations always pass start >= 1).
    index = begin - 1 if begin > 0 else 0
    if length is None:
        return text[index:]
    return text[index : index + int(length)]


def _fn_instr(haystack: SqlValue, needle: SqlValue) -> Optional[int]:
    if haystack is None or needle is None:
        return None
    hay = haystack if isinstance(haystack, str) else str(haystack)
    sub = needle if isinstance(needle, str) else str(needle)
    return hay.find(sub) + 1


def _fn_upper(value: SqlValue) -> Optional[str]:
    return None if value is None else str(value).upper()


def _fn_lower(value: SqlValue) -> Optional[str]:
    return None if value is None else str(value).lower()


def _fn_abs(value: SqlValue) -> SqlValue:
    if value is None:
        return None
    if not isinstance(value, (int, float)):
        raise ExecutionError(f"abs() of non-number {value!r}")
    return abs(value)


def _fn_coalesce(*args: SqlValue) -> SqlValue:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_nullif(a: SqlValue, b: SqlValue) -> SqlValue:
    result = None
    try:
        result = compare(a, b)
    except ExecutionError:
        result = 1  # different types are never equal
    return None if result == 0 else a


def _fn_typeof(value: SqlValue) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool) or isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "real"
    if isinstance(value, str):
        return "text"
    return "blob"


#: Default scalar function registry (name -> callable).
BUILTIN_SCALARS: dict[str, Callable[..., SqlValue]] = {
    "length": _fn_length,
    "substr": _fn_substr,
    "instr": _fn_instr,
    "upper": _fn_upper,
    "lower": _fn_lower,
    "abs": _fn_abs,
    "coalesce": _fn_coalesce,
    "nullif": _fn_nullif,
    "typeof": _fn_typeof,
}


# -- aggregates --------------------------------------------------------------


class Aggregate:
    """Incremental aggregate computation over a group."""

    def __init__(
        self,
        kind: str,
        distinct: bool = False,
        separator: str = ",",
    ) -> None:
        self.kind = kind
        self.distinct = distinct
        self.separator = separator
        self._values: list[SqlValue] = []
        self._seen: set = set()
        self._count = 0

    def add(self, value: SqlValue) -> None:
        if self.kind == "count_star":
            self._count += 1
            return
        if value is None:
            return
        if self.distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._values.append(value)

    def result(self) -> SqlValue:
        if self.kind == "count_star":
            return self._count
        if self.kind == "count":
            return len(self._values)
        if not self._values:
            return None
        if self.kind == "sum":
            return sum(self._values)  # type: ignore[arg-type]
        if self.kind == "avg":
            return sum(self._values) / len(self._values)  # type: ignore[arg-type]
        if self.kind == "min":
            return min(self._values, key=sort_key)
        if self.kind == "max":
            return max(self._values, key=sort_key)
        if self.kind == "group_concat":
            # Like SQLite: NULLs skipped (in add()), concatenation in
            # arrival order, NULL when no non-NULL value was seen.
            return self.separator.join(
                v if isinstance(v, str) else _stringify(v)
                for v in self._values
            )
        raise ExecutionError(f"unknown aggregate {self.kind!r}")


#: Aggregate names as they appear in parsed FunctionExpr nodes.
AGGREGATE_NAMES = frozenset(
    {
        "count", "sum", "avg", "min", "max", "count distinct", "total",
        "group_concat",
    }
)


def make_aggregate(
    name: str, star: bool, separator: str = ","
) -> Aggregate:
    """Create an aggregate accumulator for a parsed function name."""
    if name == "count" and star:
        return Aggregate("count_star")
    if name == "count distinct":
        return Aggregate("count", distinct=True)
    if name == "total":
        return Aggregate("sum")
    if name == "group_concat":
        return Aggregate("group_concat", separator=separator)
    return Aggregate(name)


# -- LIKE --------------------------------------------------------------------


_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_match(value: SqlValue, pattern: SqlValue) -> Optional[bool]:
    """SQL LIKE with ``%``/``_`` wildcards, case-insensitive like SQLite."""
    if value is None or pattern is None:
        return None
    text = value if isinstance(value, str) else str(value)
    pat = pattern if isinstance(pattern, str) else str(pattern)
    compiled = _LIKE_CACHE.get(pat)
    if compiled is None:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pat
        )
        compiled = re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)
        if len(_LIKE_CACHE) < 1024:
            _LIKE_CACHE[pat] = compiled
    return compiled.match(text) is not None


# -- arithmetic -----------------------------------------------------------------


def arithmetic(op: str, left: SqlValue, right: SqlValue) -> SqlValue:
    """Numeric arithmetic (and ``||`` concatenation) with NULL propagation."""
    if left is None or right is None:
        return None
    if op == "||":
        lt = left if isinstance(left, str) else _stringify(left)
        rt = right if isinstance(right, str) else _stringify(right)
        return lt + rt
    if not isinstance(left, (int, float)) or not isinstance(
        right, (int, float)
    ):
        raise ExecutionError(
            f"arithmetic {op} on non-numeric values {left!r}, {right!r}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQLite yields NULL on division by zero
        if isinstance(left, int) and isinstance(right, int):
            return left // right if left % right == 0 else left / right
        return left / right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _stringify(value: SqlValue) -> str:
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    if isinstance(value, float) and value == int(value):
        return str(value)
    return str(value)


def iterable_to_set(values: Iterable[SqlValue]) -> set:
    """Hashable set of values for IN-list evaluation (NULLs dropped)."""
    return {v for v in values if v is not None}
