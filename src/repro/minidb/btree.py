"""An in-memory B+-tree used for minidb secondary indexes.

Keys are opaque comparable tuples (the caller passes total-order keys from
:func:`repro.minidb.values.row_sort_key`); each key maps to a small list of
row ids (duplicates allowed unless the index is unique — uniqueness is
enforced one level up, in :class:`repro.minidb.tables.TableIndex`).

The tree supports point lookup, ordered range scans with open/closed and
unbounded ends, insertion, and deletion of a (key, rowid) pair.  Leaves are
linked for cheap range scans.  The fanout is modest because nodes are
Python lists; the point of the structure is faithful *algorithmic*
behaviour (logarithmic descent, range scans touching only qualifying
leaves), which the engine's row-touch counters report.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

_ORDER = 64  # max keys per node


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list = []
        self.values: list[list[int]] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list = []
        self.children: list = []


class BPlusTree:
    """A B+-tree mapping comparable keys to lists of integer row ids."""

    def __init__(self) -> None:
        self._root: object = _Leaf()
        self._len = 0  # number of (key, rowid) pairs

    def __len__(self) -> int:
        return self._len

    # -- lookup ----------------------------------------------------------

    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node  # type: ignore[return-value]

    def get(self, key) -> list[int]:
        """Return the row ids stored under *key* (empty if absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def scan(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[object, int]]:
        """Yield (key, rowid) pairs with key in the given range, in order.

        ``None`` bounds are unbounded.  (Keys themselves are never None —
        SQL NULLs are encoded inside the caller's total-order key.)
        """
        if low is None:
            leaf = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            if low_inclusive:
                index = bisect.bisect_left(leaf.keys, low)
            else:
                index = bisect.bisect_right(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None:
                    if high_inclusive:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for rowid in leaf.values[index]:
                    yield key, rowid
                index += 1
            leaf = leaf.next
            index = 0

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node  # type: ignore[return-value]

    def items(self) -> Iterator[tuple[object, int]]:
        """Yield all (key, rowid) pairs in key order."""
        return self.scan()

    # -- insertion ----------------------------------------------------------

    def insert(self, key, rowid: int) -> None:
        """Insert a (key, rowid) pair (duplicates under one key allowed)."""
        result = self._insert(self._root, key, rowid)
        if result is not None:
            split_key, right = result
            new_root = _Internal()
            new_root.keys = [split_key]
            new_root.children = [self._root, right]
            self._root = new_root
        self._len += 1

    def _insert(self, node, key, rowid: int):
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(rowid)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [rowid])
            if len(node.keys) > _ORDER:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[index], key, rowid)
        if result is not None:
            split_key, right = result
            node.keys.insert(index, split_key)
            node.children.insert(index + 1, right)
            if len(node.keys) > _ORDER:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        split_key = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return split_key, right

    # -- deletion ------------------------------------------------------------

    def delete(self, key, rowid: int) -> bool:
        """Remove one (key, rowid) pair; returns False if not present.

        Underflow is tolerated (nodes may become sparse); the tree remains
        correct, and bulk deletions are rare in the workloads.  Empty key
        slots are removed so scans never yield dead keys.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        try:
            leaf.values[index].remove(rowid)
        except ValueError:
            return False
        if not leaf.values[index]:
            del leaf.keys[index]
            del leaf.values[index]
        self._len -= 1
        return True
