"""SQL value model for the minidb engine.

Values are plain Python objects: ``None`` (SQL NULL), ``int``/``float``
(NUMERIC), ``str`` (TEXT), ``bytes`` (BLOB).  Booleans appear transiently
during expression evaluation (with ``None`` standing for UNKNOWN in the
three-valued logic) and are stored as integers.

Two orderings exist on purpose:

* :func:`compare` — *strict* comparison used by ``WHERE`` predicates.
  Comparing NULL with anything yields UNKNOWN (``None``); comparing
  incompatible types (e.g. TEXT with BLOB) raises, which surfaces
  translation bugs instead of silently mis-sorting.
* :func:`sort_key` — a *total* order used by B-trees and ``ORDER BY``:
  NULL < numbers < text < blobs, mirroring SQLite's type ordering, so
  indexes can store heterogeneous columns (e.g. ``tag`` is NULL for text
  nodes).
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.errors import ExecutionError

SqlValue = Union[None, int, float, str, bytes]

#: Type-class ranks for the total order.
_RANK_NULL = 0
_RANK_NUMBER = 1
_RANK_TEXT = 2
_RANK_BLOB = 3


def type_rank(value: SqlValue) -> int:
    """Return the type-class rank of *value* in the total order."""
    if value is None:
        return _RANK_NULL
    if isinstance(value, bool):
        return _RANK_NUMBER
    if isinstance(value, (int, float)):
        return _RANK_NUMBER
    if isinstance(value, str):
        return _RANK_TEXT
    if isinstance(value, bytes):
        return _RANK_BLOB
    raise ExecutionError(f"unsupported SQL value {value!r}")


def sort_key(value: SqlValue) -> tuple:
    """Total-order key over all SQL values (used by indexes/ORDER BY)."""
    rank = type_rank(value)
    if rank == _RANK_NULL:
        return (rank, 0)
    if rank == _RANK_NUMBER:
        return (rank, float(value))  # type: ignore[arg-type]
    return (rank, value)


def row_sort_key(values: tuple) -> tuple:
    """Total-order key over a tuple of SQL values."""
    return tuple(sort_key(v) for v in values)


def compare(left: SqlValue, right: SqlValue) -> Optional[int]:
    """Strict three-valued comparison.

    Returns -1/0/1, or ``None`` (UNKNOWN) when either side is NULL.
    Raises :class:`ExecutionError` for cross-type comparisons other than
    int/float.
    """
    if left is None or right is None:
        return None
    lrank, rrank = type_rank(left), type_rank(right)
    if lrank != rrank:
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if left < right:  # type: ignore[operator]
        return -1
    if left > right:  # type: ignore[operator]
        return 1
    return 0


def is_true(value: Any) -> bool:
    """Collapse three-valued logic to WHERE semantics (UNKNOWN = false)."""
    return value is not None and bool(value)


def logical_and(left: Any, right: Any) -> Optional[bool]:
    """Kleene AND over {True, False, None}."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return bool(left) and bool(right)


def logical_or(left: Any, right: Any) -> Optional[bool]:
    """Kleene OR over {True, False, None}."""
    if is_true(left) or is_true(right):
        return True
    if left is None or right is None:
        return None
    return False


def logical_not(value: Any) -> Optional[bool]:
    """Kleene NOT over {True, False, None}."""
    if value is None:
        return None
    return not value


def cast_value(value: SqlValue, target: str) -> SqlValue:
    """Implement ``CAST(value AS target)`` with SQLite-style semantics."""
    if value is None:
        return None
    target = target.upper()
    if target in ("INTEGER", "INT"):
        try:
            if isinstance(value, bytes):
                value = value.decode("utf-8", "replace")
            return int(float(value))
        except (TypeError, ValueError):
            return 0
    if target == "REAL":
        try:
            if isinstance(value, bytes):
                value = value.decode("utf-8", "replace")
            return float(value)
        except (TypeError, ValueError):
            return 0.0
    if target == "TEXT":
        if isinstance(value, bytes):
            return value.decode("utf-8", "replace")
        if isinstance(value, float) and value == int(value):
            return str(value)  # keep SQLite's "1.0" style for floats
        return str(value)
    if target == "BLOB":
        if isinstance(value, bytes):
            return value
        return str(value).encode("utf-8")
    raise ExecutionError(f"unsupported CAST target {target!r}")
