"""The minidb engine facade.

:class:`MiniDb` glues the catalog, parser, planner, and executor together
behind a DB-API-flavoured interface::

    db = MiniDb()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.execute("INSERT INTO t VALUES (?, ?)", (1, "x"))
    result = db.execute("SELECT b FROM t WHERE a = ?", (1,))
    result.rows  # [("x",)]

Statement ASTs are cached per SQL text, and compiled SELECT plans are
cached per (SQL text, schema version), so the benchmark loops pay parsing
and planning once.  Scalar functions can be registered with
:meth:`create_function`, mirroring ``sqlite3.Connection.create_function``;
the engine pre-registers the Dewey helpers that the paper's Dewey
translation relies on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

from repro.concurrent.latch import RWLatch
from repro.core.dewey import (
    dewey_depth_bytes,
    dewey_local_bytes,
    dewey_parent_bytes,
    dewey_successor_bytes,
)
from repro.errors import ExecutionError
from repro.minidb.catalog import Catalog
from repro.minidb.executor import (
    CompiledSelect,
    ExecState,
    Result,
    StatementRunner,
    Stats,
)
from repro.minidb.expressions import BUILTIN_SCALARS
from repro.minidb.sql_ast import Select, Statement, Union_
from repro.minidb.sql_parser import parse_sql
from repro.obs import METRICS


class MiniDb:
    """One in-memory minidb database instance."""

    def __init__(self) -> None:
        #: Readers-writer latch: SELECTs run concurrently under the
        #: shared side; DML/DDL (and whole transactions, BEGIN through
        #: COMMIT/ROLLBACK) hold the exclusive side.  Heap tables carry
        #: a reference so unlatched mutations fail loudly.
        self.latch = RWLatch()
        self.catalog = Catalog(latch=self.latch)
        self.stats = Stats()
        self.functions: dict[str, Callable] = dict(BUILTIN_SCALARS)
        self._ast_cache: dict[str, Statement] = {}
        self._plan_cache: dict[tuple[str, int], CompiledSelect] = {}
        self._runner = StatementRunner(
            self.catalog, self.functions, self.stats
        )
        self._register_dewey_functions()

    def _register_dewey_functions(self) -> None:
        from repro.core.numeric import xpath_number_value
        from repro.core.ordpath import (
            ordpath_depth_bytes,
            ordpath_parent_bytes,
            ordpath_successor_bytes,
        )
        from repro.core.pathmatch import path_match

        self.create_function("dewey_parent", dewey_parent_bytes)
        self.create_function("dewey_successor", dewey_successor_bytes)
        self.create_function("dewey_local", dewey_local_bytes)
        self.create_function("dewey_depth", dewey_depth_bytes)
        self.create_function("ordpath_parent", ordpath_parent_bytes)
        self.create_function("ordpath_successor", ordpath_successor_bytes)
        self.create_function("ordpath_depth", ordpath_depth_bytes)
        self.create_function("xpath_number", xpath_number_value)
        self.create_function("path_match", path_match)

    def create_function(self, name: str, fn: Callable) -> None:
        """Register a scalar SQL function under *name* (lower-cased)."""
        self.functions[name.lower()] = fn
        self._plan_cache.clear()

    # -- execution --------------------------------------------------------

    def _parse(self, sql: str) -> Statement:
        statement = self._ast_cache.get(sql)
        if statement is None:
            statement = parse_sql(sql)
            if len(self._ast_cache) < 4096:
                self._ast_cache[sql] = statement
        return statement

    def execute(
        self,
        sql: Union[str, Statement],
        params: Sequence = (),
        cache_key: Optional[str] = None,
    ) -> Result:
        """Execute one statement; returns a :class:`Result`.

        *sql* may be a pre-built statement node instead of SQL text
        (the translator's minidb dialect hands those over directly);
        ``cache_key`` lets such statements share the physical-plan
        cache that text statements key by their SQL.
        """
        if isinstance(sql, str):
            keyword = sql.strip().rstrip(";").upper()
            if keyword in ("BEGIN", "BEGIN TRANSACTION"):
                self.begin()
                return Result()
            if keyword == "COMMIT":
                self.commit()
                return Result()
            if keyword == "ROLLBACK":
                self.rollback()
                return Result()
        statement = self._parse(sql) if isinstance(sql, str) else sql
        params = tuple(params)
        if isinstance(statement, (Select, Union_)):
            with self.latch.read():
                text_key = sql if isinstance(sql, str) else cache_key
                if text_key is not None:
                    key = (text_key, self.catalog.version)
                    plan = self._plan_cache.get(key)
                    if plan is None:
                        plan = self._runner.compiler().compile_select(
                            statement
                        )
                        if len(self._plan_cache) < 4096:
                            self._plan_cache[key] = plan
                else:
                    plan = self._runner.compiler().compile_select(
                        statement
                    )
                self.stats.statements += 1
                state = ExecState(params=params, stats=self.stats)
                rows = list(plan.rows({}, state))
                METRICS.inc("minidb.selects")
                METRICS.inc("minidb.rows_returned", len(rows))
                return Result(plan.columns, rows, -1)
        with self.latch.write():
            METRICS.inc("minidb.dml")
            return self._runner.run(statement, params)

    def executemany(
        self, sql: str, param_rows: Iterable[Sequence]
    ) -> Result:
        """Execute a DML statement once per parameter row."""
        statement = self._parse(sql)
        if isinstance(statement, (Select, Union_)):
            raise ExecutionError("executemany() does not accept SELECT")
        total = 0
        with self.latch.write():
            for params in param_rows:
                result = self._runner.run(statement, tuple(params))
                if result.rowcount > 0:
                    total += result.rowcount
        return Result(rowcount=total)

    def executescript(self, script: str) -> None:
        """Execute ``;``-separated statements (DDL bootstrap helper)."""
        for piece in script.split(";"):
            text = piece.strip()
            if text:
                self.execute(text)

    def explain(self, sql: str) -> list[str]:
        """Describe the access plan of a SELECT without executing it.

        One line per FROM item: the table, the index chosen (with its
        equality/IN/range usage) or FULL SCAN, and the residual filter
        count.  Derived tables and UNION arms are indented.
        """
        statement = self._parse(sql)
        if not isinstance(statement, (Select, Union_)):
            raise ExecutionError("explain() only accepts SELECT")
        plan = self._runner.compiler().compile_select(statement)
        return list(plan.plan_lines)

    # -- transactions ---------------------------------------------------------

    def begin(self) -> None:
        """Start a transaction: row mutations are journalled for undo.

        Acquires the write latch, held until :meth:`commit` or
        :meth:`rollback` — a second writer blocks here, and readers
        wait for the commit instead of observing a half-applied
        transaction.
        """
        self.latch.acquire_write()
        if self._runner.journal is not None:
            self.latch.release_write()
            raise ExecutionError("transaction already in progress")
        self._runner.journal = []

    def commit(self) -> None:
        """Commit: discard the undo journal (changes are in place)."""
        if self._runner.journal is None:
            raise ExecutionError("no transaction in progress")
        self._runner.journal = None
        self.latch.release_write()

    def rollback(self) -> None:
        """Undo every row mutation made since :meth:`begin`."""
        journal = self._runner.journal
        if journal is None:
            raise ExecutionError("no transaction in progress")
        self._runner.journal = None
        try:
            for kind, table, rowid, old_row in reversed(journal):
                if kind == "insert":
                    table.delete(rowid)
                elif kind == "delete":
                    # Restore the tombstoned slot and its index entries.
                    table.rows[rowid] = old_row
                    table.live_count += 1
                    for index in table.indexes:
                        index.insert(old_row, rowid)
                else:  # update
                    table.update(rowid, old_row)
        finally:
            self.latch.release_write()

    @property
    def in_transaction(self) -> bool:
        return self._runner.journal is not None

    # -- persistence --------------------------------------------------------

    def save(self, path) -> None:
        """Write a snapshot of this database to *path*.

        Takes the read latch so the snapshot is a consistent cut even
        while writer threads are active.  See
        :mod:`repro.minidb.persist` for the format.
        """
        from repro.minidb import persist

        with self.latch.read():
            persist.save(self, path)

    @classmethod
    def open(cls, path) -> "MiniDb":
        """Load a database from a snapshot written by :meth:`save`."""
        from repro.minidb import persist

        return persist.load(path)

    # -- introspection -----------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(self.catalog.tables)

    def row_count(self, table: str) -> int:
        return len(self.catalog.get_table(table))

    def reset_stats(self) -> None:
        self.stats = Stats()
        self._runner.stats = self.stats
