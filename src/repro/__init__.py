"""repro: ordered XML in a relational database system.

A full reproduction of *"Storing and querying ordered XML using a
relational database system"* (Tatarinov et al., SIGMOD 2002): the three
order encodings (Global, Local, Dewey), XML shredding into relations,
XPath-to-SQL translation for ordered queries, order-maintaining updates,
and document reconstruction — over either stdlib sqlite3 or the included
from-scratch relational engine (:mod:`repro.minidb`).

Quickstart
----------
>>> from repro import XmlStore
>>> store = XmlStore(backend="sqlite", encoding="dewey")
>>> doc = store.load("<bib><book><title>TCP/IP</title></book></bib>")
>>> [i.value for i in store.query("/bib/book[1]/title/text()", doc)]
['TCP/IP']
"""

from repro.core.dewey import DeweyKey
from repro.core.encodings import get_encoding
from repro.core.updates import UpdateReport
from repro.backends import make_backend
from repro.store import ResultItem, XmlStore
from repro.xmldom import parse, serialize
from repro.xpath import evaluate, parse_xpath

__version__ = "1.0.0"

__all__ = [
    "DeweyKey",
    "ResultItem",
    "UpdateReport",
    "XmlStore",
    "evaluate",
    "get_encoding",
    "make_backend",
    "parse",
    "parse_xpath",
    "serialize",
    "__version__",
]
