"""Deterministic synthetic XML document generators.

The paper's experiments ran over generated XML documents; the two corpora
here reproduce the tree-shape regimes that matter for order encodings:

* :func:`article_corpus` — *document-centric*: deep-ish trees with wide
  ordered sibling lists (sections, paragraphs) and mixed text, where
  sibling order carries meaning (the paper's motivating scenario);
* :func:`catalog_corpus` — *data-centric*: shallow, regular records with
  numeric fields and attributes, the classic shredding workload.

All generation is seeded and reproducible.  Value-bearing fields (title,
name, price, year, …) always have *simple content* (a single text child),
so the stored direct-text value equals the XPath string-value and SQL
value predicates agree with the native evaluator (see DESIGN.md).

:func:`random_document` produces small irregular trees for differential
and property tests.
"""

from __future__ import annotations

import random

from repro.xmldom.dom import Comment, Document, Element, Text

_WORDS = (
    "order data xml relational query encoding dewey global local update "
    "document sibling ancestor index join translation shred node tree "
    "storage system paper result table figure test bench author value"
).split()


def _sentence(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def _simple(tag: str, text: str) -> Element:
    element = Element(tag)
    element.append(Text(text))
    return element


def article_corpus(
    articles: int = 20,
    sections: int = 4,
    paragraphs: int = 5,
    max_authors: int = 3,
    seed: int = 7,
) -> Document:
    """A document-centric journal: ordered sections and paragraphs."""
    rng = random.Random(seed)
    doc = Document()
    journal = Element("journal")
    doc.append(journal)
    for a in range(1, articles + 1):
        article = Element(
            "article",
            {"id": f"a{a}", "year": str(rng.randint(1992, 2002))},
        )
        journal.append(article)
        article.append(_simple("title", f"Article {a}: "
                               + _sentence(rng, 3)))
        for author_index in range(rng.randint(1, max_authors)):
            article.append(
                _simple("author", f"Author{(a * 7 + author_index) % 50}")
            )
        for s in range(1, sections + 1):
            section = Element("section", {"no": str(s)})
            article.append(section)
            section.append(_simple("title", _sentence(rng, 2)))
            for _p in range(rng.randint(1, paragraphs)):
                section.append(
                    _simple("para", _sentence(rng, rng.randint(4, 12)))
                )
    return doc


def catalog_corpus(
    products: int = 50,
    max_reviews: int = 3,
    seed: int = 11,
) -> Document:
    """A data-centric product catalogue with numeric fields."""
    rng = random.Random(seed)
    doc = Document()
    catalog = Element("catalog")
    doc.append(catalog)
    categories = ("books", "music", "tools", "games")
    for p in range(1, products + 1):
        product = Element(
            "product",
            {"sku": f"p{p:05d}", "category": rng.choice(categories)},
        )
        catalog.append(product)
        product.append(_simple("name", f"Product {p} "
                               + _sentence(rng, 2)))
        product.append(
            _simple("price", f"{rng.randint(1, 500)}.{rng.randint(0,99):02d}")
        )
        product.append(_simple("stock", str(rng.randint(0, 1000))))
        for _r in range(rng.randint(0, max_reviews)):
            review = Element("review", {"rating": str(rng.randint(1, 5))})
            product.append(review)
            review.append(
                _simple("comment", _sentence(rng, rng.randint(3, 8)))
            )
    return doc


def sized_article_corpus(target_nodes: int, seed: int = 7) -> Document:
    """An article corpus scaled to roughly *target_nodes* tree nodes.

    One article contributes about ``2 + authors + sections * (2 + 2 *
    paras_avg)`` nodes; we solve for the article count with the default
    shape parameters.
    """
    per_article = 2 + 2 + 4 * (2 + 2 * 3)  # ~36 with defaults
    articles = max(1, target_nodes // per_article)
    return article_corpus(articles=articles, seed=seed)


def random_document(
    seed: int,
    max_depth: int = 5,
    max_children: int = 4,
    tags: tuple[str, ...] = ("a", "b", "c", "d"),
    allow_comments: bool = True,
    attribute_names: tuple[str, ...] = ("id", "x", "y"),
) -> Document:
    """A small random tree for differential and property tests.

    Values and attributes are drawn from small alphabets so random
    queries actually hit something.
    """
    rng = random.Random(seed)
    doc = Document()
    root = Element(rng.choice(tags))
    doc.append(root)

    def fill(element: Element, depth: int) -> None:
        for name in attribute_names:
            if rng.random() < 0.3:
                element.set(name, str(rng.randint(0, 9)))
        n_children = rng.randint(0, max_children)
        for _ in range(n_children):
            roll = rng.random()
            # Never create adjacent text siblings: the XPath data model
            # (and any parse/serialize round trip) merges them.
            last_is_text = bool(element.children) and isinstance(
                element.children[-1], Text
            )
            if (depth >= max_depth or roll < 0.3) and not last_is_text:
                # Mix non-numeric text in: XPath number() of "t11" is
                # NaN while SQL CAST would say 0, so numeric-predicate
                # queries over these values keep the translators honest
                # (the CAST-vs-NaN regression of PR 8).
                number = rng.randint(0, 99)
                text = (
                    f"t{number}" if rng.random() < 0.3 else str(number)
                )
                element.append(Text(text))
            elif allow_comments and roll < 0.35:
                element.append(Comment(_sentence(rng, 2)))
            elif depth < max_depth:
                child = Element(rng.choice(tags))
                element.append(child)
                fill(child, depth + 1)

    fill(root, 1)
    return doc


def document_stats(doc: Document) -> dict[str, int]:
    """Node count, element count, and max depth of a document."""
    nodes = 0
    elements = 0
    max_depth = 0
    stack: list[tuple[object, int]] = [(c, 1) for c in doc.children]
    while stack:
        node, depth = stack.pop()
        nodes += 1
        max_depth = max(max_depth, depth)
        if isinstance(node, Element):
            elements += 1
            stack.extend((c, depth + 1) for c in node.children)
    return {"nodes": nodes, "elements": elements, "max_depth": max_depth}
