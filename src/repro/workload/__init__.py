"""Workloads: document generators, query suites, update streams, mixes."""

from repro.workload.docgen import (
    article_corpus,
    catalog_corpus,
    document_stats,
    random_document,
    sized_article_corpus,
)
from repro.workload.mixer import (
    ConcurrentRunResult,
    ConcurrentWorkload,
    MixedWorkload,
    MixedWorkloadResult,
)
from repro.workload.queries import (
    ALL_QUERIES,
    CATALOG_QUERIES,
    ORDERED_QUERIES,
    UNORDERED_QUERIES,
    WorkloadQuery,
)
from repro.workload.update_ops import (
    UpdateStreamResult,
    UpdateWorkload,
    make_fragment,
)

__all__ = [
    "ALL_QUERIES",
    "CATALOG_QUERIES",
    "ConcurrentRunResult",
    "ConcurrentWorkload",
    "MixedWorkload",
    "MixedWorkloadResult",
    "ORDERED_QUERIES",
    "UNORDERED_QUERIES",
    "UpdateStreamResult",
    "UpdateWorkload",
    "WorkloadQuery",
    "article_corpus",
    "catalog_corpus",
    "document_stats",
    "make_fragment",
    "random_document",
    "sized_article_corpus",
]
