"""Query workloads for the benchmark suite.

Two suites over the article corpus, mirroring the paper's split:

* ``ORDERED_QUERIES`` (Q1–Q8) exercise order: positional predicates,
  ``last()``, sibling axes, and the document-order axes ``following``/
  ``preceding`` — where the encodings differ;
* ``UNORDERED_QUERIES`` (U1–U4) are plain structural/value queries where
  the encodings should be comparable.

``CATALOG_QUERIES`` give the data-centric examples a realistic mix.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadQuery:
    """A named query with the feature class it exercises."""

    id: str
    xpath: str
    feature: str
    #: Whether the Local encoding can translate it (document-order
    #: positional predicates cannot be expressed with local order).
    local_translatable: bool = True


ORDERED_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery(
        "Q1", "/journal/article[5]/title", "positional child"
    ),
    WorkloadQuery(
        "Q2", "/journal/article/section[2]/para[1]",
        "nested positional",
    ),
    WorkloadQuery(
        "Q3", "/journal/article/section[position() <= 3]/title",
        "positional range",
    ),
    WorkloadQuery(
        "Q4", "/journal/article/author[last()]", "last()"
    ),
    WorkloadQuery(
        "Q5",
        "/journal/article/section[1]/following-sibling::section",
        "following-sibling",
    ),
    WorkloadQuery(
        "Q6",
        "/journal/article/section[3]/preceding-sibling::section/title",
        "preceding-sibling",
    ),
    WorkloadQuery(
        "Q7", "/journal/article[3]/following::author",
        "following (document order)",
    ),
    WorkloadQuery(
        "Q8", "/journal/article[2]/preceding::title",
        "preceding (document order)",
    ),
)

UNORDERED_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("U1", "/journal/article/title", "simple path"),
    WorkloadQuery("U2", "//para", "descendant"),
    WorkloadQuery(
        "U3", "//article[@year >= 1998]/title", "attribute value filter"
    ),
    WorkloadQuery("U4", "//section[para]/title", "existential"),
)

CATALOG_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("C1", "/catalog/product/name", "simple path"),
    WorkloadQuery("C2", "//product[price < 50]/name", "value filter"),
    WorkloadQuery(
        "C3", "//product[review]/review[1]/comment", "positional"
    ),
    WorkloadQuery(
        "C4", "//product[@category = 'books']/price", "attribute filter"
    ),
    WorkloadQuery(
        "C5", "//review[@rating >= 4]/comment/text()", "deep attribute"
    ),
)

ALL_QUERIES = ORDERED_QUERIES + UNORDERED_QUERIES
