"""Mixed and concurrent workload drivers (experiments E7 and E14).

The paper's headline trade-off only appears under a *mix*: Global wins
when the workload is read-only, Local wins when it is update-heavy, and
Dewey holds up across the middle.  :class:`MixedWorkload` interleaves
queries and ordered insertions at a configurable update fraction, with a
seeded schedule so every encoding sees the same operation sequence.

:class:`ConcurrentWorkload` drives one store from many threads — N
readers plus an optional single writer — and measures ops/s, which is
how experiment E14 compares the pooled backend against the serialized
shared-connection baseline.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import TranslationError
from repro.workload.queries import WorkloadQuery
from repro.workload.update_ops import UpdateWorkload, make_fragment

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import XmlStore


@dataclass
class MixedWorkloadResult:
    """Timing breakdown of one mixed run."""

    total_operations: int
    query_operations: int
    update_operations: int
    query_seconds: float
    update_seconds: float
    rows_relabeled: int

    @property
    def total_seconds(self) -> float:
        return self.query_seconds + self.update_seconds


class MixedWorkload:
    """Runs an interleaved query/update schedule against one store."""

    def __init__(
        self,
        store: "XmlStore",
        doc: int,
        queries: Sequence[WorkloadQuery],
        insert_parent_xpath: str,
        seed: int = 5,
    ) -> None:
        self.store = store
        self.doc = doc
        self.queries = [
            q
            for q in queries
            if q.local_translatable or store.encoding.name != "local"
        ]
        self.updater = UpdateWorkload(store, doc, seed=seed)
        self.insert_parents = self.updater.container_ids(
            insert_parent_xpath
        )
        if not self.insert_parents:
            raise ValueError(
                f"no insertion parents match {insert_parent_xpath!r}"
            )
        self.seed = seed

    def run(
        self, operations: int, update_fraction: float
    ) -> MixedWorkloadResult:
        """Run *operations* ops, *update_fraction* of them insertions.

        The schedule (which op happens when, which query, which parent)
        depends only on the seed and the arguments — not on the store —
        so runs are comparable across encodings and backends.
        """
        rng = random.Random((self.seed, operations, update_fraction).__hash__())
        query_seconds = 0.0
        update_seconds = 0.0
        n_queries = 0
        n_updates = 0
        relabeled = 0
        for _step in range(operations):
            if rng.random() < update_fraction:
                parent = rng.choice(self.insert_parents)
                where = rng.choice(("first", "middle", "last"))
                started = time.perf_counter()
                report = self.updater.insert_at(parent, where)
                update_seconds += time.perf_counter() - started
                relabeled += report.relabeled
                n_updates += 1
            else:
                query = rng.choice(self.queries)
                started = time.perf_counter()
                self.store.query(query.xpath, self.doc)
                query_seconds += time.perf_counter() - started
                n_queries += 1
        return MixedWorkloadResult(
            total_operations=operations,
            query_operations=n_queries,
            update_operations=n_updates,
            query_seconds=query_seconds,
            update_seconds=update_seconds,
            rows_relabeled=relabeled,
        )


# -- concurrent serving (experiment E14) ---------------------------------


@dataclass
class ConcurrentRunResult:
    """Throughput of one timed N-reader / single-writer run."""

    readers: int
    writer: bool
    duration_seconds: float
    read_operations: int
    write_operations: int
    read_errors: list = field(default_factory=list)
    write_error: Optional[str] = None

    @property
    def read_ops_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.read_operations / self.duration_seconds

    @property
    def write_ops_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.write_operations / self.duration_seconds


class ConcurrentWorkload:
    """N reader threads (plus an optional single writer) on one store.

    Readers run pre-translated SQL directly against the backend — the
    translation happens once up front, like a server-side statement
    cache — so a run measures storage-engine concurrency, not repeated
    XPath compilation, and the pooled and serialized modes execute the
    byte-identical statement stream.  The writer inserts small
    fragments under one parent — appended at the tail by default
    (cheap under every encoding), or at the front
    (``writer_position="front"``) to force each insert through the
    encoding's relabeling path and stretch the write transactions —
    going through the full ``store.updates.insert`` path so it flows
    through the write queue when one is attached.
    """

    def __init__(
        self,
        store: "XmlStore",
        doc: int,
        queries: Sequence[WorkloadQuery],
        insert_parent_xpath: Optional[str] = None,
        seed: int = 7,
        writer_position: str = "append",
    ) -> None:
        if writer_position not in ("append", "front"):
            raise ValueError(
                "writer_position must be 'append' or 'front', "
                f"got {writer_position!r}"
            )
        self.store = store
        self.doc = doc
        self.seed = seed
        self.writer_position = writer_position
        self.statements: list[tuple[str, tuple]] = []
        for query in queries:
            if not query.local_translatable and store.encoding.name == "local":
                continue
            try:
                translated = store.translate(query.xpath, doc)
            except TranslationError:
                continue
            self.statements.append(
                (translated.sql, tuple(translated.params))
            )
        if not self.statements:
            raise ValueError("no translatable queries for this encoding")
        if insert_parent_xpath is None:
            # Default to the document's root element, which every
            # document has — appends there are cheap for all encodings.
            parents = [
                row["id"]
                for row in store.fetch_children(doc, 0)
                if row["kind"] == "elem"
            ]
        else:
            parents = [
                item.node_id
                for item in store.query(insert_parent_xpath, doc)
            ]
        if not parents:
            raise ValueError(
                f"no insertion parents match {insert_parent_xpath!r}"
            )
        self.insert_parent = parents[0]
        self._next_index = len(
            store.fetch_children(doc, self.insert_parent)
        )

    def run(
        self, readers: int, seconds: float, writer: bool = True
    ) -> ConcurrentRunResult:
        """Run *readers* query threads (+1 writer) for *seconds*."""
        stop = threading.Event()
        barrier = threading.Barrier(readers + (1 if writer else 0) + 1)
        read_counts = [0] * readers
        read_errors: list = []
        errors_lock = threading.Lock()
        write_count = [0]
        write_error: list = []

        def read_loop(slot: int) -> None:
            rng = random.Random((self.seed, slot).__hash__())
            statements = self.statements
            backend = self.store.backend
            barrier.wait()
            count = 0
            try:
                while not stop.is_set():
                    sql, params = statements[
                        rng.randrange(len(statements))
                    ]
                    backend.execute(sql, params)
                    count += 1
            except Exception as exc:  # a dead reader fails the run
                with errors_lock:
                    read_errors.append(f"reader {slot}: {exc!r}")
            finally:
                read_counts[slot] = count

        def write_loop() -> None:
            front = self.writer_position == "front"
            barrier.wait()
            try:
                while not stop.is_set():
                    fragment = make_fragment(
                        "srv", payload_nodes=2
                    )
                    self.store.updates.insert(
                        self.doc,
                        self.insert_parent,
                        0 if front else self._next_index,
                        fragment,
                    )
                    self._next_index += 1
                    write_count[0] += 1
            except Exception as exc:
                write_error.append(repr(exc))

        threads = [
            threading.Thread(target=read_loop, args=(slot,), daemon=True)
            for slot in range(readers)
        ]
        if writer:
            threads.append(
                threading.Thread(target=write_loop, daemon=True)
            )
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        time.sleep(seconds)
        stop.set()
        elapsed = time.perf_counter() - started
        for thread in threads:
            thread.join()
        return ConcurrentRunResult(
            readers=readers,
            writer=writer,
            duration_seconds=elapsed,
            read_operations=sum(read_counts),
            write_operations=write_count[0],
            read_errors=read_errors,
            write_error=write_error[0] if write_error else None,
        )
