"""Mixed query/update workload driver (experiment E7).

The paper's headline trade-off only appears under a *mix*: Global wins
when the workload is read-only, Local wins when it is update-heavy, and
Dewey holds up across the middle.  :class:`MixedWorkload` interleaves
queries and ordered insertions at a configurable update fraction, with a
seeded schedule so every encoding sees the same operation sequence.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.workload.queries import WorkloadQuery
from repro.workload.update_ops import UpdateWorkload

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import XmlStore


@dataclass
class MixedWorkloadResult:
    """Timing breakdown of one mixed run."""

    total_operations: int
    query_operations: int
    update_operations: int
    query_seconds: float
    update_seconds: float
    rows_relabeled: int

    @property
    def total_seconds(self) -> float:
        return self.query_seconds + self.update_seconds


class MixedWorkload:
    """Runs an interleaved query/update schedule against one store."""

    def __init__(
        self,
        store: "XmlStore",
        doc: int,
        queries: Sequence[WorkloadQuery],
        insert_parent_xpath: str,
        seed: int = 5,
    ) -> None:
        self.store = store
        self.doc = doc
        self.queries = [
            q
            for q in queries
            if q.local_translatable or store.encoding.name != "local"
        ]
        self.updater = UpdateWorkload(store, doc, seed=seed)
        self.insert_parents = self.updater.container_ids(
            insert_parent_xpath
        )
        if not self.insert_parents:
            raise ValueError(
                f"no insertion parents match {insert_parent_xpath!r}"
            )
        self.seed = seed

    def run(
        self, operations: int, update_fraction: float
    ) -> MixedWorkloadResult:
        """Run *operations* ops, *update_fraction* of them insertions.

        The schedule (which op happens when, which query, which parent)
        depends only on the seed and the arguments — not on the store —
        so runs are comparable across encodings and backends.
        """
        rng = random.Random((self.seed, operations, update_fraction).__hash__())
        query_seconds = 0.0
        update_seconds = 0.0
        n_queries = 0
        n_updates = 0
        relabeled = 0
        for _step in range(operations):
            if rng.random() < update_fraction:
                parent = rng.choice(self.insert_parents)
                where = rng.choice(("first", "middle", "last"))
                started = time.perf_counter()
                report = self.updater.insert_at(parent, where)
                update_seconds += time.perf_counter() - started
                relabeled += report.relabeled
                n_updates += 1
            else:
                query = rng.choice(self.queries)
                started = time.perf_counter()
                self.store.query(query.xpath, self.doc)
                query_seconds += time.perf_counter() - started
                n_queries += 1
        return MixedWorkloadResult(
            total_operations=operations,
            query_operations=n_queries,
            update_operations=n_updates,
            query_seconds=query_seconds,
            update_seconds=update_seconds,
            rows_relabeled=relabeled,
        )
