"""Update workloads: reproducible streams of ordered insert/delete ops.

The generators pick *where* to insert (first / middle / last sibling
position, or uniformly at random) against a live store, so the same seed
produces the same logical operation sequence for every encoding — the
apples-to-apples comparison experiments E5/E6/E7/E10 need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.updates import UpdateReport
from repro.xmldom.dom import Element, Text

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import XmlStore


def make_fragment(tag: str = "new", payload_nodes: int = 2) -> Element:
    """A small insertable fragment with ~payload_nodes+1 nodes."""
    root = Element(tag, {"generated": "1"})
    for index in range(max(0, payload_nodes // 2)):
        child = Element("v")
        child.append(Text(f"value-{index}"))
        root.append(child)
    return root


@dataclass
class UpdateStreamResult:
    """Aggregated cost of one stream of update operations."""

    operations: int = 0
    inserted: int = 0
    deleted: int = 0
    relabeled: int = 0
    reports: list[UpdateReport] = field(default_factory=list)

    def add(self, report: UpdateReport) -> None:
        self.operations += 1
        self.inserted += report.inserted
        self.deleted += report.deleted
        self.relabeled += report.relabeled
        self.reports.append(report)


class UpdateWorkload:
    """Drives update operations against one store/document."""

    def __init__(self, store: "XmlStore", doc: int, seed: int = 3) -> None:
        self.store = store
        self.doc = doc
        self.rng = random.Random(seed)

    # -- parent selection ----------------------------------------------

    def container_ids(self, xpath: str) -> list[int]:
        """Node ids matching *xpath* (insertion targets)."""
        return [item.node_id for item in self.store.query(xpath, self.doc)]

    def _index_for(self, parent_id: int, where: str) -> int:
        children = self.store.fetch_children(self.doc, parent_id)
        if where == "first":
            return 0
        if where == "last":
            return len(children)
        if where == "middle":
            return len(children) // 2
        return self.rng.randint(0, len(children))

    # -- operations ------------------------------------------------------

    def insert_at(
        self,
        parent_id: int,
        where: str,
        payload_nodes: int = 2,
        tag: str = "new",
    ) -> UpdateReport:
        """One insert at a named position under *parent_id*."""
        index = self._index_for(parent_id, where)
        fragment = make_fragment(tag, payload_nodes)
        return self.store.updates.insert(
            self.doc, parent_id, index, fragment
        )

    def insert_stream(
        self,
        parent_id: int,
        where: str,
        count: int,
        payload_nodes: int = 2,
    ) -> UpdateStreamResult:
        """*count* inserts at the same named position."""
        result = UpdateStreamResult()
        for _ in range(count):
            result.add(self.insert_at(parent_id, where, payload_nodes))
        return result

    def delete_random(
        self, candidates_xpath: str
    ) -> Optional[UpdateReport]:
        """Delete a random node matching *candidates_xpath*."""
        ids = self.container_ids(candidates_xpath)
        if not ids:
            return None
        return self.store.updates.delete(self.doc, self.rng.choice(ids))
