"""XPath substrate: lexer, parser, AST, and the native evaluator oracle."""

from repro.xpath.ast import (
    AXES,
    BinaryOp,
    Expr,
    FunctionCall,
    LocationPath,
    NodeTest,
    NumberLiteral,
    PathExpr,
    REVERSE_AXES,
    Step,
    StringLiteral,
    UnionPath,
    child_step,
    position_eq,
)
from repro.xpath.evaluator import (
    AttributeNode,
    Evaluator,
    evaluate,
    string_value,
    to_boolean,
    to_number,
    to_string,
)
from repro.xpath.parser import parse_xpath

__all__ = [
    "AXES",
    "AttributeNode",
    "BinaryOp",
    "Evaluator",
    "Expr",
    "FunctionCall",
    "LocationPath",
    "NodeTest",
    "NumberLiteral",
    "PathExpr",
    "REVERSE_AXES",
    "Step",
    "StringLiteral",
    "UnionPath",
    "child_step",
    "evaluate",
    "parse_xpath",
    "position_eq",
    "string_value",
    "to_boolean",
    "to_number",
    "to_string",
]
