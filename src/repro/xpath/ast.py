"""Abstract syntax tree for the supported XPath 1.0 fragment.

The fragment covers what the paper's ordered-query workload needs:

* absolute and relative location paths with ``/`` and ``//``;
* the thirteen axes that matter for ordered XML — ``child``,
  ``descendant``, ``descendant-or-self``, ``self``, ``parent``,
  ``ancestor``, ``ancestor-or-self``, ``attribute``,
  ``following-sibling``, ``preceding-sibling``, ``following`` and
  ``preceding`` — plus the usual abbreviations;
* node tests: names, ``*``, ``text()``, ``node()``, ``comment()``;
* predicates: positional (``[3]``, ``[position() <= 5]``, ``[last()]``),
  existence (``[author]``, ``[@id]``), value comparisons
  (``[@id = "x7"]``, ``[price < 10]``), boolean connectives
  (``and``/``or``/``not(..)``), and ``count()``/``contains()``/
  ``starts-with()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

#: Axes in the supported fragment.
AXES = frozenset(
    {
        "child",
        "descendant",
        "descendant-or-self",
        "self",
        "parent",
        "ancestor",
        "ancestor-or-self",
        "attribute",
        "following-sibling",
        "preceding-sibling",
        "following",
        "preceding",
    }
)

#: Axes whose natural order is reverse document order (position() counts
#: backwards from the context node).
REVERSE_AXES = frozenset(
    {"parent", "ancestor", "ancestor-or-self", "preceding-sibling", "preceding"}
)


@dataclass(frozen=True)
class NodeTest:
    """A node test within a step.

    ``kind`` is one of ``"name"`` (match elements/attributes with ``name``),
    ``"wildcard"`` (``*``), ``"text"`` (``text()``), ``"comment"``
    (``comment()``), or ``"node"`` (``node()``).
    """

    kind: str
    name: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "name":
            return self.name or ""
        if self.kind == "wildcard":
            return "*"
        return f"{self.kind}()"


# ---------------------------------------------------------------------------
# Expressions (predicate bodies)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumberLiteral:
    """A numeric literal, e.g. ``3`` or ``2.5``."""

    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class StringLiteral:
    """A quoted string literal."""

    value: str

    def __str__(self) -> str:
        if '"' in self.value:
            return f"'{self.value}'"
        return f'"{self.value}"'


@dataclass(frozen=True)
class FunctionCall:
    """A call to one of the supported functions."""

    name: str
    args: tuple["Expr", ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class BinaryOp:
    """A binary operation: comparison or boolean connective."""

    op: str  # one of =, !=, <, <=, >, >=, and, or
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class PathExpr:
    """A relative location path used as an expression inside a predicate."""

    path: "LocationPath"

    def __str__(self) -> str:
        return str(self.path)


Expr = Union[NumberLiteral, StringLiteral, FunctionCall, BinaryOp, PathExpr]


# ---------------------------------------------------------------------------
# Location paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::node-test[predicate]*``."""

    axis: str
    test: NodeTest
    predicates: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        if self.axis == "child":
            return f"{self.test}{preds}"
        if self.axis == "attribute":
            return f"@{self.test}{preds}"
        return f"{self.axis}::{self.test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """A sequence of steps, optionally rooted at the document node."""

    steps: tuple[Step, ...]
    absolute: bool = False

    def __str__(self) -> str:
        body = "/".join(str(s) for s in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True)
class UnionPath:
    """A top-level union of location paths: ``path1 | path2 | ...``."""

    paths: tuple[LocationPath, ...]

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.paths)


def child_step(
    name: str, *predicates: Expr, axis: str = "child"
) -> Step:
    """Convenience constructor used heavily by tests and workloads."""
    return Step(axis, NodeTest("name", name), tuple(predicates))


def position_eq(n: int) -> Expr:
    """The predicate ``[n]`` in explicit form (``position() = n``)."""
    return BinaryOp("=", FunctionCall("position"), NumberLiteral(float(n)))
