"""Recursive-descent parser for the XPath fragment.

Produces the AST in :mod:`repro.xpath.ast`.  The grammar is the classic
abbreviated XPath 1.0 syntax restricted to location paths, predicates and
the supported function library (``position``, ``last``, ``count``, ``not``,
``contains``, ``starts-with``, ``text`` via node tests).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AXES,
    BinaryOp,
    Expr,
    FunctionCall,
    LocationPath,
    NodeTest,
    NumberLiteral,
    Step,
    StringLiteral,
    PathExpr,
    UnionPath,
)
from repro.xpath.lexer import XPathToken, tokenize

#: Functions callable in predicates.  ``text``/``node``/``comment`` are
#: node tests, not functions, and are handled in step parsing.
FUNCTIONS = frozenset(
    {"position", "last", "count", "not", "contains", "starts-with"}
)

_COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">")

_NODE_TYPE_TESTS = {"text", "node", "comment"}


def parse_xpath(expression: str) -> Union[LocationPath, UnionPath]:
    """Parse *expression* into a location path (or a top-level union).

    Raises :class:`XPathSyntaxError` for malformed input.
    """
    parser = _Parser(tokenize(expression), expression)
    paths = [parser.parse_path()]
    while parser._accept("|"):
        paths.append(parser.parse_path())
    parser.expect_end()
    if len(paths) == 1:
        return paths[0]
    return UnionPath(tuple(paths))


class _Parser:
    def __init__(self, tokens: list[XPathToken], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[XPathToken]:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> XPathToken:
        token = self._peek()
        if token is None:
            raise XPathSyntaxError("unexpected end of expression",
                                   len(self._source))
        self._pos += 1
        return token

    def _accept(self, kind: str) -> Optional[XPathToken]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._pos += 1
            return token
        return None

    def _expect(self, kind: str) -> XPathToken:
        token = self._peek()
        if token is None or token.kind != kind:
            at = token.position if token else len(self._source)
            found = token.kind if token else "end of expression"
            raise XPathSyntaxError(f"expected {kind!r}, found {found}", at)
        self._pos += 1
        return token

    def expect_end(self) -> None:
        token = self._peek()
        if token is not None:
            raise XPathSyntaxError(
                f"unexpected trailing token {token.value!r}", token.position
            )

    # -- grammar ---------------------------------------------------------

    def parse_path(self) -> LocationPath:
        steps: list[Step] = []
        absolute = False
        if self._accept("//"):
            absolute = True
            steps.append(Step("descendant-or-self", NodeTest("node")))
            steps.append(self._parse_step())
        elif self._accept("/"):
            absolute = True
            if self._starts_step():
                steps.append(self._parse_step())
            else:
                # Bare "/" selects the document itself.
                return LocationPath((), absolute=True)
        else:
            steps.append(self._parse_step())

        while True:
            if self._accept("//"):
                steps.append(Step("descendant-or-self", NodeTest("node")))
                steps.append(self._parse_step())
            elif self._accept("/"):
                steps.append(self._parse_step())
            else:
                break
        return LocationPath(tuple(steps), absolute=absolute)

    def _starts_step(self) -> bool:
        token = self._peek()
        if token is None:
            return False
        return token.kind in ("name", "*", "@", ".", "..")

    def _parse_step(self) -> Step:
        if self._accept("."):
            return Step("self", NodeTest("node"),
                        tuple(self._parse_predicates()))
        if self._accept(".."):
            return Step("parent", NodeTest("node"),
                        tuple(self._parse_predicates()))

        axis = "child"
        if self._accept("@"):
            axis = "attribute"
        else:
            token = self._peek()
            nxt = self._peek(1)
            if (
                token is not None
                and token.kind == "name"
                and nxt is not None
                and nxt.kind == "::"
            ):
                if token.value not in AXES:
                    raise XPathSyntaxError(
                        f"unknown axis {token.value!r}", token.position
                    )
                axis = token.value
                self._pos += 2

        test = self._parse_node_test(axis)
        predicates = self._parse_predicates()
        return Step(axis, test, tuple(predicates))

    def _parse_node_test(self, axis: str) -> NodeTest:
        if self._accept("*"):
            return NodeTest("wildcard")
        token = self._expect("name")
        nxt = self._peek()
        if (
            token.value in _NODE_TYPE_TESTS
            and nxt is not None
            and nxt.kind == "("
        ):
            self._expect("(")
            self._expect(")")
            return NodeTest(token.value)
        return NodeTest("name", token.value)

    def _parse_predicates(self) -> list[Expr]:
        predicates: list[Expr] = []
        while self._accept("["):
            predicates.append(self._parse_expr())
            self._expect("]")
        return predicates

    # expression grammar: or > and > comparison > primary

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at_operator_name("or"):
            self._pos += 1
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._at_operator_name("and"):
            self._pos += 1
            left = BinaryOp("and", left, self._parse_comparison())
        return left

    def _at_operator_name(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "name" and token.value == word

    def _parse_comparison(self) -> Expr:
        left = self._parse_primary()
        token = self._peek()
        if token is not None and token.kind in _COMPARISON_OPS:
            self._pos += 1
            right = self._parse_primary()
            return BinaryOp(token.kind, left, right)
        return left

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token is None:
            raise XPathSyntaxError(
                "expected an expression", len(self._source)
            )
        if token.kind == "number":
            self._pos += 1
            return NumberLiteral(float(token.value))
        if token.kind == "string":
            self._pos += 1
            return StringLiteral(token.value)
        if token.kind == "(":
            self._pos += 1
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if token.kind == "name":
            nxt = self._peek(1)
            is_call = (
                nxt is not None
                and nxt.kind == "("
                and token.value in FUNCTIONS
            )
            if is_call:
                return self._parse_function_call()
        # Anything else must be a relative (or absolute) location path.
        if token.kind in ("name", "*", "@", ".", "..", "/", "//"):
            return PathExpr(self.parse_path())
        raise XPathSyntaxError(
            f"unexpected token {token.value!r}", token.position
        )

    def _parse_function_call(self) -> Expr:
        name_token = self._expect("name")
        self._expect("(")
        args: list[Expr] = []
        if not self._accept(")"):
            args.append(self._parse_expr())
            while self._accept(","):
                args.append(self._parse_expr())
            self._expect(")")
        name = name_token.value
        arity = {"position": 0, "last": 0, "count": 1, "not": 1,
                 "contains": 2, "starts-with": 2}[name]
        if len(args) != arity:
            raise XPathSyntaxError(
                f"{name}() takes {arity} argument(s), got {len(args)}",
                name_token.position,
            )
        return FunctionCall(name, tuple(args))
