"""Tokenizer for the XPath fragment.

Token kinds are simple strings; the parser drives disambiguation (e.g.
``*`` is always a wildcard in this fragment because we do not support
arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import XPathSyntaxError
from repro.xmldom import chars as _xml_chars

#: Multi-character punctuation, longest first so maximal munch works.
_PUNCTUATION = (
    "//",
    "..",
    "::",
    "!=",
    "<=",
    ">=",
    "/",
    "[",
    "]",
    "(",
    ")",
    "@",
    ".",
    ",",
    "=",
    "<",
    ">",
    "*",
    "|",
)


def _is_name_start(ch: str) -> bool:
    """XPath names follow XML Name rules, except ':' (axis separator)."""
    return ch != ":" and _xml_chars.is_name_start_char(ch)


def _is_name_char(ch: str) -> bool:
    return ch != ":" and _xml_chars.is_name_char(ch)


@dataclass(frozen=True)
class XPathToken:
    """A lexical token: ``kind`` is ``name``/``number``/``string`` or the
    punctuation text itself; ``value`` carries the payload."""

    kind: str
    value: str
    position: int


def tokenize(expression: str) -> list[XPathToken]:
    """Tokenize *expression*, raising :class:`XPathSyntaxError` on junk."""
    return list(_tokens(expression))


def _tokens(expression: str) -> Iterator[XPathToken]:
    i = 0
    n = len(expression)
    while i < n:
        ch = expression[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch in "'\"":
            end = expression.find(ch, i + 1)
            if end == -1:
                raise XPathSyntaxError("unterminated string literal", i)
            yield XPathToken("string", expression[i + 1 : end], i)
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and expression[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (
                expression[j].isdigit()
                or (expression[j] == "." and not seen_dot)
            ):
                if expression[j] == ".":
                    # '..' after digits belongs to the next token.
                    if j + 1 < n and expression[j + 1] == ".":
                        break
                    seen_dot = True
                j += 1
            yield XPathToken("number", expression[i:j], i)
            i = j
            continue
        if _is_name_start(ch):
            j = i + 1
            while j < n and _is_name_char(expression[j]):
                # A trailing '.' could start '..'; names may not end with
                # '.' followed by '.', so split conservatively.
                if (
                    expression[j] == "."
                    and j + 1 < n
                    and expression[j + 1] == "."
                ):
                    break
                j += 1
            yield XPathToken("name", expression[i:j], i)
            i = j
            continue
        for punct in _PUNCTUATION:
            if expression.startswith(punct, i):
                yield XPathToken(punct, punct, i)
                i += len(punct)
                break
        else:
            raise XPathSyntaxError(f"unexpected character {ch!r}", i)
