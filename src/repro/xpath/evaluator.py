"""Native in-memory XPath evaluator.

This evaluator walks the DOM directly and implements XPath 1.0 semantics
for the supported fragment.  It is the *correctness oracle* of the
reproduction: the property-test suite checks that, for random documents and
queries, SQL over shredded relations returns exactly the node set this
evaluator returns — for all three order encodings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.core.numeric import xpath_number_value
from repro.errors import XPathError
from repro.xpath.ast import (
    AXES,
    BinaryOp,
    Expr,
    FunctionCall,
    LocationPath,
    NodeTest,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionPath,
)
from repro.xpath.parser import parse_xpath
from repro.xmldom.dom import (
    Comment,
    Document,
    Element,
    Node,
    ParentNode,
    ProcessingInstruction,
    Text,
)


@dataclass(frozen=True)
class AttributeNode:
    """An attribute as a first-class XPath node.

    Attribute nodes sort immediately after their owner element and before
    the element's children, ordered among themselves by name (the XML data
    model leaves attribute order implementation-defined; name order makes
    results deterministic).
    """

    owner: Element
    name: str
    value: str

    def text_value(self) -> str:
        return self.value


XPathNode = Union[Node, AttributeNode]
XPathValue = Union[float, str, bool, list]


def string_value(node: XPathNode) -> str:
    """Return the XPath string-value of *node*."""
    if isinstance(node, Element):
        return node.text_value()
    if isinstance(node, Text):
        return node.content
    if isinstance(node, Comment):
        return node.content
    if isinstance(node, ProcessingInstruction):
        return node.data
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, Document):
        return "".join(
            n.content for n in node.iter_preorder() if isinstance(n, Text)
        )
    raise TypeError(f"not an XPath node: {node!r}")


def to_boolean(value: XPathValue) -> bool:
    """XPath boolean() conversion."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    return len(value) > 0  # node-set


def to_number(value: XPathValue) -> float:
    """XPath number() conversion (NaN for non-numeric strings)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        # Shared with the backends' xpath_number scalar function, so
        # the SQL path and this oracle can never disagree on what
        # counts as a number (the scalar returns None where we say NaN).
        number = xpath_number_value(value)
        return math.nan if number is None else number
    if value:
        return to_number(string_value(value[0]))
    return math.nan


def to_string(value: XPathValue) -> str:
    """XPath string() conversion."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e16:
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    if value:
        return string_value(value[0])
    return ""


class Evaluator:
    """Evaluates location paths against one document.

    The evaluator precomputes the document-order position of every node so
    node sets can be deduplicated and sorted, which the relational
    translations also guarantee.
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        self._order: dict[int, int] = {id(document): -1}
        self._subtree_end: dict[int, int] = {}
        self._index_document()

    def _index_document(self) -> None:
        # One pass assigns preorder positions; a second pass computes, for
        # every node, the position just past its subtree (used by the
        # `following`/`preceding` axes).
        nodes = list(self.document.iter_preorder())
        for pos, node in enumerate(nodes):
            self._order[id(node)] = pos
        self._subtree_end[id(self.document)] = len(nodes)
        for pos, node in enumerate(nodes):
            end = pos + 1
            if isinstance(node, ParentNode):
                end += node.subtree_size()
            self._subtree_end[id(node)] = end

    # -- public API ------------------------------------------------------

    def evaluate(
        self,
        path: Union[str, LocationPath, UnionPath],
        context: Optional[XPathNode] = None,
    ) -> list[XPathNode]:
        """Evaluate *path* and return the node-set in document order."""
        if isinstance(path, str):
            path = parse_xpath(path)
        if isinstance(path, UnionPath):
            merged: list[XPathNode] = []
            for arm in path.paths:
                merged.extend(self.evaluate(arm, context))
            return self._sorted_unique(merged)
        if path.absolute or context is None:
            contexts: list[XPathNode] = [self.document]
        else:
            contexts = [context]
        result = self._eval_path(path, contexts)
        return self._sorted_unique(result)

    def evaluate_strings(
        self,
        path: Union[str, LocationPath],
        context: Optional[XPathNode] = None,
    ) -> list[str]:
        """Evaluate *path* and return the string-value of each node."""
        return [string_value(n) for n in self.evaluate(path, context)]

    # -- node ordering -----------------------------------------------------

    def order_key(self, node: XPathNode) -> tuple:
        """Total-order key over nodes and attribute nodes."""
        if isinstance(node, AttributeNode):
            return (self._order[id(node.owner)], 1, node.name)
        return (self._order[id(node)], 0, "")

    def _sorted_unique(self, nodes: Iterable[XPathNode]) -> list[XPathNode]:
        seen: set = set()
        unique: list[XPathNode] = []
        for node in nodes:
            key = (
                (id(node.owner), node.name)
                if isinstance(node, AttributeNode)
                else id(node)
            )
            if key not in seen:
                seen.add(key)
                unique.append(node)
        unique.sort(key=self.order_key)
        return unique

    # -- path evaluation ---------------------------------------------------

    def _eval_path(
        self, path: LocationPath, contexts: list[XPathNode]
    ) -> list[XPathNode]:
        current = contexts
        for step in path.steps:
            next_nodes: list[XPathNode] = []
            for node in self._sorted_unique(current):
                next_nodes.extend(self._eval_step(step, node))
            current = next_nodes
        return current

    def _eval_step(self, step: Step, context: XPathNode) -> list[XPathNode]:
        candidates = [
            n
            for n in self._axis_nodes(step.axis, context)
            if _matches_test(step.test, n, step.axis)
        ]
        for predicate in step.predicates:
            size = len(candidates)
            kept = []
            for position, node in enumerate(candidates, start=1):
                if self._predicate_holds(predicate, node, position, size):
                    kept.append(node)
            candidates = kept
        return candidates

    # -- axes --------------------------------------------------------------

    def _axis_nodes(
        self, axis: str, context: XPathNode
    ) -> list[XPathNode]:
        if axis not in AXES:  # pragma: no cover - parser guarantees this
            raise XPathError(f"unknown axis {axis!r}")
        if isinstance(context, AttributeNode):
            return self._attribute_context_axis(axis, context)

        node = context
        if axis == "self":
            return [node]
        if axis == "child":
            return list(node.children) if isinstance(node, ParentNode) else []
        if axis == "descendant":
            if isinstance(node, ParentNode):
                return list(node.iter_preorder())
            return []
        if axis == "descendant-or-self":
            out: list[XPathNode] = [node]
            if isinstance(node, ParentNode):
                out.extend(node.iter_preorder())
            return out
        if axis == "parent":
            return [node.parent] if node.parent is not None else []
        if axis == "ancestor":
            return list(node.ancestors())
        if axis == "ancestor-or-self":
            return [node, *node.ancestors()]
        if axis == "attribute":
            if isinstance(node, Element):
                return [
                    AttributeNode(node, name, value)
                    for name, value in sorted(node.attributes.items())
                ]
            return []
        if axis == "following-sibling":
            return self._siblings_after(node)
        if axis == "preceding-sibling":
            return list(reversed(self._siblings_before(node)))
        if axis == "following":
            start = self._subtree_end[id(node)]
            return [
                n
                for n in self.document.iter_preorder()
                if self._order[id(n)] >= start
            ]
        if axis == "preceding":
            pos = self._order[id(node)]
            ancestor_ids = {id(a) for a in node.ancestors()}
            out = [
                n
                for n in self.document.iter_preorder()
                if self._order[id(n)] < pos and id(n) not in ancestor_ids
            ]
            out.reverse()
            return out
        raise XPathError(f"axis {axis!r} not implemented")  # pragma: no cover

    def _attribute_context_axis(
        self, axis: str, context: AttributeNode
    ) -> list[XPathNode]:
        if axis == "self":
            return [context]
        if axis == "parent":
            return [context.owner]
        if axis == "ancestor":
            return [context.owner, *context.owner.ancestors()]
        if axis == "ancestor-or-self":
            return [context, context.owner, *context.owner.ancestors()]
        # Attributes have no children, siblings, or following/preceding.
        return []

    def _siblings_after(self, node: Node) -> list[Node]:
        if node.parent is None:
            return []
        siblings = node.parent.children
        index = siblings.index(node)
        return siblings[index + 1 :]

    def _siblings_before(self, node: Node) -> list[Node]:
        if node.parent is None:
            return []
        siblings = node.parent.children
        index = siblings.index(node)
        return siblings[:index]

    # -- predicates and expressions -----------------------------------------

    def _predicate_holds(
        self, expr: Expr, context: XPathNode, position: int, size: int
    ) -> bool:
        value = self._eval_expr(expr, context, position, size)
        if isinstance(value, float):
            # A bare number predicate means position() = number.
            return float(position) == value
        return to_boolean(value)

    def _eval_expr(
        self, expr: Expr, context: XPathNode, position: int, size: int
    ) -> XPathValue:
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, PathExpr):
            return self._eval_path(
                expr.path,
                [self.document] if expr.path.absolute else [context],
            )
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, context, position, size)
        if isinstance(expr, BinaryOp):
            if expr.op == "and":
                left = self._eval_expr(expr.left, context, position, size)
                if not to_boolean(left):
                    return False
                right = self._eval_expr(expr.right, context, position, size)
                return to_boolean(right)
            if expr.op == "or":
                left = self._eval_expr(expr.left, context, position, size)
                if to_boolean(left):
                    return True
                right = self._eval_expr(expr.right, context, position, size)
                return to_boolean(right)
            left = self._eval_expr(expr.left, context, position, size)
            right = self._eval_expr(expr.right, context, position, size)
            return _compare(expr.op, left, right)
        raise XPathError(f"cannot evaluate {expr!r}")  # pragma: no cover

    def _eval_function(
        self, call: FunctionCall, context: XPathNode, position: int, size: int
    ) -> XPathValue:
        if call.name == "position":
            return float(position)
        if call.name == "last":
            return float(size)
        args = [
            self._eval_expr(a, context, position, size) for a in call.args
        ]
        if call.name == "count":
            if not isinstance(args[0], list):
                raise XPathError("count() requires a node-set argument")
            return float(len(args[0]))
        if call.name == "not":
            return not to_boolean(args[0])
        if call.name == "contains":
            return to_string(args[1]) in to_string(args[0])
        if call.name == "starts-with":
            return to_string(args[0]).startswith(to_string(args[1]))
        raise XPathError(f"unknown function {call.name}()")  # pragma: no cover


def _matches_test(test: NodeTest, node: XPathNode, axis: str) -> bool:
    if axis == "attribute":
        if not isinstance(node, AttributeNode):
            return False
        if test.kind == "name":
            return node.name == test.name
        return test.kind in ("wildcard", "node")
    if isinstance(node, AttributeNode):
        return test.kind == "node"
    if test.kind == "name":
        return isinstance(node, Element) and node.tag == test.name
    if test.kind == "wildcard":
        return isinstance(node, Element)
    if test.kind == "text":
        return isinstance(node, Text)
    if test.kind == "comment":
        return isinstance(node, Comment)
    if test.kind == "node":
        return True
    raise XPathError(f"unknown node test {test.kind!r}")  # pragma: no cover


def _compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    """XPath 1.0 comparison semantics, including node-set existentials."""
    left_is_set = isinstance(left, list)
    right_is_set = isinstance(right, list)
    if left_is_set and right_is_set:
        return any(
            _compare_atomic(op, string_value(a), string_value(b))
            for a in left
            for b in right
        )
    if left_is_set:
        return any(
            _compare_atomic(op, string_value(n), right) for n in left
        )
    if right_is_set:
        return any(
            _compare_atomic(op, left, string_value(n)) for n in right
        )
    return _compare_atomic(op, left, right)


def _compare_atomic(op: str, left: XPathValue, right: XPathValue) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, float) or isinstance(right, float):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result
    lnum, rnum = to_number(left), to_number(right)
    if math.isnan(lnum) or math.isnan(rnum):
        return False
    if op == "<":
        return lnum < rnum
    if op == "<=":
        return lnum <= rnum
    if op == ">":
        return lnum > rnum
    if op == ">=":
        return lnum >= rnum
    raise XPathError(f"unknown operator {op!r}")  # pragma: no cover


def evaluate(
    document: Document, path: Union[str, LocationPath]
) -> list[XPathNode]:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(document).evaluate(path)
