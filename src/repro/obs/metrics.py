"""Process-wide counters and histograms with per-thread accumulation.

One :class:`MetricsRegistry` instance (:data:`METRICS`) serves the whole
process.  Instrumentation sites call :meth:`~MetricsRegistry.inc` /
:meth:`~MetricsRegistry.observe` unconditionally; both start with a
single ``enabled`` check, so a disabled registry costs one attribute
read and a branch per site — nothing allocates, nothing locks.

When enabled, every thread accumulates into its own private cell (a
plain dict reached through ``threading.local``), so concurrent readers
and the writer never contend on a shared lock per increment; the only
locked operation is registering a new thread's cell.  A
:meth:`~MetricsRegistry.snapshot` merges all cells into one
JSON-serializable view.

Naming convention (the counter glossary lives in DESIGN.md):

* ``backend.*``    — statements/rows at the Backend seam (both engines)
* ``minidb.*``     — engine-internal statement counts
* ``translate.*``  — XPath->SQL compilations and their join/subquery cost
* ``query.*`` / ``load.*`` / ``updates.*`` — store-level operations
* ``retry.*``      — RetryPolicy transient faults, retries, recoveries
* ``cache.*``      — store cache hits/misses/evictions/invalidations
  (aggregate, plus ``cache.plan.*`` / ``cache.catalog.*`` /
  ``cache.result.*`` per layer; see :mod:`repro.cache`)
* ``pool.*``       — connection pool checkouts and waits
* ``writequeue.*`` — group-commit batches
* ``latch.*``      — RWLatch acquisitions and write hold times
* ``span.<name>``  — histogram of each span's duration (seconds), recorded
  by :func:`repro.obs.tracer.span` whenever metrics are enabled
"""

from __future__ import annotations

import threading
from typing import Optional


class Histogram:
    """Summary statistics of observed values (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max

    def as_dict(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "mean": mean,
            "min": self.min,
            "max": self.max,
        }


class _Cell:
    """One thread's private accumulation buffers."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}


class MetricsRegistry:
    """A process-wide registry of named counters and histograms.

    Disabled by default: :meth:`inc` and :meth:`observe` return after
    one boolean check.  :meth:`reset` and :meth:`snapshot` are safe at
    any time, but a reset that races live increments may lose the
    in-flight ones — quiesce worker threads around resets when exact
    counts matter (tests and the bench harness both do).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._cells: list[_Cell] = []
        self._tls = threading.local()

    def _cell(self) -> _Cell:
        cell = getattr(self._tls, "cell", None)
        if cell is None:
            cell = _Cell()
            self._tls.cell = cell
            with self._lock:
                self._cells.append(cell)
        return cell

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (no-op while disabled)."""
        if not self.enabled:
            return
        counters = self._cell().counters
        counters[name] = counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (no-op while disabled)."""
        if not self.enabled:
            return
        histograms = self._cell().histograms
        hist = histograms.get(name)
        if hist is None:
            hist = histograms[name] = Histogram()
        hist.observe(value)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Merge every thread's cell into one serializable view."""
        counters: dict[str, int] = {}
        histograms: dict[str, Histogram] = {}
        with self._lock:
            cells = list(self._cells)
        for cell in cells:
            for name, value in list(cell.counters.items()):
                counters[name] = counters.get(name, 0) + value
            for name, hist in list(cell.histograms.items()):
                merged = histograms.get(name)
                if merged is None:
                    merged = histograms[name] = Histogram()
                merged.merge(hist)
        return {
            "counters": dict(sorted(counters.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(histograms.items())
            },
        }

    def counter(self, name: str) -> int:
        """Merged value of one counter (0 when never incremented)."""
        return self.snapshot()["counters"].get(name, 0)

    def reset(self) -> None:
        """Zero every counter and histogram across all threads."""
        with self._lock:
            cells = list(self._cells)
        for cell in cells:
            cell.counters.clear()
            cell.histograms.clear()


#: The process-wide registry every instrumentation site records into.
METRICS = MetricsRegistry()
