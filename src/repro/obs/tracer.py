"""Hierarchical spans with monotonic timings.

A :class:`Tracer` collects a forest of :class:`Span` trees.  The current
span stack lives in a :mod:`contextvars` variable, so nesting is tracked
per thread (and per async task) without locks; only attaching a finished
root to the tracer takes the tracer's lock.

The one instrumentation primitive is :func:`span`:

* with **no tracer active and metrics disabled** it returns a shared
  no-op context manager — the disabled hot path pays one contextvar
  read, one attribute read, and two trivial method calls;
* with a tracer active it opens a child of the current span (or a new
  root) and closes it on exit, exception or not;
* with metrics enabled it additionally records the duration into the
  ``span.<name>`` histogram — which is how the bench harness gets
  per-phase timings even on worker threads that have no tracer;
* with a ``collect`` dict it adds the elapsed seconds under the span
  name — which is how the slow-query log gets its phase breakdown
  without requiring a tracer.

Exportable as a JSON span tree via :meth:`Tracer.to_json`.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Iterator, Optional

from repro.obs.metrics import METRICS

_tracer_var: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_obs_tracer", default=None
)
_stack_var: ContextVar[tuple["Span", ...]] = ContextVar(
    "repro_obs_span_stack", default=()
)


class Span:
    """One timed operation; children are operations it performed."""

    __slots__ = ("name", "attrs", "start", "end", "children", "status",
                 "error")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start = perf_counter()
        self.end: Optional[float] = None
        self.children: list["Span"] = []
        self.status = "open"
        self.error: Optional[str] = None

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration_seconds(self) -> float:
        return ((self.end if self.end is not None else perf_counter())
                - self.start)

    @property
    def duration_ms(self) -> float:
        return self.duration_seconds * 1000.0

    def iter_spans(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def leaves(self) -> list["Span"]:
        return [s for s in self.iter_spans() if not s.children]

    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Tracer:
    """Collects span trees; activate with :func:`tracing`."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._open = 0

    # -- bookkeeping (called by the span context manager) ------------------

    def _opened(self, span: Span, parent: Optional[Span]) -> None:
        with self._lock:
            self._open += 1
            if parent is None:
                self.roots.append(span)
        if parent is not None:
            parent.children.append(span)

    def _closed(self, span: Span) -> None:
        with self._lock:
            self._open -= 1

    # -- inspection --------------------------------------------------------

    def open_span_count(self) -> int:
        """Spans entered but not yet exited (0 after a balanced run)."""
        with self._lock:
            return self._open

    def iter_spans(self) -> Iterator[Span]:
        for root in list(self.roots):
            yield from root.iter_spans()

    def total_ms(self) -> float:
        return sum(root.duration_ms for root in self.roots)

    def aggregate(self) -> dict[str, dict]:
        """Per-name totals: ``{name: {"count": n, "total_ms": x}}``."""
        out: dict[str, dict] = {}
        for span in self.iter_spans():
            entry = out.setdefault(
                span.name, {"count": 0, "total_ms": 0.0}
            )
            entry["count"] += 1
            entry["total_ms"] += span.duration_ms
        for entry in out.values():
            entry["total_ms"] = round(entry["total_ms"], 4)
        return out

    def to_dict(self) -> dict:
        return {"spans": [root.to_dict() for root in self.roots]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def current_tracer() -> Optional[Tracer]:
    return _tracer_var.get()


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate *tracer* (or a fresh one) for the enclosed block."""
    tracer = tracer if tracer is not None else Tracer()
    token = _tracer_var.set(tracer)
    try:
        yield tracer
    finally:
        _tracer_var.reset(token)


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    __slots__ = ("tracer", "record_metric", "name", "attrs", "collect",
                 "span", "started", "token")

    def __init__(self, tracer, record_metric, name, attrs, collect):
        self.tracer = tracer
        self.record_metric = record_metric
        self.name = name
        self.attrs = attrs
        self.collect = collect
        self.span: Optional[Span] = None
        self.token = None

    def __enter__(self) -> Optional[Span]:
        self.started = perf_counter()
        tracer = self.tracer
        if tracer is not None:
            stack = _stack_var.get()
            parent = stack[-1] if stack else None
            self.span = Span(self.name, self.attrs)
            self.span.start = self.started
            tracer._opened(self.span, parent)
            self.token = _stack_var.set(stack + (self.span,))
        return self.span

    def __exit__(self, exc_type, exc_value, _tb) -> bool:
        ended = perf_counter()
        elapsed = ended - self.started
        span = self.span
        if span is not None:
            span.end = ended
            if exc_type is None:
                span.status = "ok"
            else:
                span.status = "error"
                span.error = f"{exc_type.__name__}: {exc_value}"
            if self.token is not None:
                _stack_var.reset(self.token)
            self.tracer._closed(span)
        if self.record_metric:
            METRICS.observe(f"span.{self.name}", elapsed)
        if self.collect is not None:
            self.collect[self.name] = (
                self.collect.get(self.name, 0.0) + elapsed
            )
        return False


def span(name: str, collect: Optional[dict] = None, **attrs):
    """Time one operation under *name*.

    Returns a context manager.  See the module docstring for what it
    does under each observability mode; when nothing is enabled and no
    *collect* dict is given, it is a shared no-op.
    """
    tracer = _tracer_var.get()
    record_metric = METRICS.enabled
    if tracer is None and not record_metric and collect is None:
        return _NULL_SPAN
    return _ActiveSpan(tracer, record_metric, name, attrs, collect)
