"""A bounded, threshold-configurable slow-query log.

When enabled (:func:`enable_slow_log`), :meth:`XmlStore.query
<repro.store.XmlStore.query>` records every query at or above the
threshold: the XPath, the translated SQL and parameters, total elapsed
time, and a per-phase breakdown (translate / execute / materialize /
client_order) collected through the :func:`repro.obs.tracer.span`
``collect`` hook — no tracer required.

The log is a ring buffer (oldest entries evicted), process-wide like
the metrics registry, and disabled by default so the query hot path
pays a single ``None`` check.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class SlowQuery:
    """One recorded slow query."""

    xpath: str
    sql: str
    params: tuple
    elapsed_ms: float
    breakdown_ms: dict[str, float] = field(default_factory=dict)
    thread: str = ""

    def render(self) -> str:
        phases = ", ".join(
            f"{name}={ms:.2f}ms"
            for name, ms in sorted(
                self.breakdown_ms.items(), key=lambda kv: -kv[1]
            )
        )
        lines = [
            f"slow query ({self.elapsed_ms:.2f} ms) {self.xpath}",
            f"  phases: {phases or '(none)'}",
            f"  sql: {self.sql}",
        ]
        if self.params:
            lines.append(f"  params: {self.params!r}")
        return "\n".join(lines)


class SlowQueryLog:
    """Ring buffer of queries slower than ``threshold_ms``."""

    def __init__(
        self, threshold_ms: float = 100.0, capacity: int = 50
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_ms = threshold_ms
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def maybe_record(
        self,
        xpath: str,
        sql: str,
        params: tuple,
        elapsed_ms: float,
        breakdown_ms: Optional[dict[str, float]] = None,
    ) -> bool:
        """Record the query if it met the threshold; True when kept."""
        if elapsed_ms < self.threshold_ms:
            return False
        entry = SlowQuery(
            xpath=xpath,
            sql=sql,
            params=tuple(params),
            elapsed_ms=elapsed_ms,
            breakdown_ms=dict(breakdown_ms or {}),
            thread=threading.current_thread().name,
        )
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1
        return True

    def entries(self) -> list[SlowQuery]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.recorded = 0


_log: Optional[SlowQueryLog] = None


def slow_log() -> Optional[SlowQueryLog]:
    """The active log, or ``None`` (the common, unobserved case)."""
    return _log


def enable_slow_log(
    threshold_ms: float = 100.0, capacity: int = 50
) -> SlowQueryLog:
    """Install (and return) a fresh process-wide slow-query log."""
    global _log
    _log = SlowQueryLog(threshold_ms=threshold_ms, capacity=capacity)
    return _log


def disable_slow_log() -> None:
    global _log
    _log = None
