"""Observability: hierarchical tracing, metrics, and a slow-query log.

Zero-dependency and off by default — every instrumentation site in the
store, backends, minidb engine, translator, update manager, retry
policy, and the concurrency layer goes through :func:`span` or
:data:`METRICS`, both of which short-circuit after one check when
nothing is enabled.

Quick start::

    from repro import obs

    obs.enable()                      # counters + histograms
    with obs.tracing() as tracer:     # span trees (per activation)
        store.query("//item[2]/name", doc)
    print(tracer.to_json())
    print(obs.METRICS.snapshot())

    log = obs.enable_slow_log(threshold_ms=5.0)
    ...
    for entry in log.entries():
        print(entry.render())

CLI equivalents: ``repro trace <xpath>`` and ``repro stats``.
"""

from repro.obs.metrics import METRICS, Histogram, MetricsRegistry
from repro.obs.slowlog import (
    SlowQuery,
    SlowQueryLog,
    disable_slow_log,
    enable_slow_log,
    slow_log,
)
from repro.obs.tracer import Span, Tracer, current_tracer, span, tracing


def enable() -> None:
    """Turn on metric collection (counters + histograms)."""
    METRICS.enabled = True


def disable() -> None:
    """Turn off metrics and the slow-query log (tracers deactivate
    with their ``tracing()`` scope)."""
    METRICS.enabled = False
    disable_slow_log()


__all__ = [
    "METRICS",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SlowQuery",
    "SlowQueryLog",
    "Tracer",
    "current_tracer",
    "disable",
    "disable_slow_log",
    "enable",
    "enable_slow_log",
    "slow_log",
    "span",
    "tracing",
]
